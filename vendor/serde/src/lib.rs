//! Offline stand-in for `serde`.
//!
//! The repository only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on model types; nothing actually serializes through serde at
//! runtime (the ADL uses its own XML writer). Since the build environment has
//! no registry access, this crate provides the two derive macros as no-ops so
//! the annotations compile. If real serde serialization is ever needed,
//! replace this with the registry crate via `[patch]` removal.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
