//! Deterministic generator RNG (SplitMix64-seeded xoshiro256++).

/// RNG driving value generation. Cheap, seedable, and stable across
/// platforms so recorded seeds reproduce forever.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/denom`.
    pub fn ratio(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}
