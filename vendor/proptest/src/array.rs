//! Fixed-size array strategies (`prop::array::uniform3`, ...).

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),* $(,)?) => {
        $(
            /// Array of independent draws from one strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*
    };
}

uniform_fn! {
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform8 => 8,
}
