//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Inclusive-lo, exclusive-hi size bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
