//! String generation from a practical regex subset.
//!
//! Supports what the repository's property tests use: literal characters,
//! `.` (any char except newline), character classes `[...]` with ranges,
//! negation and `\xNN` escapes, and the quantifiers `{m}`, `{m,n}`, `*`,
//! `+`, `?` (star/plus capped at 8 repetitions). Alternation and groups are
//! not supported — patterns using them panic loudly so the gap is visible.

use crate::rng::TestRng;

#[derive(Clone, Debug)]
enum CharSet {
    /// Any char except `\n`.
    Dot,
    /// A single literal char.
    Literal(char),
    /// Inclusive ranges; `negated` inverts membership.
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

#[derive(Clone, Debug)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Occasional non-ASCII candidates so `.`-style classes exercise multi-byte
/// UTF-8 in codecs and parsers.
const UNICODE_POOL: &[char] = ['\t', 'é', 'ß', 'λ', '中', '🦀', '\u{80}', '\u{7ff}'].as_slice();

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = if atom.min == atom.max {
            atom.min
        } else {
            atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32
        };
        for _ in 0..n {
            out.push(sample(&atom.set, rng));
        }
    }
    out
}

fn sample(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Literal(c) => *c,
        CharSet::Dot => sample_any_except(rng, &[('\n', '\n')]),
        CharSet::Class { ranges, negated } => {
            if *negated {
                sample_any_except(rng, ranges)
            } else {
                let total: u64 = ranges.iter().map(|r| range_size(*r)).sum();
                let mut pick = rng.below(total);
                for r in ranges {
                    let span = range_size(*r);
                    if pick < span {
                        return nth_char_of_range(*r, pick);
                    }
                    pick -= span;
                }
                unreachable!("class weight bookkeeping")
            }
        }
    }
}

const SURROGATE_LO: u32 = 0xD800;
const SURROGATE_HI: u32 = 0xDFFF;
const SURROGATE_COUNT: u64 = (SURROGATE_HI - SURROGATE_LO + 1) as u64;

/// Number of valid scalar values in an inclusive char range (`char` bounds
/// can never be surrogates, but a range may span the whole gap).
fn range_size((lo, hi): (char, char)) -> u64 {
    let raw = (hi as u64) - (lo as u64) + 1;
    if (lo as u32) < SURROGATE_LO && (hi as u32) > SURROGATE_HI {
        raw - SURROGATE_COUNT
    } else {
        raw
    }
}

/// The `pick`-th valid scalar value of a range, stepping over the surrogate
/// gap; `pick` must be below `range_size`.
fn nth_char_of_range((lo, hi): (char, char), pick: u64) -> char {
    let mut code = lo as u32 + pick as u32;
    if (lo as u32) < SURROGATE_LO && code >= SURROGATE_LO {
        code += SURROGATE_COUNT as u32;
    }
    debug_assert!(code <= hi as u32);
    char::from_u32(code).expect("surrogate gap stepped over")
}

/// Samples a char not contained in `excluded`: mostly printable ASCII, with
/// an occasional draw from the unicode pool.
fn sample_any_except(rng: &mut TestRng, excluded: &[(char, char)]) -> char {
    let contains = |c: char| excluded.iter().any(|(lo, hi)| (*lo..=*hi).contains(&c));
    for _ in 0..64 {
        let c = if rng.ratio(1, 8) {
            UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]
        } else {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
        };
        if !contains(c) {
            return c;
        }
    }
    panic!("negated class excludes the entire sampling pool: {excluded:?}");
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Dot
            }
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                let (c, next) = parse_escape(pattern, &chars, i + 1);
                i = next;
                CharSet::Literal(c)
            }
            '(' | ')' | '|' => {
                panic!("regex stand-in does not support groups/alternation: {pattern:?}")
            }
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or_else(|_| bad_quant(pattern)),
                            hi.trim().parse().unwrap_or_else(|_| bad_quant(pattern)),
                        ),
                        None => {
                            let n = body.trim().parse().unwrap_or_else(|_| bad_quant(pattern));
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier bounds in {pattern:?}");
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn bad_quant(pattern: &str) -> u32 {
    panic!("bad quantifier in {pattern:?}")
}

/// Parses a `[...]` class body starting just past the `[`; returns the set
/// and the index just past the closing `]`.
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (CharSet, usize) {
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut first = true;
    while i < chars.len() && (chars[i] != ']' || first) {
        first = false;
        let lo = if chars[i] == '\\' {
            let (c, next) = parse_escape(pattern, chars, i + 1);
            i = next;
            c
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // A `-` forms a range only with a following non-`]` char.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            i += 1; // consume '-'
            let hi = if chars[i] == '\\' {
                let (c, next) = parse_escape(pattern, chars, i + 1);
                i = next;
                c
            } else {
                let c = chars[i];
                i += 1;
                c
            };
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "unclosed character class in {pattern:?}"
    );
    (CharSet::Class { ranges, negated }, i + 1)
}

/// Parses an escape starting just past the `\`; returns the char and the
/// index just past the escape.
fn parse_escape(pattern: &str, chars: &[char], i: usize) -> (char, usize) {
    match chars.get(i) {
        Some('x') => {
            let hex: String = chars
                .get(i + 1..i + 3)
                .unwrap_or_else(|| panic!("truncated \\x escape in {pattern:?}"))
                .iter()
                .collect();
            let code = u32::from_str_radix(&hex, 16)
                .unwrap_or_else(|_| panic!("bad \\x escape in {pattern:?}"));
            (char::from_u32(code).unwrap(), i + 3)
        }
        Some('n') => ('\n', i + 1),
        Some('t') => ('\t', i + 1),
        Some('r') => ('\r', i + 1),
        Some('0') => ('\0', i + 1),
        // Alphanumeric escapes we don't implement (\d, \w, \s, \b, \p{..},
        // \u{..}...) must fail loudly, not degrade to a literal letter that
        // would silently weaken a property.
        Some(&c) if c.is_ascii_alphanumeric() => {
            panic!("unsupported escape \\{c} in {pattern:?}")
        }
        Some(&c) => (c, i + 1), // \\, \., \-, \], \" etc.
        None => panic!("dangling backslash in {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn literal_and_counted() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("ab{2,4}c", &mut r);
            assert!(s.starts_with('a') && s.ends_with('c'));
            let bs = s.len() - 2;
            assert!((2..=4).contains(&bs));
        }
    }

    #[test]
    fn classes_respect_membership() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z][a-zA-Z0-9_]{0,10}", &mut r);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn negated_class_excludes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[^\\x00-\\x08\\x0b-\\x1f]{0,16}", &mut r);
            assert!(s.chars().all(|c| {
                let u = c as u32;
                !(u <= 0x08 || (0x0b..=0x1f).contains(&u))
            }));
        }
    }

    #[test]
    fn dot_never_yields_newline() {
        let mut r = rng();
        for _ in 0..200 {
            assert!(!generate(".{0,24}", &mut r).contains('\n'));
        }
    }

    #[test]
    fn class_spanning_surrogate_gap_stays_in_class() {
        let mut r = rng();
        // \x escapes only cover two hex digits, so build the pattern with
        // literal chars around the gap: U+D7FF and U+E000.
        let pattern = "[\u{d000}-\u{e100}]{8}";
        for _ in 0..500 {
            for c in generate(pattern, &mut r).chars() {
                assert!(
                    ('\u{d000}'..='\u{e100}').contains(&c),
                    "generated {c:?} outside class"
                );
                assert_ne!(c, '\u{fffd}');
            }
        }
    }

    #[test]
    fn literal_dash_at_class_end() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-c-]{4}", &mut r);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '-')));
        }
    }
}
