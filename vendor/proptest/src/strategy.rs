//! The [`Strategy`] trait and its combinators.

use crate::regex;
use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of a given type from an RNG.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a final value directly, and failures are reproduced by re-running
/// the deterministic seed.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing the predicate (regenerating; gives
    /// up after a bounded number of rejections).
    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into a branch strategy. `depth` bounds the
    /// nesting level; `_desired_size` / `_expected_branch_size` are accepted
    /// for API compatibility but unused (branch width is bounded by the
    /// collection strategies the caller composes).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut tower = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(tower).boxed();
            // Lean toward leaves (2:1) so generated structures stay small.
            tower = Union::weighted(vec![(2, leaf.clone()), (1, branch)]).boxed();
        }
        tower
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): 1000 consecutive rejections; strategy too narrow",
            self.whence
        )
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among boxed strategies of one value type.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    }
}

// ---------------------------------------------------------------------------
// Range strategies for the integer (and float) primitives
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                    (self.start as i128 + off as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                    (lo as i128 + off as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-subset literals
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
