//! Option strategies (`prop::option::of`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default: None 1 time in 4.
        if rng.ratio(1, 4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` of the inner strategy three times out of four, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
