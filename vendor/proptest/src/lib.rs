//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing framework exposing the proptest API surface
//! this repository uses: the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] macros, the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_flat_map` / `prop_recursive`, `any::<T>()`,
//! range and regex-literal string strategies, and the `prop::{collection,
//! option, array}` modules.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the generating seed; cases
//!   are deterministic, so the failure reproduces exactly.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   module path + name + case index (plus the optional `PROPTEST_SEED` env
//!   var), so `cargo test` is bit-for-bit reproducible run to run.
//! - **Bounded case counts.** `PROPTEST_CASES` overrides every suite's case
//!   count, letting CI pin the budget.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod option;
pub mod regex;
pub mod rng;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use rng::TestRng;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Per-suite configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the case count for a suite: the `PROPTEST_CASES` environment
/// variable wins (bounding the whole run), otherwise the suite's config.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => {
            let n: u32 = v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}"));
            // 0 would turn every property suite into a silently green no-op.
            assert!(n > 0, "PROPTEST_CASES must be positive, got {v:?}");
            n
        }
        Err(_) => config.cases,
    }
}

/// Base seed for a named test: FNV-1a over the test path, XORed with the
/// optional `PROPTEST_SEED` env var for ad-hoc exploration.
pub fn base_seed(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        let extra: u64 = v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be an integer, got {v:?}"));
        h ^= extra;
    }
    h
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`,
    /// `prop::array::uniform3`, ...).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = $crate::effective_cases(&__cfg);
                let __path = concat!(module_path!(), "::", stringify!($name));
                let __base = $crate::base_seed(__path);
                for __case in 0..__cases {
                    let __seed = __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let __run = || {
                        let mut __rng = $crate::TestRng::new(__seed);
                        $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest failure in {} at case {}/{} (seed {:#x})",
                            __path, __case, __cases, __seed
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Equal-weight choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
