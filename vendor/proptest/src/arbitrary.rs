//! `any::<T>()` and the [`Arbitrary`] trait for primitives.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (with edge cases over-weighted).
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    // 1-in-8: an edge value; otherwise uniform bits.
                    if rng.ratio(1, 8) {
                        const EDGES: [$ty; 5] = [0, 1, <$ty>::MAX, <$ty>::MIN, <$ty>::MAX / 2];
                        EDGES[rng.below(EDGES.len() as u64) as usize]
                    } else {
                        rng.next_u64() as $ty
                    }
                }
            }
        )*
    };
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        if rng.ratio(1, 8) {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::MIN_POSITIVE,
            ];
            EDGES[rng.below(EDGES.len() as u64) as usize]
        } else {
            // sign * mantissa * 2^exp over a wide but mostly-sane range.
            let sign = if rng.bool() { 1.0 } else { -1.0 };
            let mantissa = rng.next_f64();
            let exp = rng.below(120) as i32 - 60;
            sign * mantissa * (2.0f64).powi(exp)
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f64::arbitrary_value(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        if rng.ratio(1, 4) {
            crate::regex::generate(".", rng).chars().next().unwrap()
        } else {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
        }
    }
}
