//! Offline stand-in for `bytes`.
//!
//! Implements the subset of the `bytes` crate the tuple codec and PE
//! transport use: cheaply cloneable immutable [`Bytes`] (shared storage +
//! view range), growable [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor
//! traits with little-endian primitive accessors.
//!
//! Semantics intentionally mirror the real crate:
//! - `Bytes::clone` / `Bytes::slice` are O(1) and share storage;
//! - `Buf::get_*` methods advance the cursor and panic on underflow (callers
//!   are expected to check `remaining()` first, as the codec does);
//! - `BytesMut::freeze` converts to `Bytes` without copying.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Backed by `Arc<Vec<u8>>` (not `Arc<[u8]>`) so `From<Vec<u8>>` — and
/// therefore `BytesMut::freeze` on the codec hot path — transfers ownership
/// without reallocating or copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` viewing a static slice (copied here; the real crate
    /// borrows, but the observable behaviour is identical).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing storage.
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    read: usize,
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        // Logical content, not (buf, read) structure: buffers with the same
        // remaining bytes are equal regardless of cursor position, matching
        // the real crate.
        self.as_ref() == other.as_ref()
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
            read: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        let read = self.read;
        let mut b = Bytes::from(self.buf);
        b.start = read;
        b
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.read = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_ref().to_vec()), f)
    }
}

/// Read cursor over a byte container. `get_*` accessors consume from the
/// front and panic if fewer than the required bytes remain.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies the next `len` bytes into a fresh `Bytes`, advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(
            len <= self.remaining(),
            "copy_to_bytes({len}) with only {} remaining",
            self.remaining()
        );
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut arr = [0u8; N];
        arr.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        arr
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance({cnt}) past end of Bytes of length {}",
            self.len()
        );
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf[self.read..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance({cnt}) past end of BytesMut of length {}",
            self.len()
        );
        self.read += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a byte container.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16_le(), 0xBEEF);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_i64_le(), -42);
        assert_eq!(frozen.get_f64_le(), 1.5);
        assert_eq!(frozen.copy_to_bytes(3), b"xyz"[..]);
        assert!(!frozen.has_remaining());
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[2]);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
