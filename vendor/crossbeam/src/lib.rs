//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! crossbeam-channel API shape: cloneable senders *and* receivers sharing
//! one FIFO queue, blocking `recv`, non-blocking `try_recv`/`try_iter`, and
//! `len`. Built directly on `Mutex<VecDeque>` + `Condvar` (rather than
//! wrapping `std::sync::mpsc`) so a receiver parked in `recv()` waits on the
//! condvar — releasing the lock — and never blocks a concurrent
//! `try_recv()` on another clone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers parked in recv() so they observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    /// Receiving half of an unbounded channel. Cloneable: clones share the
    /// same underlying queue (each message is delivered to one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect. Waits
        /// on the condvar, so concurrent `try_recv` on clones never blocks.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_len_and_try_iter() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 5);
            assert!(!rx.is_empty());
            let drained: Vec<i32> = rx.try_iter().collect();
            assert_eq!(drained, vec![0, 1, 2, 3, 4]);
            assert!(rx.is_empty());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_receiver_shares_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx2.recv().unwrap(), 2);
            assert_eq!(rx.len(), 0);
        }

        #[test]
        fn blocked_recv_does_not_starve_try_recv_on_clone() {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            let blocker = std::thread::spawn(move || rx.recv());
            // Give the blocker time to park inside recv().
            std::thread::sleep(Duration::from_millis(50));
            // Must return immediately even while the other clone blocks.
            assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(blocker.join().unwrap(), Ok(7));
        }

        #[test]
        fn blocking_iter_ends_on_disconnect() {
            let (tx, rx) = unbounded();
            let producer = std::thread::spawn(move || {
                for i in 0..3 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got, vec![0, 1, 2]);
        }
    }
}
