//! Offline stand-in for `rand`.
//!
//! `sps_sim::SimRng` implements its own xoshiro256** generator and only
//! needs the `RngCore` trait (and its `Error` type) so it composes with
//! rand-style consumers. This crate provides exactly that surface.

use std::fmt;

/// Error type for fallible RNG operations (never produced by `SimRng`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, API-compatible with
/// `rand_core::RngCore` 0.6.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
