//! Offline stand-in for `criterion`.
//!
//! Exposes the criterion API subset the bench suite uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! measurer: each benchmark is warmed up once, then timed over a fixed
//! iteration budget and reported as mean ns/iter (plus derived throughput).
//! There is no statistical analysis, HTML report, or CLI filtering beyond a
//! single optional substring argument.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations a benchmark runs (after one warm-up call).
/// `BENCH_ITERS` overrides it (CI runs a reduced budget); the number only
/// scales measurement cost, never what is measured.
const DEFAULT_ITERS: u64 = 30;

fn iters() -> u64 {
    static ITERS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *ITERS.get_or_init(|| {
        std::env::var("BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_ITERS)
    })
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads an optional substring filter from the command line (the only
    /// CLI feature this stand-in honours). A positional argument is only
    /// treated as the filter when it does not follow a `--flag` (which would
    /// make it that flag's value, e.g. `--save-baseline main`); real
    /// criterion flags are otherwise ignored rather than misread.
    pub fn configure_from_args(mut self) -> Self {
        // Flags known to take no value; a positional after one of these IS
        // the filter (cargo itself invokes bench binaries with `--bench`).
        let valueless = ["--bench", "--test", "--"];
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .iter()
            .enumerate()
            .find(|(i, a)| {
                !a.starts_with('-')
                    && (*i == 0
                        || !args[i - 1].starts_with("--")
                        || valueless.contains(&args[i - 1].as_str()))
            })
            .map(|(_, a)| a.clone());
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            filter,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        run_one(&filter, name, None, f);
        self
    }

    /// No-op: reports are printed as benchmarks run.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed iteration budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the fixed iteration budget ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.filter, &full, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.filter, &full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {name}: no iterations recorded");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let gib = n as f64 / ns_per_iter; // bytes/ns == GB/s
            println!("bench {name}: {ns_per_iter:>12.1} ns/iter ({gib:.3} GB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / ns_per_iter * 1e3; // elem/ns -> Melem/s
            println!("bench {name}: {ns_per_iter:>12.1} ns/iter ({meps:.3} Melem/s)");
        }
        None => println!("bench {name}: {ns_per_iter:>12.1} ns/iter"),
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let n = iters();
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..iters() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Batch sizing hints; the stand-in always materialises one input per call.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Function-plus-parameter benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Measured quantity per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
