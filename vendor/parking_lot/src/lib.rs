//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's ergonomics: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is swallowed, as
//! parking_lot has no poisoning). Only the surface the apps crate uses is
//! provided, plus `RwLock` for symmetry.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with a panic-free, non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
