//! `sslint --adl`: static graph verification of the real applications.
//!
//! Builds the same six ADLs the campaign scenarios submit (Live ×2, the
//! sentiment pipeline, the three-stage social composition, the trend
//! replicas) and runs [`sps_model::verify_graph`] over each. Statefulness is
//! probed *dynamically but hermetically*: each operator is instantiated
//! through the real [`OperatorRegistry`] and asked whether a fresh instance
//! produces a checkpoint blob — no heuristics, no annotation drift. An
//! operator that cannot be instantiated statically (e.g. template
//! parameters resolved at submission) probes as unknown and is skipped by
//! the checkpoint-intent checks.

use sps_engine::registry::OperatorRegistry;
use sps_model::adl::{Adl, AdlOperator};
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::verify::{verify_graph, Severity, VerifyOptions};

use orca_apps::sentiment::{sentiment_app, SentimentParams};
use orca_apps::social::{c1_app, c2_app, c3_app};
use orca_apps::trend::{trend_app, TrendParams};
use orca_apps::SharedStores;

/// One app's verification result, rendered machine-readably.
pub struct AppReport {
    pub app: String,
    /// `error …` / `warning …` lines from [`verify_graph`].
    pub lines: Vec<String>,
    pub errors: usize,
    pub warnings: usize,
}

/// The `live` scenario's twin pipeline (mirrors
/// `orca_harness::scenario::build_live`, seed 0): Beacon → Filter → Sink.
fn live_app(name: &str, rate: f64) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", rate),
    );
    m.operator(
        "flt",
        OperatorInvocation::new("Filter").param("predicate", "seq % 2 == 0"),
    );
    m.operator("snk", OperatorInvocation::new("Sink").sink());
    m.pipe("src", "flt");
    m.pipe("flt", "snk");
    let model = AppModelBuilder::new(name)
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

/// Every ADL the four campaign scenarios submit. Seeds/rates are
/// representative fixed values — the structural shape (operators, ports,
/// streams, PEs, ckpt flags) is seed-independent.
pub fn campaign_adls() -> Vec<Adl> {
    vec![
        live_app("LiveA", 18.0),
        live_app("LiveB", 27.0),
        sentiment_app(SentimentParams {
            drift_at_secs: 8.0,
            metric_window_secs: 10.0,
            seed: 0,
            ..Default::default()
        }),
        c1_app("TwitterStreamReader", "twitter", 80.0, 21),
        c1_app("MySpaceStreamReader", "myspace", 40.0, 22),
        c2_app("TwitterQuery", "twitter", 31),
        c2_app("BlogQuery", "blogs", 32),
        c2_app("FacebookQuery", "facebook", 33),
        c3_app(),
        trend_app(TrendParams {
            window_secs: 8.0,
            tick_rate: 20.0,
            symbols: 3,
            seed: 0,
            ..Default::default()
        }),
    ]
}

/// Statefulness probe: instantiate the operator through the registry and
/// ask a fresh instance for a checkpoint blob. `None` = cannot tell
/// statically (instantiation failed, e.g. unresolved template params).
pub fn statefulness_probe(registry: &OperatorRegistry, op: &AdlOperator) -> Option<bool> {
    registry
        .instantiate(op)
        .ok()
        .map(|inst| inst.checkpoint().is_some())
}

/// Verifies one ADL with the full option set (upstream-backup preconditions
/// included — campaigns run with `--upstream-backup on`, so the structural
/// requirement must hold for every app).
pub fn verify_app(registry: &OperatorRegistry, adl: &Adl) -> AppReport {
    let probe = |op: &AdlOperator| statefulness_probe(registry, op);
    let opts = VerifyOptions {
        upstream_backup: true,
        statefulness: Some(&probe),
    };
    let diags = verify_graph(adl, &opts);
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    AppReport {
        app: adl.app_name.clone(),
        lines: diags.iter().map(|d| d.render(&adl.app_name)).collect(),
        errors,
        warnings,
    }
}

/// Verifies every campaign application. This is what `sslint --adl` runs.
pub fn verify_campaign_apps() -> Vec<AppReport> {
    let stores = SharedStores::new();
    let registry = orca_apps::registry(&stores);
    campaign_adls()
        .iter()
        .map(|adl| verify_app(&registry, adl))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI gate in miniature: all ten campaign ADLs verify clean.
    #[test]
    fn campaign_apps_verify_without_errors() {
        for report in verify_campaign_apps() {
            assert_eq!(
                report.errors,
                0,
                "app {} has verifier errors:\n{}",
                report.app,
                report.lines.join("\n")
            );
        }
    }

    /// The probe recognizes stateless and stateful built-ins.
    #[test]
    fn probe_separates_state_from_stateless() {
        let stores = SharedStores::new();
        let registry = orca_apps::registry(&stores);
        let adls = campaign_adls();
        let live = &adls[0];
        let flt = live.operator("flt").unwrap();
        assert_eq!(statefulness_probe(&registry, flt), Some(false));
        let src = live.operator("src").unwrap();
        assert_eq!(statefulness_probe(&registry, src), Some(true));
    }
}
