//! A lightweight Rust lexer — just enough structure for the `sslint` rules.
//!
//! This is deliberately *not* a full Rust parser (the build environment has
//! no crates.io access, so `syn` is unavailable, and the rules only need
//! token shapes): it splits source into identifier / number / string / punct
//! tokens with line numbers, strips comments (harvesting `sslint:`
//! annotations from line comments on the way), and knows the handful of
//! lexical subtleties that would otherwise corrupt a token stream — nested
//! block comments, raw/byte strings, char literals vs. lifetimes, and
//! multi-character operators (so `==` is never mistaken for an assignment).

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Str,
    Char,
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One parsed `// sslint: allow(rule, reason)` annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// A malformed `sslint:` comment (missing reason, unparsable shape).
#[derive(Clone, Debug)]
pub struct BadAllow {
    pub line: u32,
    pub message: String,
}

/// Lexer output: the token stream plus harvested annotations.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<Allow>,
    pub bad_allows: Vec<BadAllow>,
}

/// Lexes one source file.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                parse_annotation(&src[start..i], line, &mut out);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = lex_string(bytes, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if raw_string_start(bytes, i).is_some() => {
                let (body_start, hashes) = raw_string_start(bytes, i).unwrap();
                i = lex_raw_string(bytes, body_start, hashes, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`).
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j].is_ascii_alphabetic() || bytes[j] == b'_') {
                    let mut k = j;
                    while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_')
                    {
                        k += 1;
                    }
                    if bytes.get(k) != Some(&b'\'') {
                        // Lifetime: skip the tick, let the ident lex normally.
                        i += 1;
                        continue;
                    }
                }
                // Char literal: consume to the closing quote.
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but never swallow a `..` range operator.
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                if let Some(p) = MULTI_PUNCTS.iter().find(|p| rest.starts_with(**p)) {
                    out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: p.to_string(),
                        line,
                    });
                    i += p.len();
                } else {
                    let ch = rest.chars().next().expect("non-empty rest");
                    out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: ch.to_string(),
                        line,
                    });
                    i += ch.len_utf8();
                }
            }
        }
    }
    out
}

/// Multi-character operators, longest first so maximal munch holds.
const MULTI_PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "&&", "||", "..", "<<", ">>",
];

/// If position `i` starts a raw or byte string (`r"`, `br#"`, `b"`, …),
/// returns `(index of opening quote + 1, hash count)`.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') || (!raw && hashes > 0) {
        return None;
    }
    if !raw && hashes == 0 && j == i {
        return None; // plain `"` is handled by the string arm
    }
    if !raw {
        // `b"..."`: an escaped byte string; lex like a normal string from the
        // quote (hash count 0 with escapes handled by caller convention).
        return Some((j, usize::MAX));
    }
    Some((j + 1, hashes))
}

/// Lexes a normal (escaped) string starting at the opening quote; returns the
/// index just past the closing quote.
fn lex_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            // An escape may hide a newline (`\<newline>` continuation).
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Lexes a raw string whose body starts at `body_start` with `hashes` hash
/// marks (or a byte string when `hashes == usize::MAX`); returns the index
/// just past the terminator.
fn lex_raw_string(bytes: &[u8], body_start: usize, hashes: usize, line: &mut u32) -> usize {
    if hashes == usize::MAX {
        return lex_string(bytes, body_start, line);
    }
    let mut i = body_start;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Parses a `// sslint: allow(rule, reason)` comment, if present.
///
/// Only comments whose body *starts* with `sslint:` (after the slashes and
/// doc-comment markers) are annotations — prose that merely mentions the
/// syntax, like this sentence, is not.
fn parse_annotation(comment: &str, line: u32, out: &mut Lexed) {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let Some(body) = body.strip_prefix("sslint:") else {
        return;
    };
    let body = body.trim();
    let Some(inner) = body
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
    else {
        out.bad_allows.push(BadAllow {
            line,
            message: format!("unparsable sslint annotation: `{}`", body),
        });
        return;
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        out.bad_allows.push(BadAllow {
            line,
            message: "sslint allow is missing a reason: use allow(rule, reason)".into(),
        });
        return;
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim().trim_matches('"').trim().to_string();
    if reason.is_empty() {
        out.bad_allows.push(BadAllow {
            line,
            message: format!("sslint allow({rule}, …) has an empty reason"),
        });
        return;
    }
    out.allows.push(Allow { line, rule, reason });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_do_not_leak_tokens() {
        let src = r##"
            // HashMap in a comment
            /* nested /* HashMap */ still comment */
            let s = "HashMap::new()";
            let r = r#"HashMap"#;
            fn f<'a>(x: &'a str) -> char { 'h' }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"char".to_string()));
        // The lifetime `'a` surfaces as a plain ident, not a char literal.
        assert!(ids.iter().filter(|t| *t == "a").count() >= 2);
    }

    #[test]
    fn multi_char_puncts_are_single_tokens() {
        let toks = lex("a == b; c += 1; d => e; f != g;").toks;
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"!="));
        assert!(!puncts.contains(&"="));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..n {}").toks;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == ".."));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Number && t.text == "0"));
    }

    #[test]
    fn annotations_parse_with_reason() {
        let l = lex("let x = 1; // sslint: allow(unordered-iter, eviction order is perf-only)\n");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rule, "unordered-iter");
        assert!(l.allows[0].reason.contains("perf-only"));
        assert!(l.bad_allows.is_empty());
    }

    #[test]
    fn annotation_without_reason_is_rejected() {
        let l = lex("// sslint: allow(unordered-iter)\n");
        assert!(l.allows.is_empty());
        assert_eq!(l.bad_allows.len(), 1);
        let l2 = lex("// sslint: allow(unordered-iter, )\n");
        assert_eq!(l2.bad_allows.len(), 1);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\n";
        let toks = lex(src).toks;
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }
}
