//! `sslint` CLI.
//!
//! ```text
//! sslint [--deny] [--adl] [--paths P...]
//! ```
//!
//! Default mode lints every `.rs` file under the workspace `crates/`
//! directory (vendor/, target/, tests/, fixtures/ excluded) and prints one
//! `sslint: <rule> <path>:<line> <message>` diagnostic per finding plus a
//! trailing summary line. `--adl` additionally compiles the campaign
//! applications and runs the static graph verifier over each. `--deny`
//! turns findings (and ADL verifier errors) into a non-zero exit — the CI
//! gate. `--paths` restricts the lint to explicit files/directories (used
//! to lint the fixture corpus on purpose).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut adl = false;
    let mut lint = true;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--adl" => adl = true,
            "--adl-only" => {
                adl = true;
                lint = false;
            }
            "--paths" => {
                for p in args.by_ref() {
                    paths.push(PathBuf::from(p));
                }
            }
            "--help" | "-h" => {
                println!(
                    "sslint [--deny] [--adl] [--adl-only] [--paths P...]\n\
                     \n\
                     --deny       exit non-zero on any finding or verifier error\n\
                     --adl        also statically verify the campaign application graphs\n\
                     --adl-only   skip the source lint, run only the graph verifier\n\
                     --paths P..  lint these files/dirs instead of the workspace"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sslint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = std::env::current_dir().expect("cwd");
    let base = analyzer::workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
    let mut failures = 0usize;

    if lint {
        let roots = if paths.is_empty() {
            vec![base.join("crates")]
        } else {
            paths.clone()
        };
        match analyzer::scan_paths(&base, &roots) {
            Ok(diags) => {
                for d in &diags {
                    println!("{}", d.render());
                }
                failures += diags.len();
                println!(
                    "sslint: lint summary: {} finding(s) across {} root(s)",
                    diags.len(),
                    roots.len()
                );
            }
            Err(e) => {
                eprintln!("sslint: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if adl {
        let reports = analyzer::adl::verify_campaign_apps();
        let (mut errors, mut warnings) = (0, 0);
        for r in &reports {
            for line in &r.lines {
                println!("sslint: adl {line}");
            }
            errors += r.errors;
            warnings += r.warnings;
        }
        println!(
            "sslint: adl summary: {} app(s), {} error(s), {} warning(s)",
            reports.len(),
            errors,
            warnings
        );
        failures += errors;
    }

    if deny && failures > 0 {
        eprintln!("sslint: denying: {failures} blocking finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
