//! The `sslint` rule set: repo-specific determinism rules clippy cannot
//! express, evaluated over the [`crate::lexer`] token stream.
//!
//! | id  | rule               | scope                | fires on |
//! |-----|--------------------|----------------------|----------|
//! | R1  | `unordered-iter`   | digest-path crates   | iteration over `HashMap`/`HashSet` |
//! | R2  | `ambient-authority`| every scanned crate  | `Instant::now`, `SystemTime::now`, `thread_rng`, `rand::random`, `thread::spawn` |
//! | R3  | `ckpt-contract`    | every scanned crate  | stateful `impl Operator` without `checkpoint` + `restore` |
//! | R4  | `float-digest`     | digest-path crates   | `f32`/`f64` in digest/state-encode contexts without a bit-preserving encoding |
//! | R5  | `batch-contract`   | every scanned crate  | `impl Operator` overriding `on_batch` without `on_tuple` coherence |
//!
//! Every rule honors `// sslint: allow(rule, reason)` on the offending line
//! or the line immediately above. Allows must carry a non-empty reason
//! (`bad-allow` otherwise) and must suppress at least one finding
//! (`unused-allow` otherwise), so the allowlist can never silently rot.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;

pub const R1_UNORDERED_ITER: &str = "unordered-iter";
pub const R2_AMBIENT_AUTHORITY: &str = "ambient-authority";
pub const R3_CKPT_CONTRACT: &str = "ckpt-contract";
pub const R4_FLOAT_DIGEST: &str = "float-digest";
pub const R5_BATCH_CONTRACT: &str = "batch-contract";
pub const BAD_ALLOW: &str = "bad-allow";
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Every rule id an `allow(...)` may name.
pub const ALLOWABLE_RULES: &[&str] = &[
    R1_UNORDERED_ITER,
    R2_AMBIENT_AUTHORITY,
    R3_CKPT_CONTRACT,
    R4_FLOAT_DIGEST,
    R5_BATCH_CONTRACT,
];

/// One diagnostic within a single file.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// How the caller classifies the file being checked.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// File lives in a crate on the digest path (`sim`, `engine`, `runtime`,
    /// `model`, `harness`): R1 and R4 apply.
    pub digest_path: bool,
    /// File is on the built-in R2 allowlist (e.g. `harness/src/pool.rs`,
    /// whose scoped worker threads feed a deterministic index-ordered fold).
    pub ambient_allowed: bool,
}

/// Runs every applicable rule over one file's source.
pub fn check_file(src: &str, class: FileClass) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = strip_cfg_test(&lexed.toks);

    let mut raw: Vec<Finding> = Vec::new();
    if class.digest_path {
        raw.extend(check_unordered_iter(&toks));
        raw.extend(check_float_digest(&toks));
    }
    if !class.ambient_allowed {
        raw.extend(check_ambient_authority(&toks));
    }
    raw.extend(check_ckpt_contract(&toks));
    raw.extend(check_batch_contract(&toks));

    // Apply allow annotations: an allow covers findings of its rule on its
    // own line or the line directly below (annotation-above style).
    let mut used = vec![false; lexed.allows.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let allowed = lexed.allows.iter().enumerate().any(|(i, a)| {
            let covers = a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line);
            if covers {
                used[i] = true;
            }
            covers
        });
        if !allowed {
            out.push(f);
        }
    }
    for b in &lexed.bad_allows {
        out.push(Finding {
            rule: BAD_ALLOW,
            line: b.line,
            message: b.message.clone(),
        });
    }
    for (i, a) in lexed.allows.iter().enumerate() {
        if !ALLOWABLE_RULES.contains(&a.rule.as_str()) {
            out.push(Finding {
                rule: BAD_ALLOW,
                line: a.line,
                message: format!("allow names unknown rule `{}`", a.rule),
            });
        } else if !used[i] {
            out.push(Finding {
                rule: UNUSED_ALLOW,
                line: a.line,
                message: format!("allow({}, …) suppresses nothing here; remove it", a.rule),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Drops token runs belonging to `#[cfg(test)] mod … { … }` blocks: test-only
/// code may use whatever it likes (test clocks, ad-hoc operators) without
/// tripping the production rules.
fn strip_cfg_test(toks: &[Tok]) -> Vec<Tok> {
    let mut skip: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if is_cfg_test {
            // Expect `mod <name> {` next; anything else keeps the tokens.
            let j = i + 7;
            if toks.get(j).is_some_and(|t| t.text == "mod")
                && toks.get(j + 2).is_some_and(|t| t.text == "{")
            {
                if let Some(end) = matching_brace(toks, j + 2) {
                    skip.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    toks.iter()
        .enumerate()
        .filter(|(idx, _)| !skip.iter().any(|&(a, b)| *idx >= a && *idx <= b))
        .map(|(_, t)| t.clone())
        .collect()
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R1: unordered-iter
// ---------------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Idents that mark a line as feeding a sorting adapter: a flagged iteration
/// whose surrounding statement sorts (or collects into an ordered container)
/// is deterministic by construction.
const SORT_ADAPTERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

fn check_unordered_iter(toks: &[Tok]) -> Vec<Finding> {
    let names = collect_hash_names(toks);
    if names.is_empty() {
        return Vec::new();
    }
    let sort_lines: BTreeSet<u32> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && SORT_ADAPTERS.contains(&t.text.as_str()))
        .map(|t| t.line)
        .collect();
    let sorted_nearby = |line: u32| (line..=line + 2).any(|l| sort_lines.contains(&l));

    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `map.iter()`, `self.map.keys()`, …
        if names.contains(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == ".")
            && toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && toks.get(i + 3).is_some_and(|p| p.text == "(")
        {
            let line = toks[i + 2].line;
            if !sorted_nearby(line) {
                out.push(Finding {
                    rule: R1_UNORDERED_ITER,
                    line,
                    message: format!(
                        "iteration order of `{}.{}()` is unordered and feeds a digest-path crate; \
                         use BTreeMap/BTreeSet, sort the result, or justify with an allow",
                        t.text,
                        toks[i + 2].text
                    ),
                });
            }
        }
        // `for x in &map {` / `for (k, v) in &mut self.map {`
        if t.text == "for" {
            if let Some(f) = check_for_loop(toks, i, &names) {
                if !sorted_nearby(f.line) {
                    out.push(f);
                }
            }
        }
    }
    out
}

/// Detects `for … in [&|&mut] [self.]name {` where `name` is a known
/// hash-container binding.
fn check_for_loop(toks: &[Tok], for_idx: usize, names: &BTreeSet<String>) -> Option<Finding> {
    // Find the `in` at nesting depth 0 (patterns may contain parens).
    let mut depth = 0i64;
    let mut in_idx = None;
    for (i, t) in toks.iter().enumerate().skip(for_idx + 1).take(64) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == TokKind::Ident => {
                in_idx = Some(i);
                break;
            }
            "{" => return None,
            _ => {}
        }
    }
    let in_idx = in_idx?;
    // Collect the iterated expression up to the loop body `{`.
    let mut expr: Vec<&Tok> = Vec::new();
    for t in toks.iter().skip(in_idx + 1).take(16) {
        if t.text == "{" {
            break;
        }
        expr.push(t);
    }
    // Strip leading `&` / `mut`.
    let mut s = 0usize;
    while s < expr.len() && (expr[s].text == "&" || expr[s].text == "mut") {
        s += 1;
    }
    let expr = &expr[s..];
    // Accept `name` or `receiver.name` chains ending in a known name.
    let last = expr.last()?;
    let shape_ok = match expr.len() {
        1 => expr[0].kind == TokKind::Ident,
        3 => expr[0].kind == TokKind::Ident && expr[1].text == "." && last.kind == TokKind::Ident,
        _ => false,
    };
    if shape_ok && names.contains(&last.text) {
        return Some(Finding {
            rule: R1_UNORDERED_ITER,
            line: last.line,
            message: format!(
                "`for … in {}` iterates a HashMap/HashSet in unordered order on the digest path; \
                 use BTreeMap/BTreeSet, sort first, or justify with an allow",
                last.text
            ),
        });
    }
    None
}

/// Names bound to `HashMap`/`HashSet` values in this file: struct fields and
/// params (`name: HashMap<…>`) and let-bindings (`let name = HashMap::new()`).
fn collect_hash_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        // `name : [&] [mut] HashMap<…>` — field, param, or typed binding
        // (the reference/mut sigils sit between the colon and the type).
        let mut q = j;
        while q >= 1 && (toks[q - 1].text == "&" || toks[q - 1].text == "mut") {
            q -= 1;
        }
        if q >= 2 && toks[q - 1].text == ":" && toks[q - 2].kind == TokKind::Ident {
            names.insert(toks[q - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap::new()` — walk back to the statement's
        // `let` (bounded by statement/block punctuation).
        let mut k = i;
        while k > 0 {
            let p = &toks[k - 1];
            if p.text == ";" || p.text == "{" || p.text == "}" {
                break;
            }
            if p.text == "let" {
                let mut n = k;
                if toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                if toks.get(n).is_some_and(|t| t.kind == TokKind::Ident) {
                    names.insert(toks[n].text.clone());
                }
                break;
            }
            k -= 1;
        }
    }
    names
}

// ---------------------------------------------------------------------------
// R2: ambient-authority
// ---------------------------------------------------------------------------

fn check_ambient_authority(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let path2 = |a: &str, b: &str| {
            t.text == a
                && toks.get(i + 1).is_some_and(|n| n.text == "::")
                && toks.get(i + 2).is_some_and(|m| m.text == b)
        };
        let hit = if path2("Instant", "now") {
            Some("`Instant::now()` reads the wall clock; simulation code must use SimTime")
        } else if path2("SystemTime", "now") || path2("SystemTime", "UNIX_EPOCH") {
            Some("`SystemTime` reads the wall clock; simulation code must use SimTime")
        } else if t.text == "thread_rng" {
            Some("`thread_rng()` is ambient randomness; use a seeded SimRng stream")
        } else if path2("rand", "random") {
            Some(
                "`rand::random()` is ambient randomness; metastore follower choice and \
                 every other draw must come from a seeded SimRng stream",
            )
        } else if path2("thread", "spawn") {
            Some(
                "`thread::spawn` introduces scheduling nondeterminism; route parallelism \
                 through the deterministic indexed pool",
            )
        } else {
            None
        };
        if let Some(msg) = hit {
            out.push(Finding {
                rule: R2_AMBIENT_AUTHORITY,
                line: t.line,
                message: msg.to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R3: ckpt-contract
// ---------------------------------------------------------------------------

const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

const MUT_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "push_str",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "clear",
    "extend",
    "drain",
    "take",
    "replace",
    "entry",
    "retain",
    "truncate",
    "append",
    "record",
    "merge",
    "advance",
    "get_or_insert_with",
];

struct ImplBlock {
    type_name: String,
    is_operator: bool,
    line: u32,
    start: usize,
    end: usize,
}

fn check_ckpt_contract(toks: &[Tok]) -> Vec<Finding> {
    let impls = collect_impls(toks);
    let structs_with_fields = collect_structs_with_fields(toks);

    // Mutation evidence is gathered from *every* impl block of a type, so
    // state mutated in inherent helper methods still counts.
    let mut mutated: BTreeSet<&str> = BTreeSet::new();
    for b in &impls {
        if block_mutates_self(&toks[b.start..=b.end]) {
            mutated.insert(&b.type_name);
        }
    }

    let mut out = Vec::new();
    for b in impls.iter().filter(|b| b.is_operator) {
        if !structs_with_fields.contains(&b.type_name) || !mutated.contains(b.type_name.as_str()) {
            continue;
        }
        let body = &toks[b.start..=b.end];
        let has = |name: &str| {
            body.windows(2)
                .any(|w| w[0].text == "fn" && w[1].text == name)
        };
        let (ckpt, restore) = (has("checkpoint"), has("restore"));
        if !(ckpt && restore) {
            out.push(Finding {
                rule: R3_CKPT_CONTRACT,
                line: b.line,
                message: format!(
                    "`{}` mutates per-instance state but its `impl Operator` {} — implement both \
                     `checkpoint` and `restore`, or declare the logical op `not_checkpointable()` \
                     and record that decision in an allow",
                    b.type_name,
                    match (ckpt, restore) {
                        (false, false) => "overrides neither `checkpoint` nor `restore`",
                        (true, false) => "overrides `checkpoint` but not `restore`",
                        (false, true) => "overrides `restore` but not `checkpoint`",
                        _ => unreachable!(),
                    }
                ),
            });
        }
    }
    out
}

/// All `impl` blocks in the file, with the implemented type's name and
/// whether the block is an `impl Operator for …`.
fn collect_impls(toks: &[Tok]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "impl" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Scan the header up to the opening `{` (depth-0).
        let mut depth = 0i64;
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 1).take(64) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "<<" => depth += 2,
                ">>" => depth -= 2,
                "{" if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => {}
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let header: Vec<&Tok> = toks[i + 1..open].iter().collect();
        let for_pos = header
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text == "for");
        // The implemented type: the path after `for` (trait impl) or the
        // whole header (inherent impl). Its name is the first ident of the
        // type path outside generics.
        let type_toks: Vec<&&Tok> = match for_pos {
            Some(p) => header.iter().skip(p + 1).collect(),
            None => header.iter().collect(),
        };
        let type_name = first_type_ident(&type_toks);
        let is_operator = match for_pos {
            Some(p) => header[..p]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident)
                .is_some_and(|t| t.text == "Operator"),
            None => false,
        };
        let end = matching_brace(toks, open).unwrap_or(toks.len() - 1);
        if let Some(type_name) = type_name {
            out.push(ImplBlock {
                type_name,
                is_operator,
                line: toks[i].line,
                start: open,
                end,
            });
        }
        i = open + 1;
    }
    out
}

/// First identifier of a type path, skipping a leading generics group
/// (`impl<'m> Expander<'m>` → `Expander`).
fn first_type_ident(toks: &[&&Tok]) -> Option<String> {
    let mut depth = 0i64;
    let mut iter = toks.iter().peekable();
    while let Some(t) = iter.next() {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            _ if depth == 0 && t.kind == TokKind::Ident => {
                // Skip path prefixes: `crate :: op :: Operator` — keep the
                // *last* ident of the leading path.
                let mut name = t.text.clone();
                while iter.peek().is_some_and(|n| n.text == "::") {
                    iter.next();
                    if let Some(n) = iter.next() {
                        name = n.text.clone();
                    }
                }
                return Some(name);
            }
            _ => {}
        }
    }
    None
}

/// Struct names declared in this file with at least one field.
fn collect_structs_with_fields(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].text != "struct" || toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Find the struct body delimiter at depth 0 (skipping generics and
        // where clauses).
        let mut depth = 0i64;
        for (j, t) in toks.iter().enumerate().skip(i + 2).take(128) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ";" if depth <= 0 => break, // unit struct or tuple struct end
                "(" if depth <= 0 => {
                    // Tuple struct: non-empty parens mean fields.
                    if toks.get(j + 1).is_some_and(|n| n.text != ")") {
                        out.insert(name_tok.text.clone());
                    }
                    break;
                }
                "{" if depth <= 0 => {
                    // Named struct: any `ident :` at depth 1 means fields.
                    if let Some(end) = matching_brace(toks, j) {
                        let mut d = 0i64;
                        for k in j..end {
                            match toks[k].text.as_str() {
                                "{" | "(" | "[" => d += 1,
                                "}" | ")" | "]" => d -= 1,
                                ":" if d == 1
                                    && toks[k - 1].kind == TokKind::Ident
                                    && toks.get(k + 1).is_some_and(|n| n.text != ":") =>
                                {
                                    out.insert(name_tok.text.clone());
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    out
}

/// Does the block mutate `self` state? (`self.x = …`, `self.x += …`, or
/// `self.x.push(…)`-style calls from the mutating-method list.)
fn block_mutates_self(toks: &[Tok]) -> bool {
    for i in 0..toks.len() {
        if toks[i].text != "self" || toks[i].kind != TokKind::Ident {
            continue;
        }
        if toks.get(i + 1).is_none_or(|t| t.text != ".") {
            continue;
        }
        let Some(field) = toks.get(i + 2) else {
            continue;
        };
        if field.kind != TokKind::Ident {
            continue;
        }
        match toks.get(i + 3) {
            Some(t) if ASSIGN_OPS.contains(&t.text.as_str()) => return true,
            Some(t)
                if t.text == "."
                    && toks
                        .get(i + 4)
                        .is_some_and(|m| MUT_METHODS.contains(&m.text.as_str()))
                    && toks.get(i + 5).is_some_and(|p| p.text == "(") =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R5: batch-contract
// ---------------------------------------------------------------------------

/// A batched override must stay coherent with the per-tuple path it
/// shadows: the engine's differential systest proves `on_batch` ≡ looped
/// `on_tuple` dynamically, and this rule catches the two statically
/// checkable ways the pair drifts apart. An `impl Operator` overriding
/// `on_batch` is flagged when (a) the same impl block does not also define
/// `on_tuple` — the two paths must be maintained side by side — or (b) its
/// `on_tuple` can `raise_fault` but its `on_batch` never does, meaning the
/// batched path silently drops the fault contract the per-tuple fallback
/// enforces.
fn check_batch_contract(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for b in collect_impls(toks).iter().filter(|b| b.is_operator) {
        let body = &toks[b.start..=b.end];
        let Some((batch_start, batch_end, batch_line)) = fn_span(body, "on_batch") else {
            continue;
        };
        let Some((tuple_start, tuple_end, _)) = fn_span(body, "on_tuple") else {
            out.push(Finding {
                rule: R5_BATCH_CONTRACT,
                line: batch_line,
                message: format!(
                    "`{}` overrides `on_batch` without defining `on_tuple` in the same impl; \
                     the per-tuple fallback and the batched path must be maintained together, \
                     or the divergence justified with an allow",
                    b.type_name
                ),
            });
            continue;
        };
        let raises = |span: &[Tok]| {
            span.iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "raise_fault")
        };
        if raises(&body[tuple_start..=tuple_end]) && !raises(&body[batch_start..=batch_end]) {
            out.push(Finding {
                rule: R5_BATCH_CONTRACT,
                line: batch_line,
                message: format!(
                    "`{}`'s `on_tuple` can raise_fault but its `on_batch` override never does; \
                     the batched path drops the fault contract the per-tuple fallback enforces — \
                     propagate the fault or justify with an allow",
                    b.type_name
                ),
            });
        }
    }
    out
}

/// Token span and declaration line of `fn <name>` within an impl body:
/// `(first token of the fn, index of its closing brace, line of `fn`)`.
fn fn_span(toks: &[Tok], name: &str) -> Option<(usize, usize, u32)> {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].text != "fn" || toks[i].kind != TokKind::Ident || toks[i + 1].text != name {
            continue;
        }
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 2).take(256) {
            match t.text.as_str() {
                "{" => {
                    open = Some(j);
                    break;
                }
                ";" => break,
                _ => {}
            }
        }
        let open = open?;
        let end = matching_brace(toks, open)?;
        return Some((i, end, toks[i].line));
    }
    None
}

// ---------------------------------------------------------------------------
// R4: float-digest
// ---------------------------------------------------------------------------

/// Type names whose impl blocks are digest contexts.
const DIGEST_TYPES: &[&str] = &["StateWriter", "StateReader", "DigestWriter"];

/// Idents that mark a bit-preserving float encoding — a digest-context
/// function routing floats through these is canonical by construction.
fn is_bit_preserving(text: &str) -> bool {
    text.contains("to_bits") || text.contains("from_bits") || text.ends_with("_le")
}

fn check_float_digest(toks: &[Tok]) -> Vec<Finding> {
    let impls = collect_impls(toks);
    let digest_impl_ranges: Vec<(usize, usize)> = impls
        .iter()
        .filter(|b| DIGEST_TYPES.contains(&b.type_name.as_str()))
        .map(|b| (b.start, b.end))
        .collect();

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "fn" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            break;
        };
        // Signature runs to the body `{` (or `;` for a bodyless decl).
        let mut open = None;
        for (j, t) in toks.iter().enumerate().skip(i + 2).take(256) {
            if t.text == "{" {
                open = Some(j);
                break;
            }
            if t.text == ";" {
                break;
            }
        }
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let Some(end) = matching_brace(toks, open) else {
            i += 2;
            continue;
        };
        let sig = &toks[i..open];
        let in_digest_impl = digest_impl_ranges.iter().any(|&(a, b)| i >= a && end <= b);
        let is_context = name.text.contains("digest")
            || in_digest_impl
            || sig
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "DigestWriter");
        if is_context {
            let span = &toks[i..=end];
            let exempt = span
                .iter()
                .any(|t| t.kind == TokKind::Ident && is_bit_preserving(&t.text));
            if !exempt {
                let mut seen_lines = BTreeSet::new();
                for t in span {
                    let is_float_ty =
                        t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64");
                    let is_float_lit = t.kind == TokKind::Number
                        && (t.text.ends_with("f32") || t.text.ends_with("f64"));
                    if (is_float_ty || is_float_lit) && seen_lines.insert(t.line) {
                        out.push(Finding {
                            rule: R4_FLOAT_DIGEST,
                            line: t.line,
                            message: format!(
                                "float value in digest context `{}` without a bit-preserving \
                                 encoding (`to_bits`/`from_bits`/`*_le`); floats must enter \
                                 digests and checkpoints as bits, never as formatted text",
                                name.text
                            ),
                        });
                    }
                }
            }
        }
        i = open + 1;
    }
    out
}
