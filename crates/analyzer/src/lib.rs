//! `sslint` — workspace determinism linter + static ADL verifier.
//!
//! Every claim the campaign pipeline makes (bit-identical replay,
//! byte-identical reports across `--jobs`, digest-verified restores) rests
//! on the codebase staying free of nondeterminism hazards. This crate is the
//! static pass that keeps it that way at PR time:
//!
//! - **R1 `unordered-iter`** — no iteration over `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in &map`) in
//!   crates on the digest path ([`DIGEST_PATH_CRATES`]), unless the site
//!   feeds a sorting adapter within two lines or carries an allow.
//! - **R2 `ambient-authority`** — no `Instant::now`, `SystemTime`,
//!   `thread_rng`, `rand::random`, or `std::thread::spawn` anywhere in the
//!   workspace (the metastore's replicated follower choice is the canonical
//!   seeded-draw site the `rand::random` matcher protects),
//!   outside [`AMBIENT_ALLOWED_FILES`] (the deterministic harness pool) or
//!   an annotated allow.
//! - **R3 `ckpt-contract`** — an `impl Operator` whose type has mutable
//!   state must override both `checkpoint` and `restore` (state that exists
//!   but is never saved silently breaks every recovery claim).
//! - **R4 `float-digest`** — no `f32`/`f64` formatting or hashing inside
//!   digest / `StateWriter` paths; floats must round-trip through
//!   `to_bits`/`from_bits` or the `*_le` canonical codec.
//!
//! Escape hatch: `// sslint: allow(rule, reason)` on the offending line or
//! the line above. The reason is mandatory (`bad-allow` otherwise) and the
//! allow must actually suppress something (`unused-allow` otherwise).
//!
//! The scanner is deliberately dependency-free: a lightweight lexer
//! ([`lexer`]) rather than `syn`, so it builds instantly and works in the
//! vendored, no-crates.io environment. The second layer, `sslint --adl`,
//! compiles the four real applications and runs
//! [`sps_model::verify_graph`] over them (see [`adl`]).

pub mod adl;
pub mod lexer;
pub mod rules;

use rules::{FileClass, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose in-tree order can reach a digest, a determinism artifact,
/// or checkpoint state; R1/R4 apply here.
pub const DIGEST_PATH_CRATES: &[&str] = &["sim", "engine", "runtime", "model", "harness"];

/// Files exempt from R2: the harness worker pool is the one sanctioned
/// thread-spawn site (deterministic indexed scope-join, no ambient input).
pub const AMBIENT_ALLOWED_FILES: &[&str] = &["crates/harness/src/pool.rs"];

/// Directory names never descended into during a workspace walk. `tests`
/// directories hold integration tests (exempt, like `#[cfg(test)]` blocks);
/// `fixtures` hold the linter's own deliberately-broken corpus.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "tests", "fixtures"];

/// One workspace-level finding: a rule violation pinned to file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    /// Path relative to the scan root where possible.
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    /// Stable machine-readable form: `sslint: <rule> <path>:<line> <msg>`.
    pub fn render(&self) -> String {
        format!(
            "sslint: {} {}:{} {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// Determines which rule sets apply to a file, from its path alone.
///
/// The linter's own fixture corpus is classified as digest-path so R1/R4
/// fixtures exercise the strictest class.
pub fn classify(rel_path: &Path) -> FileClass {
    let components: Vec<&str> = rel_path
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    let digest_path = components
        .iter()
        .position(|c| *c == "crates")
        .and_then(|i| components.get(i + 1))
        .is_some_and(|krate| DIGEST_PATH_CRATES.contains(krate))
        || components.contains(&"fixtures");
    let unix: String = components.join("/");
    let ambient_allowed = AMBIENT_ALLOWED_FILES.iter().any(|f| unix.ends_with(f));
    FileClass {
        digest_path,
        ambient_allowed,
    }
}

/// Lints one file's source text under its path-derived classification.
pub fn check_source(rel_path: &Path, src: &str) -> Vec<Diagnostic> {
    let rel = rel_path.display().to_string();
    rules::check_file(src, classify(rel_path))
        .into_iter()
        .map(
            |Finding {
                 rule,
                 line,
                 message,
             }| Diagnostic {
                rule,
                path: rel.clone(),
                line,
                message,
            },
        )
        .collect()
}

/// Walks each root (file or directory) and lints every `.rs` file found,
/// skipping [`SKIP_DIRS`] during descent. Explicitly-passed roots are always
/// scanned, even when named like a skipped directory — that is how the
/// fixture corpus is linted on purpose.
pub fn scan_paths(base: &Path, roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut out = Vec::new();
    for file in files {
        let src = fs::read_to_string(&file)?;
        let rel = file.strip_prefix(base).unwrap_or(&file);
        out.extend(check_source(rel, &src));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    // Deterministic traversal order: sort directory entries by name.
    let mut entries: Vec<PathBuf> = fs::read_dir(root)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_digest_path_crates() {
        assert!(classify(Path::new("crates/sim/src/scheduler.rs")).digest_path);
        assert!(classify(Path::new("crates/harness/src/cache.rs")).digest_path);
        assert!(!classify(Path::new("crates/apps/src/live.rs")).digest_path);
        assert!(!classify(Path::new("crates/bench/src/bin/campaign.rs")).digest_path);
    }

    #[test]
    fn classify_ambient_allowlist() {
        assert!(classify(Path::new("crates/harness/src/pool.rs")).ambient_allowed);
        assert!(!classify(Path::new("crates/harness/src/runner.rs")).ambient_allowed);
    }

    #[test]
    fn classify_fixture_corpus_is_digest_path() {
        let c = classify(Path::new("crates/analyzer/tests/fixtures/r1/bad.rs"));
        assert!(c.digest_path);
        assert!(!c.ambient_allowed);
    }

    #[test]
    fn render_is_greppable() {
        let d = Diagnostic {
            rule: rules::R2_AMBIENT_AUTHORITY,
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "wall clock".into(),
        };
        assert_eq!(
            d.render(),
            "sslint: ambient-authority crates/x/src/lib.rs:7 wall clock"
        );
    }
}
