//! The fixture corpus: one bad / good / allowlisted case per rule, asserting
//! exact diagnostics (rule id, file, line), plus end-to-end exit-code checks
//! on the `sslint` binary itself.
//!
//! Fixture files live under `tests/fixtures/` — a directory name the
//! workspace walk never descends into, so the corpus trips nothing in CI
//! while staying available for deliberate linting via `--paths`.

use analyzer::{check_source, rules, Diagnostic};
use std::path::Path;
use std::process::Command;

fn fixture_diags(rel: &str) -> Vec<Diagnostic> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let src = std::fs::read_to_string(dir.join(rel)).expect("fixture exists");
    check_source(Path::new(rel), &src)
}

/// `(rule, line)` pairs, in reported order.
fn rule_lines(rel: &str) -> Vec<(&'static str, u32)> {
    fixture_diags(rel)
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn r1_bad_flags_both_iteration_shapes() {
    assert_eq!(
        rule_lines("fixtures/r1/bad.rs"),
        vec![
            (rules::R1_UNORDERED_ITER, 12), // for … in &index.slots
            (rules::R1_UNORDERED_ITER, 19), // map.keys()
        ]
    );
    let d = &fixture_diags("fixtures/r1/bad.rs")[1];
    assert_eq!(d.path, "fixtures/r1/bad.rs");
    assert!(d.message.contains("map.keys()"), "{}", d.message);
}

#[test]
fn r1_good_and_allowed_are_clean() {
    assert_eq!(rule_lines("fixtures/r1/good.rs"), vec![]);
    assert_eq!(rule_lines("fixtures/r1/allowed.rs"), vec![]);
}

#[test]
fn r2_bad_flags_clock_and_spawn() {
    assert_eq!(
        rule_lines("fixtures/r2/bad.rs"),
        vec![
            (rules::R2_AMBIENT_AUTHORITY, 6),  // Instant::now()
            (rules::R2_AMBIENT_AUTHORITY, 11), // std::thread::spawn
        ]
    );
}

#[test]
fn r2_good_and_allowed_are_clean() {
    assert_eq!(rule_lines("fixtures/r2/good.rs"), vec![]);
    assert_eq!(rule_lines("fixtures/r2/allowed.rs"), vec![]);
}

#[test]
fn r2_metastore_bad_flags_wall_clock_and_unseeded_follower_choice() {
    assert_eq!(
        rule_lines("fixtures/r2/metastore_bad.rs"),
        vec![
            (rules::R2_AMBIENT_AUTHORITY, 12), // SystemTime::now op stamp
            (rules::R2_AMBIENT_AUTHORITY, 15), // rand::random follower pick
        ]
    );
    let d = &fixture_diags("fixtures/r2/metastore_bad.rs")[1];
    assert!(
        d.message.contains("seeded SimRng"),
        "message must point at the sanctioned alternative: {}",
        d.message
    );
}

#[test]
fn r2_metastore_good_is_clean() {
    assert_eq!(rule_lines("fixtures/r2/metastore_good.rs"), vec![]);
}

#[test]
fn r3_bad_flags_missing_contract_at_impl_line() {
    assert_eq!(
        rule_lines("fixtures/r3/bad.rs"),
        vec![(rules::R3_CKPT_CONTRACT, 7)]
    );
    let d = &fixture_diags("fixtures/r3/bad.rs")[0];
    assert!(
        d.message.contains("overrides neither"),
        "message names the missing halves: {}",
        d.message
    );
}

#[test]
fn r3_good_and_allowed_are_clean() {
    assert_eq!(rule_lines("fixtures/r3/good.rs"), vec![]);
    assert_eq!(rule_lines("fixtures/r3/allowed.rs"), vec![]);
}

#[test]
fn r4_bad_flags_float_in_digest_context() {
    assert_eq!(
        rule_lines("fixtures/r4/bad.rs"),
        vec![(rules::R4_FLOAT_DIGEST, 3)]
    );
}

#[test]
fn r4_good_and_allowed_are_clean() {
    assert_eq!(rule_lines("fixtures/r4/good.rs"), vec![]);
    assert_eq!(rule_lines("fixtures/r4/allowed.rs"), vec![]);
}

#[test]
fn r5_bad_flags_missing_on_tuple_and_dropped_fault() {
    assert_eq!(
        rule_lines("fixtures/r5/bad.rs"),
        vec![
            (rules::R5_BATCH_CONTRACT, 6),  // on_batch without on_tuple
            (rules::R5_BATCH_CONTRACT, 23), // on_tuple raises, on_batch doesn't
        ]
    );
    let diags = fixture_diags("fixtures/r5/bad.rs");
    assert!(
        diags[0].message.contains("without defining `on_tuple`"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[1].message.contains("drops the fault contract"),
        "{}",
        diags[1].message
    );
}

#[test]
fn r5_good_and_allowed_are_clean() {
    assert_eq!(rule_lines("fixtures/r5/good.rs"), vec![]);
    assert_eq!(rule_lines("fixtures/r5/allowed.rs"), vec![]);
}

#[test]
fn meta_bad_flags_malformed_and_unused_allows() {
    assert_eq!(
        rule_lines("fixtures/meta/bad.rs"),
        vec![
            (rules::BAD_ALLOW, 3),    // missing reason
            (rules::UNUSED_ALLOW, 6), // suppresses nothing
            (rules::BAD_ALLOW, 9),    // unknown rule id
        ]
    );
}

// ---------------------------------------------------------------------------
// Binary-level gate behavior
// ---------------------------------------------------------------------------

fn sslint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sslint"))
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .args(args)
        .output()
        .expect("sslint runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn deny_mode_rejects_the_fixture_corpus() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let (ok, stdout) = sslint(&["--deny", "--paths", fixtures.to_str().unwrap()]);
    assert!(!ok, "fixture corpus must fail the gate:\n{stdout}");
    // Every rule id appears, each with a file:line location.
    for rule in [
        "unordered-iter",
        "ambient-authority",
        "ckpt-contract",
        "float-digest",
        "batch-contract",
        "bad-allow",
        "unused-allow",
    ] {
        assert!(
            stdout.contains(&format!("sslint: {rule} ")),
            "missing {rule}:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("fixtures/r3/bad.rs:7"),
        "locations are file:line:\n{stdout}"
    );
}

#[test]
fn deny_mode_accepts_a_clean_path() {
    let good = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1/good.rs");
    let (ok, stdout) = sslint(&["--deny", "--paths", good.to_str().unwrap()]);
    assert!(ok, "clean fixture must pass the gate:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn deny_mode_accepts_the_workspace() {
    // The CI gate in miniature: the tree itself must lint clean.
    let (ok, stdout) = sslint(&["--deny"]);
    assert!(ok, "workspace must lint clean:\n{stdout}");
}
