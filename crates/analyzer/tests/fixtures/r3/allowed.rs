//! R3 fixture: a declared not_checkpointable() decision recorded in an allow.

pub struct Scratch {
    hits: u64,
}

// sslint: allow(ckpt-contract, logical op is declared not_checkpointable() — scratch state is rebuilt from the stream)
impl Operator for Scratch {
    fn process(&mut self) {
        self.hits += 1;
    }
}
