//! R3 fixture: stateful operator missing the checkpoint contract.

pub struct Counter {
    count: u64,
}

impl Operator for Counter {
    fn process(&mut self) {
        self.count += 1;
    }
}
