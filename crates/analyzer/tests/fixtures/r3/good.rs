//! R3 fixture: stateful operator honoring the checkpoint contract.

pub struct Counter {
    count: u64,
}

impl Operator for Counter {
    fn process(&mut self) {
        self.count += 1;
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        None
    }

    fn restore(&mut self, _blob: &StateBlob) -> Result<(), EngineError> {
        Ok(())
    }
}
