//! Meta fixture: malformed and unused allows are themselves findings.

// sslint: allow(unordered-iter)
pub fn nothing() {}

// sslint: allow(unordered-iter, this reason suppresses nothing on the next line)
pub fn also_nothing() {}

// sslint: allow(made-up-rule, with a reason but an unknown rule id)
pub fn still_nothing() {}
