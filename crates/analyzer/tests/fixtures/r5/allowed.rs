//! R5 fixture: a deliberate fault-path divergence recorded in an allow.

pub struct Sampler;

impl Operator for Sampler {
    fn on_tuple(&mut self, _port: usize, t: Tuple, ctx: &mut OpCtx) {
        if t.attrs.is_empty() {
            ctx.raise_fault("empty tuple");
        }
        ctx.submit(0, t);
    }

    // sslint: allow(batch-contract, batched path pre-filters empty tuples upstream so the fault arm is unreachable by construction)
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        ctx.submit_batch(0, batch);
    }
}
