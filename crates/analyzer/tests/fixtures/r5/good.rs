//! R5 fixture: coherent batched overrides — `on_tuple` maintained alongside
//! `on_batch`, with the fault contract preserved on both paths.

pub struct Fwd;

impl Operator for Fwd {
    fn on_tuple(&mut self, _port: usize, t: Tuple, ctx: &mut OpCtx) {
        if t.attrs.is_empty() {
            ctx.raise_fault("empty tuple");
            return;
        }
        ctx.submit(0, t);
    }

    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        for t in batch {
            if t.attrs.is_empty() {
                ctx.raise_fault("empty tuple");
                return;
            }
            ctx.submit(0, t);
        }
    }
}

pub struct Faultless;

impl Operator for Faultless {
    fn on_tuple(&mut self, _port: usize, t: Tuple, ctx: &mut OpCtx) {
        ctx.submit(0, t);
    }

    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        ctx.submit_batch(0, batch);
    }
}
