//! R5 fixture: batched overrides that drift from the per-tuple path.

pub struct BatchOnly;

impl Operator for BatchOnly {
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        for t in batch {
            ctx.submit(0, t);
        }
    }
}

pub struct DropsFault;

impl Operator for DropsFault {
    fn on_tuple(&mut self, _port: usize, t: Tuple, ctx: &mut OpCtx) {
        if t.attrs.is_empty() {
            ctx.raise_fault("empty tuple");
        }
        ctx.submit(0, t);
    }

    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        for t in batch {
            ctx.submit(0, t);
        }
    }
}
