//! R2 fixture: ambient authority — wall clocks and free-running threads.

use std::time::Instant;

pub fn stamp() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn spawn_worker() {
    std::thread::spawn(|| {});
}
