//! R2 fixture: a metastore that reaches for ambient authority — wall-clock
//! op stamps and unseeded follower choice — instead of simulated time and
//! a seeded SimRng stream.

pub struct BadMetastore {
    log: Vec<(u64, String)>,
    followers: usize,
}

impl BadMetastore {
    pub fn apply(&mut self, op: String) {
        let stamp = std::time::SystemTime::now();
        let _ = stamp;
        self.log.push((0, op));
        let follower = rand::random::<usize>() % self.followers;
        let _ = follower;
    }
}
