//! R2 fixture: simulated time flows in as data; no ambient reads.

pub fn stamp(now_quanta: u64) -> u64 {
    now_quanta + 1
}
