//! R2 fixture: an allow with a recorded invariant suppresses the diagnostic.

use std::time::Instant;

pub fn wall_secs() -> f64 {
    // sslint: allow(ambient-authority, timing is printed only under --timing and never reaches default stdout)
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
