//! R2 fixture: the sanctioned shape — op stamps arrive as simulated time
//! and follower choice comes from a seeded, private RNG stream.

pub struct GoodMetastore {
    log: Vec<(u64, String)>,
    followers: usize,
    rng_state: u64,
}

impl GoodMetastore {
    pub fn apply(&mut self, now_quanta: u64, op: String) {
        self.log.push((now_quanta, op));
        // Seeded draw: a pure function of the store's own stream state.
        self.rng_state = self.rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let follower = (self.rng_state >> 33) as usize % self.followers;
        let _ = follower;
    }
}
