//! R1 fixture: ordered containers and sorting adapters are clean.

use std::collections::{BTreeMap, HashMap};

pub struct Index {
    slots: BTreeMap<String, usize>,
}

pub fn fold_slots(index: &Index) -> u64 {
    let mut acc = 0u64;
    for (name, slot) in &index.slots {
        acc ^= *slot as u64 ^ name.len() as u64;
    }
    acc
}

pub fn sorted_keys(map: &HashMap<String, usize>) -> Vec<&String> {
    let mut keys: Vec<&String> = map.keys().collect();
    keys.sort_unstable();
    keys
}
