//! R1 fixture: unordered iteration over hash containers on the digest path.

use std::collections::{HashMap, HashSet};

pub struct Index {
    slots: HashMap<String, usize>,
    seen: HashSet<u64>,
}

pub fn fold_slots(index: &Index) -> u64 {
    let mut acc = 0u64;
    for (name, slot) in &index.slots {
        acc ^= *slot as u64 ^ name.len() as u64;
    }
    acc
}

pub fn first_key(map: &HashMap<String, usize>) -> Option<&String> {
    map.keys().next()
}
