//! R1 fixture: a justified allow suppresses the diagnostic.

use std::collections::HashMap;

pub fn any_key(map: &HashMap<String, usize>) -> Option<&String> {
    // sslint: allow(unordered-iter, victim choice is perf-only and never reaches a digest)
    map.keys().next()
}
