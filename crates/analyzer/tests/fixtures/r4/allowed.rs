//! R4 fixture: a justified float in a digest context.

// sslint: allow(float-digest, rate is quantized to a fixed grid before hashing so formatting is stable)
pub fn digest_rate(rate: f64) -> u64 {
    format!("{rate:.3}").len() as u64
}
