//! R4 fixture: a float formatted inside a digest context.

pub fn digest_rate(rate: f64) -> u64 {
    let text = format!("{rate}");
    text.len() as u64
}
