//! R4 fixture: floats enter digests as bits, never as text.

pub fn digest_rate(rate: f64) -> u64 {
    rate.to_bits()
}
