//! §5.1 — Adaptation to the incoming data distribution (Figure 8).
//!
//! A sentiment-analysis application consumes synthetic tweets about a
//! product, classifies sentiment, correlates negative tweets with a
//! pre-computed *cause model*, and aggregates top causes. When the share of
//! negative tweets with **unknown** causes overtakes the known ones, the
//! application must recompute the model — in the paper via a Hadoop /
//! BigInsights batch job over the stored tweets; here via [`HadoopJobSim`],
//! a latency-accurate stand-in that recomputes the model from the shared
//! tweet archive.
//!
//! Two variants are provided:
//! - **orchestrated** (the paper's contribution): the graph contains only
//!   data-processing operators; [`SentimentOrca`] subscribes to the
//!   correlator's custom metrics and triggers the recomputation (§5.1),
//! - **embedded** (the Figure 1 baseline): two extra operators (op8
//!   detector + op9 actuator) are fused into the graph, coupling control
//!   and data logic.

use crate::SharedStores;
use orca::{
    OperatorMetricContext, OperatorMetricScope, OrcaCtx, OrcaStartContext, Orchestrator,
    TimerContext,
};
use parking_lot::Mutex;
use sps_engine::{
    EngineError, OpCtx, Operator, OperatorRegistry, StateBlob, StateReader, StateWriter, Tuple,
};
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::{Adl, Value};
use sps_sim::{SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Shared state: cause model + tweet archive (the paper's HDFS files)
// ---------------------------------------------------------------------------

/// The cause model: the set of known complaint causes and a version number.
#[derive(Clone, Debug, Default)]
pub struct CauseModel {
    pub known_causes: Vec<String>,
    pub version: u64,
}

/// Shared handle to the cause model ("the list of causes is computed offline
/// ... and loaded by the streaming application").
#[derive(Clone, Default)]
pub struct CauseModelHandle(Arc<Mutex<CauseModel>>);

impl CauseModelHandle {
    pub fn set(&self, causes: &[&str]) {
        let mut m = self.0.lock();
        m.known_causes = causes.iter().map(|c| c.to_string()).collect();
        m.version += 1;
    }

    pub fn snapshot(&self) -> CauseModel {
        self.0.lock().clone()
    }

    pub fn version(&self) -> u64 {
        self.0.lock().version
    }
}

/// Archive of recent negative-tweet causes ("stored on disk for later batch
/// processing"). Bounded so long runs stay bounded.
#[derive(Clone, Default)]
pub struct TweetArchiveHandle(Arc<Mutex<VecDeque<String>>>);

const ARCHIVE_CAP: usize = 50_000;

impl TweetArchiveHandle {
    pub fn record(&self, cause: &str) {
        let mut a = self.0.lock();
        if a.len() == ARCHIVE_CAP {
            a.pop_front();
        }
        a.push_back(cause.to_string());
    }

    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Cause frequencies over the archived tweets.
    pub fn cause_histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for c in self.0.lock().iter() {
            *h.entry(c.clone()).or_insert(0) += 1;
        }
        h
    }
}

/// The simulated Hadoop/BigInsights model-recomputation job: given the tweet
/// archive, the top causes covering at least `coverage` of archived tweets
/// become the new model. Latency is paid by the caller (the ORCA logic waits
/// on a timer before applying the result, mirroring the real job's runtime).
pub struct HadoopJobSim;

impl HadoopJobSim {
    /// Runs the batch computation against the archive and installs the new
    /// model. Returns the new known-cause list.
    pub fn recompute(archive: &TweetArchiveHandle, model: &CauseModelHandle) -> Vec<String> {
        let hist = archive.cause_histogram();
        let total: usize = hist.values().sum();
        if total == 0 {
            return model.snapshot().known_causes;
        }
        // Keep every cause accounting for ≥ 5% of archived complaints.
        let mut causes: Vec<(String, usize)> = hist.into_iter().collect();
        causes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let kept: Vec<String> = causes
            .into_iter()
            .filter(|(_, n)| *n * 20 >= total)
            .map(|(c, _)| c)
            .collect();
        let refs: Vec<&str> = kept.iter().map(String::as_str).collect();
        model.set(&refs);
        kept
    }
}

// ---------------------------------------------------------------------------
// Workload: synthetic tweet source with cause drift
// ---------------------------------------------------------------------------

/// Synthetic tweet source. Emits `{product, sentiment, cause, ts}` tuples.
/// Until `drift_at_secs`, negative-tweet causes are drawn from
/// `{flash, screen}`; afterwards, predominantly `{antenna}` — reproducing
/// the paper's experiment where "users complain about antenna issues"
/// around epoch 250.
pub struct TweetSource {
    rate: f64,
    drift_at: SimTime,
    credit: f64,
    rng: Option<SimRng>,
    seed: u64,
}

impl TweetSource {
    fn from_params(
        op: &str,
        params: &sps_model::value::ParamMap,
    ) -> Result<Self, sps_engine::EngineError> {
        let rate = params.get("rate").and_then(Value::as_f64).unwrap_or(20.0);
        let drift = params
            .get("drift_at_secs")
            .and_then(Value::as_f64)
            .unwrap_or(f64::MAX);
        let seed = params.get("seed").and_then(Value::as_int).unwrap_or(1) as u64;
        if rate < 0.0 {
            return Err(sps_engine::EngineError::BadParam {
                op: op.to_string(),
                message: "rate must be non-negative".into(),
            });
        }
        Ok(TweetSource {
            rate,
            drift_at: if drift == f64::MAX {
                SimTime::from_millis(u64::MAX)
            } else {
                SimTime::from_millis((drift * 1000.0) as u64)
            },
            credit: 0.0,
            rng: Some(SimRng::new(seed)),
            seed,
        })
    }
}

impl Operator for TweetSource {
    fn on_tuple(&mut self, _port: usize, _t: Tuple, _ctx: &mut OpCtx) {}

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        let _ = self.seed;
        let rng = self.rng.as_mut().expect("rng present");
        self.credit += self.rate * ctx.quantum().as_secs_f64();
        let drifted = ctx.now() >= self.drift_at;
        while self.credit >= 1.0 - 1e-9 {
            self.credit -= 1.0;
            let product = if rng.gen_bool(0.8) { "iphone" } else { "other" };
            let negative = rng.gen_bool(0.6);
            // A long tail of rare causes (each far below the model's 5%
            // coverage threshold) keeps a small unknown background, so the
            // post-adaptation ratio stabilizes near but below 1.0 as in the
            // paper's Figure 8 rather than collapsing to zero.
            let rare = ["cable", "case", "gps", "wifi", "mic", "camera"];
            let cause = if !negative {
                "none"
            } else if drifted {
                // Post-drift: antenna dominates; older causes linger.
                match rng.pick_weighted(&[0.68, 0.14, 0.10, 0.08]) {
                    0 => "antenna",
                    1 => "flash",
                    2 => "screen",
                    _ => rare[rng.gen_range(0, rare.len() as u64) as usize],
                }
            } else {
                match rng.pick_weighted(&[0.48, 0.38, 0.14]) {
                    0 => "flash",
                    1 => "screen",
                    _ => rare[rng.gen_range(0, rare.len() as u64) as usize],
                }
            };
            let t = Tuple::new()
                .with("product", product)
                .with("sentiment", if negative { "neg" } else { "pos" })
                .with("cause", cause)
                .with("ts", Value::Timestamp(ctx.now().as_millis()));
            ctx.submit(0, t);
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_f64(self.credit);
        w.put_rng(self.rng.as_ref().expect("rng present"));
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.credit = r.get_f64()?;
        self.rng = Some(r.get_rng()?);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// Correlates negative tweets with the cause model. Maintains the two custom
/// metrics the ORCA logic subscribes to (`nKnownCauses` / `nUnknownCauses`)
/// over a sliding accounting window, archives negative tweets, and reloads
/// the model whenever its version changes (the paper's "automatically
/// reloads the output of the Hadoop job").
pub struct CauseCorrelator {
    model: CauseModelHandle,
    archive: TweetArchiveHandle,
    loaded: CauseModel,
    /// (timestamp, known?) ring for windowed metric accounting.
    window: VecDeque<(SimTime, bool)>,
    window_span: SimDuration,
}

impl CauseCorrelator {
    fn new(model: CauseModelHandle, archive: TweetArchiveHandle, window_secs: f64) -> Self {
        let loaded = model.snapshot();
        CauseCorrelator {
            model,
            archive,
            loaded,
            window: VecDeque::new(),
            window_span: SimDuration::from_millis((window_secs * 1000.0) as u64),
        }
    }

    fn refresh_metrics(&mut self, now: SimTime, ctx: &mut OpCtx) {
        while let Some((t, _)) = self.window.front() {
            if now.since(*t) > self.window_span {
                self.window.pop_front();
            } else {
                break;
            }
        }
        let known = self.window.iter().filter(|(_, k)| *k).count() as i64;
        let unknown = self.window.len() as i64 - known;
        ctx.metric_set("nKnownCauses", known);
        ctx.metric_set("nUnknownCauses", unknown);
        ctx.metric_set("modelVersion", self.loaded.version as i64);
    }
}

impl Operator for CauseCorrelator {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        // Hot reload when the batch job published a new model version.
        if self.model.version() != self.loaded.version {
            self.loaded = self.model.snapshot();
        }
        let Some(cause) = tuple.get_str("cause") else {
            ctx.raise_fault("tweet without cause attribute");
            return;
        };
        self.archive.record(cause);
        let known = self.loaded.known_causes.iter().any(|c| c == cause);
        self.window.push_back((ctx.now(), known));
        self.refresh_metrics(ctx.now(), ctx);
        let out = tuple.with("known", known);
        ctx.submit(0, out);
    }

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        // Keep metrics fresh even when the stream goes quiet.
        let now = ctx.now();
        self.refresh_metrics(now, ctx);
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        // Loaded model mirror: a revived correlator must not silently jump
        // to a newer model version than the one it was classifying with.
        w.put_u64(self.loaded.version);
        w.put_u32(self.loaded.known_causes.len() as u32);
        for c in &self.loaded.known_causes {
            w.put_str(c);
        }
        w.put_u32(self.window.len() as u32);
        for (at, known) in &self.window {
            w.put_time(*at);
            w.put_bool(*known);
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.loaded.version = r.get_u64()?;
        let n = r.get_u32()? as usize;
        self.loaded.known_causes.clear();
        for _ in 0..n {
            self.loaded.known_causes.push(r.get_str()?);
        }
        let n = r.get_u32()? as usize;
        self.window.clear();
        for _ in 0..n {
            let at = r.get_time()?;
            let known = r.get_bool()?;
            self.window.push_back((at, known));
        }
        Ok(())
    }
}

/// Figure 1 baseline, operator op8: watches the correlator output in-graph
/// and emits a trigger tuple when unknown > known over its own window.
pub struct EmbeddedDetector {
    window: VecDeque<(SimTime, bool)>,
    span: SimDuration,
    last_trigger: Option<SimTime>,
    holdoff: SimDuration,
}

impl Operator for EmbeddedDetector {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        let Some(known) = tuple.get_bool("known") else {
            return;
        };
        let now = ctx.now();
        self.window.push_back((now, known));
        while let Some((t, _)) = self.window.front() {
            if now.since(*t) > self.span {
                self.window.pop_front();
            } else {
                break;
            }
        }
        let known_n = self.window.iter().filter(|(_, k)| *k).count();
        let unknown_n = self.window.len() - known_n;
        let held_off = self
            .last_trigger
            .is_some_and(|t| now.since(t) < self.holdoff);
        if unknown_n > known_n && !held_off && self.window.len() >= 20 {
            self.last_trigger = Some(now);
            ctx.metric_add("nTriggers", 1);
            ctx.submit(0, Tuple::new().with("trigger", true));
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_opt(&self.last_trigger, |w, t| w.put_time(*t));
        w.put_u32(self.window.len() as u32);
        for (at, known) in &self.window {
            w.put_time(*at);
            w.put_bool(*known);
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.last_trigger = r.get_opt(|r| r.get_time())?;
        let n = r.get_u32()? as usize;
        self.window.clear();
        for _ in 0..n {
            let at = r.get_time()?;
            let known = r.get_bool()?;
            self.window.push_back((at, known));
        }
        Ok(())
    }
}

/// Figure 1 baseline, operator op9: "calls an external script that invokes
/// the cause recomputation" — here it runs the batch recomputation after a
/// simulated delay, embedded in the data path.
pub struct EmbeddedActuator {
    model: CauseModelHandle,
    archive: TweetArchiveHandle,
    latency: SimDuration,
    pending_done_at: Option<SimTime>,
}

impl Operator for EmbeddedActuator {
    fn on_tuple(&mut self, _port: usize, _t: Tuple, ctx: &mut OpCtx) {
        if self.pending_done_at.is_none() {
            self.pending_done_at = Some(ctx.now() + self.latency);
            ctx.metric_add("nJobsLaunched", 1);
        }
    }

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        if let Some(due) = self.pending_done_at {
            if ctx.now() >= due {
                self.pending_done_at = None;
                HadoopJobSim::recompute(&self.archive, &self.model);
            }
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_opt(&self.pending_done_at, |w, t| w.put_time(*t));
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        self.pending_done_at = StateReader::new(blob).get_opt(|r| r.get_time())?;
        Ok(())
    }
}

/// Registers the sentiment operator kinds.
pub fn register_ops(r: &mut OperatorRegistry, stores: &SharedStores) {
    r.register("TweetSource", |op| {
        Ok(Box::new(TweetSource::from_params(&op.name, &op.params)?))
    });
    let model = stores.cause_model.clone();
    let archive = stores.tweet_archive.clone();
    r.register("CauseCorrelator", move |op| {
        let window = op
            .params
            .get("window_secs")
            .and_then(Value::as_f64)
            .unwrap_or(60.0);
        Ok(Box::new(CauseCorrelator::new(
            model.clone(),
            archive.clone(),
            window,
        )))
    });
    r.register("EmbeddedDetector", |op| {
        let span = op
            .params
            .get("window_secs")
            .and_then(Value::as_f64)
            .unwrap_or(60.0);
        let holdoff = op
            .params
            .get("holdoff_secs")
            .and_then(Value::as_f64)
            .unwrap_or(600.0);
        Ok(Box::new(EmbeddedDetector {
            window: VecDeque::new(),
            span: SimDuration::from_millis((span * 1000.0) as u64),
            last_trigger: None,
            holdoff: SimDuration::from_millis((holdoff * 1000.0) as u64),
        }))
    });
    let model = stores.cause_model.clone();
    let archive = stores.tweet_archive.clone();
    r.register("EmbeddedActuator", move |op| {
        let latency = op
            .params
            .get("latency_secs")
            .and_then(Value::as_f64)
            .unwrap_or(30.0);
        Ok(Box::new(EmbeddedActuator {
            model: model.clone(),
            archive: archive.clone(),
            latency: SimDuration::from_millis((latency * 1000.0) as u64),
            pending_done_at: None,
        }))
    });
}

// ---------------------------------------------------------------------------
// Application graphs
// ---------------------------------------------------------------------------

/// Tunables for the sentiment application.
#[derive(Clone, Copy, Debug)]
pub struct SentimentParams {
    pub tweet_rate: f64,
    pub drift_at_secs: f64,
    pub metric_window_secs: f64,
    pub seed: u64,
}

impl Default for SentimentParams {
    fn default() -> Self {
        SentimentParams {
            tweet_rate: 20.0,
            drift_at_secs: 250.0,
            metric_window_secs: 60.0,
            seed: 42,
        }
    }
}

/// The orchestrated variant: pure data-processing graph (Figure 1 *without*
/// op8/op9 — the whole point of §5.1).
pub fn sentiment_app(p: SentimentParams) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "tweets",
        OperatorInvocation::new("TweetSource")
            .source()
            .param("rate", p.tweet_rate)
            .param("drift_at_secs", p.drift_at_secs)
            .param("seed", p.seed as i64),
    );
    m.operator(
        "product_filter",
        OperatorInvocation::new("Filter").param("predicate", "product == \"iphone\""),
    );
    m.operator(
        "neg_filter",
        OperatorInvocation::new("Filter").param("predicate", "sentiment == \"neg\""),
    );
    m.operator(
        "correlator",
        OperatorInvocation::new("CauseCorrelator")
            .param("window_secs", p.metric_window_secs)
            .custom_metric("nKnownCauses")
            .custom_metric("nUnknownCauses")
            .custom_metric("modelVersion"),
    );
    m.operator(
        "agg",
        OperatorInvocation::new("Aggregate")
            .param("value", "ts")
            .param("window_secs", p.metric_window_secs)
            .param("period_secs", 5.0)
            .param("group_by", "cause"),
    );
    m.operator("display", OperatorInvocation::new("Sink").sink());
    m.pipe("tweets", "product_filter");
    m.pipe("product_filter", "neg_filter");
    m.pipe("neg_filter", "correlator");
    m.pipe("correlator", "agg");
    m.pipe("agg", "display");
    let model = AppModelBuilder::new("SentimentAnalysis")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

/// The Figure-1 baseline: same pipeline plus embedded op8/op9 control
/// operators, coupling adaptation into the data-flow graph.
pub fn sentiment_app_embedded(p: SentimentParams) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "tweets",
        OperatorInvocation::new("TweetSource")
            .source()
            .param("rate", p.tweet_rate)
            .param("drift_at_secs", p.drift_at_secs)
            .param("seed", p.seed as i64),
    );
    m.operator(
        "product_filter",
        OperatorInvocation::new("Filter").param("predicate", "product == \"iphone\""),
    );
    m.operator(
        "neg_filter",
        OperatorInvocation::new("Filter").param("predicate", "sentiment == \"neg\""),
    );
    m.operator(
        "correlator",
        OperatorInvocation::new("CauseCorrelator")
            .param("window_secs", p.metric_window_secs)
            .custom_metric("nKnownCauses")
            .custom_metric("nUnknownCauses"),
    );
    m.operator("display", OperatorInvocation::new("Sink").sink());
    // The extra control operators of Figure 1.
    m.operator(
        "op8_detector",
        OperatorInvocation::new("EmbeddedDetector")
            .param("window_secs", p.metric_window_secs)
            .custom_metric("nTriggers"),
    );
    m.operator(
        "op9_actuator",
        OperatorInvocation::new("EmbeddedActuator")
            .sink()
            .param("latency_secs", 30.0)
            .custom_metric("nJobsLaunched"),
    );
    m.pipe("tweets", "product_filter");
    m.pipe("product_filter", "neg_filter");
    m.pipe("neg_filter", "correlator");
    m.pipe("correlator", "display");
    m.pipe("correlator", "op8_detector");
    m.pipe("op8_detector", "op9_actuator");
    let model = AppModelBuilder::new("SentimentEmbedded")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

// ---------------------------------------------------------------------------
// The ORCA logic (§5.1) — the paper reports 114 lines of C++ for this
// ---------------------------------------------------------------------------

/// One measurement of the unknown/known ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioSample {
    pub epoch: u64,
    pub at: SimTime,
    pub ratio: f64,
    pub model_version: u64,
}

/// The sentiment orchestrator: subscribes to the correlator's two custom
/// metrics; when (within one epoch) unknown > known, launches the Hadoop
/// recomputation — at most once per 10 minutes (§5.1's retrigger guard).
pub struct SentimentOrca {
    stores: SharedStores,
    hadoop_latency: SimDuration,
    retrigger_guard: SimDuration,
    poll_period: SimDuration,
    // Mirrors of the last metric values (the paper's Figure 6 pattern).
    known: Option<(u64, i64)>,
    unknown: Option<(u64, i64)>,
    model_version: u64,
    last_job_at: Option<SimTime>,
    pub samples: Vec<RatioSample>,
    pub jobs_launched: u32,
    pub jobs_completed: u32,
}

impl SentimentOrca {
    pub fn new(stores: SharedStores, poll_period: SimDuration) -> Self {
        SentimentOrca {
            stores,
            hadoop_latency: SimDuration::from_secs(30),
            retrigger_guard: SimDuration::from_secs(600),
            poll_period,
            known: None,
            unknown: None,
            model_version: 0,
            last_job_at: None,
            samples: Vec::new(),
            jobs_launched: 0,
            jobs_completed: 0,
        }
    }

    /// Threshold evaluation once both metrics from the same epoch arrived.
    fn evaluate(&mut self, ctx: &mut OrcaCtx<'_>) {
        let (Some((ek, known)), Some((eu, unknown))) = (self.known, self.unknown) else {
            return;
        };
        if ek != eu {
            return; // measurements from different rounds — wait (§4.2)
        }
        let ratio = if known <= 0 {
            if unknown > 0 {
                2.0 // all-unknown: saturate above threshold
            } else {
                0.0
            }
        } else {
            unknown as f64 / known as f64
        };
        self.samples.push(RatioSample {
            epoch: ek,
            at: ctx.now(),
            ratio,
            model_version: self.model_version,
        });
        let guard_active = self
            .last_job_at
            .is_some_and(|t| ctx.now().since(t) < self.retrigger_guard);
        if ratio > 1.0 && !guard_active {
            self.last_job_at = Some(ctx.now());
            self.jobs_launched += 1;
            // "Issue the Hadoop job": completion arrives via timer.
            ctx.set_timer(self.hadoop_latency, "hadoop_done");
            ctx.set_status("hadoop", "running");
        }
    }
}

impl Orchestrator for SentimentOrca {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        // Bootstrap model (the offline pre-computation on the large corpus).
        self.stores.cause_model.set(&["flash", "screen"]);
        ctx.register_event_scope(
            OperatorMetricScope::new("causeMetrics")
                .add_application("SentimentAnalysis")
                .add_operator_instance("correlator")
                .add_metric("nKnownCauses")
                .add_metric("nUnknownCauses")
                .add_metric("modelVersion"),
        );
        ctx.set_metric_poll_period(self.poll_period);
        ctx.submit_app("SentimentAnalysis").unwrap();
        ctx.set_status("hadoop", "idle");
    }

    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        _scopes: &[String],
    ) {
        match e.metric.as_str() {
            "nKnownCauses" => self.known = Some((e.epoch, e.value)),
            "nUnknownCauses" => self.unknown = Some((e.epoch, e.value)),
            "modelVersion" => self.model_version = e.value as u64,
            _ => return,
        }
        self.evaluate(ctx);
    }

    fn on_timer(&mut self, ctx: &mut OrcaCtx<'_>, e: &TimerContext) {
        if e.key == "hadoop_done" {
            // Batch job finished: publish the recomputed model; the
            // correlator hot-reloads it on its next tuple.
            HadoopJobSim::recompute(&self.stores.tweet_archive, &self.stores.cause_model);
            self.jobs_completed += 1;
            ctx.set_status("hadoop", "idle");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca::{OrcaDescriptor, OrcaService};
    use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};

    fn build_world(p: SentimentParams) -> (World, usize, SharedStores) {
        let stores = SharedStores::new();
        let kernel = Kernel::new(
            Cluster::with_hosts(2),
            crate::registry(&stores),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let orca_logic = SentimentOrca::new(stores.clone(), SimDuration::from_secs(3));
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("SentimentOrca").app(sentiment_app(p)),
            Box::new(orca_logic),
        );
        let idx = world.add_controller(Box::new(service));
        (world, idx, stores)
    }

    fn orca_logic(world: &World, idx: usize) -> &SentimentOrca {
        world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<SentimentOrca>()
            .unwrap()
    }

    #[test]
    fn ratio_stays_low_without_drift() {
        let (mut world, idx, _) = build_world(SentimentParams {
            drift_at_secs: f64::MAX,
            ..Default::default()
        });
        world.run_for(SimDuration::from_secs(120));
        let logic = orca_logic(&world, idx);
        assert!(logic.samples.len() > 10);
        // Skip warmup; after that the known causes dominate.
        for s in &logic.samples[5..] {
            assert!(s.ratio < 1.0, "epoch {}: ratio {}", s.epoch, s.ratio);
        }
        assert_eq!(logic.jobs_launched, 0);
    }

    #[test]
    fn drift_triggers_exactly_one_job_and_ratio_recovers() {
        let p = SentimentParams {
            drift_at_secs: 100.0,
            ..Default::default()
        };
        let (mut world, idx, stores) = build_world(p);
        world.run_for(SimDuration::from_secs(400));
        let logic = orca_logic(&world, idx);
        assert_eq!(logic.jobs_launched, 1, "10-minute guard must hold");
        assert_eq!(logic.jobs_completed, 1);
        // The model was recomputed to include antenna.
        let model = stores.cause_model.snapshot();
        assert!(
            model.known_causes.iter().any(|c| c == "antenna"),
            "model: {model:?}"
        );
        assert!(model.version >= 2);
        // Ratio shape: low → crosses 1.0 after drift → recovers below 1.0.
        let crossed = logic.samples.iter().position(|s| s.ratio > 1.0).unwrap();
        assert!(logic.samples[crossed].at >= SimTime::from_secs(100));
        let last = logic.samples.last().unwrap();
        assert!(last.ratio < 1.0, "final ratio {}", last.ratio);
        // Status board returned to idle.
        let svc = world.controller::<OrcaService>(idx).unwrap();
        assert_eq!(svc.status("hadoop"), Some("idle"));
    }

    #[test]
    fn hadoop_sim_selects_dominant_causes() {
        let archive = TweetArchiveHandle::default();
        let model = CauseModelHandle::default();
        model.set(&["flash"]);
        for _ in 0..100 {
            archive.record("antenna");
        }
        for _ in 0..50 {
            archive.record("screen");
        }
        for _ in 0..2 {
            archive.record("rare"); // below the 5% threshold
        }
        let kept = HadoopJobSim::recompute(&archive, &model);
        assert_eq!(kept, vec!["antenna".to_string(), "screen".to_string()]);
        assert_eq!(model.snapshot().version, 2);
    }

    #[test]
    fn hadoop_sim_with_empty_archive_keeps_model() {
        let archive = TweetArchiveHandle::default();
        let model = CauseModelHandle::default();
        model.set(&["flash"]);
        let kept = HadoopJobSim::recompute(&archive, &model);
        assert_eq!(kept, vec!["flash".to_string()]);
        assert_eq!(model.snapshot().version, 1); // unchanged
    }

    #[test]
    fn embedded_variant_adapts_without_orchestrator() {
        let stores = SharedStores::new();
        stores.cause_model.set(&["flash", "screen"]);
        let mut kernel = Kernel::new(
            Cluster::with_hosts(1),
            crate::registry(&stores),
            RuntimeConfig::default(),
        );
        let adl = sentiment_app_embedded(SentimentParams {
            drift_at_secs: 60.0,
            ..Default::default()
        });
        let job = kernel.submit_job(adl, None).unwrap();
        for _ in 0..(300 * 10) {
            kernel.quantum();
        }
        // The embedded actuator recomputed the model in-graph.
        let model = stores.cause_model.snapshot();
        assert!(
            model.known_causes.iter().any(|c| c == "antenna"),
            "embedded adaptation should have updated the model: {model:?}"
        );
        let _ = job;
    }

    #[test]
    fn tweet_archive_caps_and_histograms() {
        let archive = TweetArchiveHandle::default();
        assert!(archive.is_empty());
        for i in 0..(ARCHIVE_CAP + 100) {
            archive.record(if i % 2 == 0 { "a" } else { "b" });
        }
        assert_eq!(archive.len(), ARCHIVE_CAP);
        let h = archive.cause_histogram();
        assert_eq!(h.len(), 2);
        assert_eq!(h["a"] + h["b"], ARCHIVE_CAP);
    }
}
