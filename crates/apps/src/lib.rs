//! The three VLDB'12 use-case applications and their ORCA logics.
//!
//! - [`sentiment`] — §5.1: Twitter sentiment analysis that adapts to drift
//!   in the incoming cause distribution by triggering a (simulated) Hadoop
//!   model recomputation (Figure 8), plus the Figure-1-style *embedded*
//!   adaptation baseline where control operators live inside the data flow
//!   graph;
//! - [`trend`] — §5.2: the "Trend Calculator" financial application managed
//!   as three replicas with orchestrated failover on PE crashes (Figure 9);
//! - [`social`] — §5.3: on-demand dynamic composition of C1/C2/C3 social
//!   media applications driven by custom-metric thresholds and final
//!   punctuation (Figure 10).
//!
//! [`registry`] builds an operator registry containing the engine built-ins
//! plus every application-specific operator kind defined here.

pub mod live;
pub mod sentiment;
pub mod social;
pub mod trend;

use sps_engine::OperatorRegistry;

/// Registry with engine built-ins plus all use-case operator kinds.
///
/// `stores` supplies the shared side-state the applications need (cause
/// model, tweet archive, profile store) — what the paper's applications keep
/// on disk or in external data stores.
pub fn registry(stores: &SharedStores) -> OperatorRegistry {
    let mut r = OperatorRegistry::with_builtins();
    sentiment::register_ops(&mut r, stores);
    trend::register_ops(&mut r);
    social::register_ops(&mut r, stores);
    r
}

/// Shared out-of-band state (the "disk" / "external data store" of the
/// paper's applications).
#[derive(Clone, Default)]
pub struct SharedStores {
    pub cause_model: sentiment::CauseModelHandle,
    pub tweet_archive: sentiment::TweetArchiveHandle,
    pub profile_store: social::ProfileStoreHandle,
}

impl SharedStores {
    pub fn new() -> Self {
        Self::default()
    }
}
