//! Live output streaming for interactive runs.
//!
//! The simulation itself is single-threaded and deterministic; examples that
//! want to *watch* an application while it runs pump sink taps through a
//! crossbeam channel to a printer thread, decoupling rendering from the
//! simulation loop (a stand-in for the paper's live-updating GUI graphs,
//! Figure 9).

use crossbeam::channel::{unbounded, Receiver, Sender};
use sps_engine::Tuple;
use sps_runtime::{JobId, World};
use sps_sim::{SimDuration, SimTime};
use std::thread::JoinHandle;

/// One sampled observation of a sink operator.
#[derive(Clone, Debug)]
pub struct TapUpdate {
    pub at: SimTime,
    pub job: JobId,
    pub op: String,
    /// Tuples newly seen since the last sample (dedup by count).
    pub tuples: Vec<Tuple>,
}

/// Runs the world until `until`, sampling the given `(job, sink op)` taps
/// every `period` and pushing newly observed tuples into the returned
/// channel. The channel is unbounded so a slow consumer never stalls the
/// simulation.
pub fn stream_taps(
    world: &mut World,
    taps: &[(JobId, String)],
    period: SimDuration,
    until: SimTime,
) -> Receiver<TapUpdate> {
    let (tx, rx) = unbounded();
    let mut last_seen: Vec<usize> = vec![0; taps.len()];
    let mut next_sample = world.now();
    while world.now() < until {
        world.step();
        if world.now() < next_sample {
            continue;
        }
        next_sample = world.now() + period;
        sample(world, taps, &mut last_seen, &tx);
    }
    sample(world, taps, &mut last_seen, &tx);
    rx
}

fn sample(
    world: &World,
    taps: &[(JobId, String)],
    last_seen: &mut [usize],
    tx: &Sender<TapUpdate>,
) {
    for (i, (job, op)) in taps.iter().enumerate() {
        let Some(tuples) = world.kernel.tap(*job, op) else {
            continue;
        };
        // The sink keeps a bounded ring; approximate "new" tuples by length
        // growth (sufficient for display purposes).
        let new_from = last_seen[i].min(tuples.len());
        let fresh: Vec<Tuple> = tuples[new_from..].to_vec();
        last_seen[i] = tuples.len();
        if !fresh.is_empty() {
            let _ = tx.send(TapUpdate {
                at: world.now(),
                job: *job,
                op: op.clone(),
                tuples: fresh,
            });
        }
    }
}

/// Spawns a printer thread consuming tap updates with a formatting callback;
/// returns its join handle. Runs concurrently with the simulation when the
/// receiver is handed over before stepping.
pub fn spawn_printer(
    rx: Receiver<TapUpdate>,
    mut render: impl FnMut(&TapUpdate) -> String + Send + 'static,
) -> JoinHandle<usize> {
    // sslint: allow(ambient-authority, display-only printer thread; output never feeds digests or campaign artifacts)
    std::thread::spawn(move || {
        let mut printed = 0;
        while let Ok(update) = rx.recv() {
            println!("{}", render(&update));
            printed += 1;
        }
        printed
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedStores;
    use sps_model::compiler::{compile, CompileOptions};
    use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
    use sps_runtime::{Cluster, Kernel, RuntimeConfig};

    fn tiny_world() -> (World, JobId) {
        let stores = SharedStores::new();
        let mut kernel = Kernel::new(
            Cluster::with_hosts(1),
            crate::registry(&stores),
            RuntimeConfig::default(),
        );
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", 10.0),
        );
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("src", "snk");
        let model = AppModelBuilder::new("Tiny")
            .build(m.build().unwrap())
            .unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        let job = kernel.submit_job(adl, None).unwrap();
        (World::new(kernel), job)
    }

    #[test]
    fn streams_new_tuples_per_sample() {
        let (mut world, job) = tiny_world();
        let rx = stream_taps(
            &mut world,
            &[(job, "snk".to_string())],
            SimDuration::from_secs(1),
            SimTime::from_secs(5),
        );
        let updates: Vec<TapUpdate> = rx.try_iter().collect();
        assert!(!updates.is_empty());
        let total: usize = updates.iter().map(|u| u.tuples.len()).sum();
        // ~10/s for 5 s, minus transport latency jitter.
        assert!(total >= 40, "saw {total}");
        // Updates are time-ordered and attributed.
        assert!(updates.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(updates.iter().all(|u| u.job == job && u.op == "snk"));
    }

    #[test]
    fn printer_thread_consumes_everything() {
        let (mut world, job) = tiny_world();
        let rx = stream_taps(
            &mut world,
            &[(job, "snk".to_string())],
            SimDuration::from_secs(1),
            SimTime::from_secs(3),
        );
        let expected = rx.len();
        let handle = spawn_printer(rx, |u| format!("[{}] {} tuples", u.at, u.tuples.len()));
        assert_eq!(handle.join().unwrap(), expected);
    }

    #[test]
    fn unknown_tap_is_skipped() {
        let (mut world, job) = tiny_world();
        let rx = stream_taps(
            &mut world,
            &[(job, "ghost".to_string())],
            SimDuration::from_secs(1),
            SimTime::from_secs(2),
        );
        assert_eq!(rx.try_iter().count(), 0);
    }
}
