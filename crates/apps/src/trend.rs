//! §5.2 — Adaptation to failures: the "Trend Calculator" (Figure 9).
//!
//! A financial application computes min/max/avg and Bollinger Bands per
//! stock symbol over a 600-second sliding window. It deliberately uses no
//! checkpointing, so a PE crash loses the window state and the restarted PE
//! produces incorrect output until the window refills. [`TrendOrca`] manages
//! **three replicas** in exclusive host pools, keeps an active/backup status
//! board (the paper's status file read by the GUI), and on a PE failure of
//! the active replica fails over to the **oldest** running replica (longest
//! history → most likely full windows) before restarting the crashed PE.

use orca::{OrcaCtx, OrcaStartContext, Orchestrator, PeFailureContext, PeFailureScope};
use sps_engine::{
    EngineError, OpCtx, Operator, OperatorRegistry, StateBlob, StateReader, StateWriter, Tuple,
};
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::{Adl, Value};
use sps_runtime::{JobId, PeId};
use sps_sim::{SimRng, SimTime};

// ---------------------------------------------------------------------------
// Workload: deterministic market tick source
// ---------------------------------------------------------------------------

/// Random-walk stock ticks `{sym, price, ts}`. Seeded from an ADL parameter
/// (not the PE's forked RNG), so every replica of the application observes
/// an **identical** market feed — the replicas' outputs must match while
/// both are healthy (Figure 9(a)).
pub struct TickSource {
    symbols: Vec<String>,
    prices: Vec<f64>,
    rate: f64,
    credit: f64,
    next_symbol: usize,
    rng: SimRng,
}

impl TickSource {
    fn from_params(params: &sps_model::value::ParamMap) -> Self {
        let n = params
            .get("symbols")
            .and_then(Value::as_int)
            .unwrap_or(4)
            .max(1) as usize;
        let rate = params.get("rate").and_then(Value::as_f64).unwrap_or(40.0);
        let seed = params.get("seed").and_then(Value::as_int).unwrap_or(7) as u64;
        TickSource {
            symbols: (0..n).map(|i| format!("SYM{i}")).collect(),
            prices: vec![100.0; n],
            rate,
            credit: 0.0,
            next_symbol: 0,
            rng: SimRng::new(seed),
        }
    }
}

impl Operator for TickSource {
    fn on_tuple(&mut self, _port: usize, _t: Tuple, _ctx: &mut OpCtx) {}

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        self.credit += self.rate * ctx.quantum().as_secs_f64();
        while self.credit >= 1.0 - 1e-9 {
            self.credit -= 1.0;
            let s = self.next_symbol % self.symbols.len();
            self.next_symbol = self.next_symbol.wrapping_add(1);
            // Geometric-ish random walk, floored away from zero.
            self.prices[s] = (self.prices[s] + self.rng.next_gaussian() * 0.5).max(1.0);
            let t = Tuple::new()
                .with("sym", self.symbols[s].as_str())
                .with("price", self.prices[s])
                .with("ts", Value::Timestamp(ctx.now().as_millis()));
            ctx.submit(0, t);
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_f64(self.credit);
        w.put_u64(self.next_symbol as u64);
        w.put_u32(self.prices.len() as u32);
        for p in &self.prices {
            w.put_f64(*p);
        }
        w.put_rng(&self.rng);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.credit = r.get_f64()?;
        self.next_symbol = r.get_u64()? as usize;
        let n = r.get_u32()? as usize;
        if n != self.prices.len() {
            return Err(EngineError::Checkpoint(format!(
                "tick source has {} symbols, checkpoint has {n}",
                self.prices.len()
            )));
        }
        for p in &mut self.prices {
            *p = r.get_f64()?;
        }
        self.rng = r.get_rng()?;
        Ok(())
    }
}

/// Registers the trend operator kinds.
pub fn register_ops(r: &mut OperatorRegistry) {
    r.register("TickSource", |op| {
        Ok(Box::new(TickSource::from_params(&op.params)))
    });
}

// ---------------------------------------------------------------------------
// Application graph
// ---------------------------------------------------------------------------

/// Tunables for the Trend Calculator.
#[derive(Clone, Copy, Debug)]
pub struct TrendParams {
    pub symbols: i64,
    pub tick_rate: f64,
    /// The paper's sliding window: 600 s.
    pub window_secs: f64,
    pub emit_period_secs: f64,
    pub seed: u64,
}

impl Default for TrendParams {
    fn default() -> Self {
        TrendParams {
            symbols: 4,
            tick_rate: 40.0,
            window_secs: 600.0,
            emit_period_secs: 1.0,
            seed: 7,
        }
    }
}

/// ticks → per-symbol windowed financial calcs (min/max/avg/Bollinger) →
/// sink. Three PEs, so the calculator PE can be killed independently.
pub fn trend_app(p: TrendParams) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "ticks",
        OperatorInvocation::new("TickSource")
            .source()
            .param("symbols", p.symbols)
            .param("rate", p.tick_rate)
            .param("seed", p.seed as i64),
    );
    m.operator(
        "calc",
        OperatorInvocation::new("Aggregate")
            .param("value", "price")
            .param("group_by", "sym")
            .param("window_secs", p.window_secs)
            .param("period_secs", p.emit_period_secs),
    );
    m.operator(
        "graph",
        OperatorInvocation::new("Sink")
            .sink()
            .param("keep", 4096i64),
    );
    m.pipe("ticks", "calc");
    m.pipe("calc", "graph");
    let model = AppModelBuilder::new("TrendCalculator")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

// ---------------------------------------------------------------------------
// The ORCA logic (§5.2) — the paper reports 196 lines of C++ for this
// ---------------------------------------------------------------------------

/// One replica's management record.
#[derive(Clone, Copy, Debug)]
pub struct Replica {
    pub job: JobId,
    pub submitted_at: SimTime,
    /// Last time this replica lost state (submission or PE restart). The
    /// failover rule picks the replica with the *oldest* reset — the longest
    /// history and, most likely, full sliding windows.
    pub last_state_reset: SimTime,
}

/// A failover the orchestrator performed.
#[derive(Clone, Copy, Debug)]
pub struct FailoverEvent {
    pub at: SimTime,
    pub failed_replica: usize,
    pub failed_pe: PeId,
    pub new_active: usize,
    pub restarted_pe: Option<PeId>,
}

/// The replica-manager orchestrator.
pub struct TrendOrca {
    n_replicas: usize,
    pub replicas: Vec<Replica>,
    pub active: usize,
    pub failovers: Vec<FailoverEvent>,
}

impl TrendOrca {
    pub fn new(n_replicas: usize) -> Self {
        assert!(n_replicas >= 2, "replication needs at least two copies");
        TrendOrca {
            n_replicas,
            replicas: Vec::new(),
            active: 0,
            failovers: Vec::new(),
        }
    }

    pub fn replica_of_job(&self, job: JobId) -> Option<usize> {
        self.replicas.iter().position(|r| r.job == job)
    }

    pub fn active_job(&self) -> JobId {
        self.replicas[self.active].job
    }
}

impl Orchestrator for TrendOrca {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        // Failure events for the managed application are the only scope.
        ctx.register_event_scope(
            PeFailureScope::new("trendFailures").add_application("TrendCalculator"),
        );
        // Exclusive host pools: replicas must never share a host (§4.3 —
        // otherwise one host failure kills several replicas at once).
        for i in 0..self.n_replicas {
            let job = ctx
                .submit_app_exclusive("TrendCalculator")
                .expect("replica submission");
            let now = ctx.now();
            self.replicas.push(Replica {
                job,
                submitted_at: now,
                last_state_reset: now,
            });
            ctx.set_status(&format!("replica{i}"), "backup");
        }
        self.active = 0;
        ctx.set_status("replica0", "active");
        ctx.set_status("active", "0");
    }

    fn on_pe_failure(&mut self, ctx: &mut OrcaCtx<'_>, e: &PeFailureContext, _scopes: &[String]) {
        let Some(failed) = self.replica_of_job(e.job) else {
            return;
        };
        let now = ctx.now();
        // Freshness signal: how much state did the replica actually lose?
        // With a checkpoint covering the failed PE the reset only rewinds to
        // the snapshot time, and with upstream backup the replayed gap makes
        // recovery exactly-once — no state is lost at all.
        match ctx.checkpoint_coverage(e.job, e.adl_index) {
            Some(_) if ctx.upstream_backup_enabled() => {}
            Some(taken_at) => self.replicas[failed].last_state_reset = taken_at,
            None => self.replicas[failed].last_state_reset = now,
        }

        if failed == self.active {
            // Fail over to the oldest running replica.
            let new_active = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != failed)
                .min_by_key(|(i, r)| (r.last_state_reset, *i))
                .map(|(i, _)| i)
                .expect("at least one backup");
            ctx.set_status(&format!("replica{}", self.active), "backup");
            ctx.set_status(&format!("replica{new_active}"), "active");
            ctx.set_status("active", &new_active.to_string());
            self.active = new_active;
            let restarted = ctx.restart_pe(e.pe).ok();
            self.failovers.push(FailoverEvent {
                at: now,
                failed_replica: failed,
                failed_pe: e.pe,
                new_active,
                restarted_pe: restarted,
            });
        } else {
            // A backup crashed: just restart it; the active stays.
            let restarted = ctx.restart_pe(e.pe).ok();
            self.failovers.push(FailoverEvent {
                at: now,
                failed_replica: failed,
                failed_pe: e.pe,
                new_active: self.active,
                restarted_pe: restarted,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedStores;
    use orca::{OrcaDescriptor, OrcaService};
    use sps_runtime::{Cluster, Kernel, PeStatus, RuntimeConfig, World};
    use sps_sim::SimDuration;

    fn build_world(p: TrendParams, hosts: usize) -> (World, usize) {
        let stores = SharedStores::new();
        let kernel = Kernel::new(
            Cluster::with_hosts(hosts),
            crate::registry(&stores),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let service = OrcaService::submit(
            &mut world.kernel,
            OrcaDescriptor::new("TrendOrca").app(trend_app(p)),
            Box::new(TrendOrca::new(3)),
        );
        let idx = world.add_controller(Box::new(service));
        (world, idx)
    }

    fn logic(world: &World, idx: usize) -> &TrendOrca {
        world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<TrendOrca>()
            .unwrap()
    }

    /// Latest aggregate per symbol from a replica's sink.
    fn latest_by_symbol(
        world: &World,
        job: JobId,
    ) -> std::collections::BTreeMap<String, (f64, bool)> {
        let mut out = std::collections::BTreeMap::new();
        for t in world.kernel.tap(job, "graph").unwrap_or_default() {
            out.insert(
                t.get_str("group").unwrap().to_string(),
                (t.get_f64("avg").unwrap(), t.get_bool("full").unwrap()),
            );
        }
        out
    }

    #[test]
    fn replicas_land_on_distinct_hosts_and_agree() {
        let (mut world, idx) = build_world(
            TrendParams {
                window_secs: 20.0,
                ..Default::default()
            },
            3,
        );
        world.run_for(SimDuration::from_secs(40));
        let l = logic(&world, idx);
        assert_eq!(l.replicas.len(), 3);
        // Exclusive pools → pairwise distinct host sets.
        let mut hosts: Vec<String> = Vec::new();
        for r in &l.replicas {
            let info = world.kernel.sam.job(r.job).unwrap();
            for &pe in &info.pe_ids {
                let h = world.kernel.cluster.host_of_pe(pe).unwrap().to_string();
                hosts.push(format!("{}:{h}", r.job));
            }
        }
        for r1 in &l.replicas {
            for r2 in &l.replicas {
                if r1.job == r2.job {
                    continue;
                }
                let h1: std::collections::BTreeSet<_> = hosts
                    .iter()
                    .filter(|h| h.starts_with(&r1.job.to_string()))
                    .map(|h| h.split(':').nth(1).unwrap())
                    .collect();
                let h2: std::collections::BTreeSet<_> = hosts
                    .iter()
                    .filter(|h| h.starts_with(&r2.job.to_string()))
                    .map(|h| h.split(':').nth(1).unwrap())
                    .collect();
                assert!(h1.is_disjoint(&h2), "replicas share hosts: {h1:?} {h2:?}");
            }
        }
        // Healthy replicas produce identical analytics (same seeded feed).
        let a = latest_by_symbol(&world, l.replicas[0].job);
        let b = latest_by_symbol(&world, l.replicas[1].job);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn active_failure_fails_over_to_oldest_and_restarts_pe() {
        let p = TrendParams {
            window_secs: 30.0,
            ..Default::default()
        };
        let (mut world, idx) = build_world(p, 3);
        world.run_for(SimDuration::from_secs(60)); // windows full everywhere
        let active_job = logic(&world, idx).active_job();
        let calc_pe = world.kernel.pe_id_of(active_job, 1).unwrap();
        world.kernel.kill_pe(calc_pe).unwrap();
        world.run_for(SimDuration::from_secs(5)); // failover + restart delay

        let (f, replica0_job, replica1_job) = {
            let l = logic(&world, idx);
            assert_eq!(l.failovers.len(), 1);
            let f = l.failovers[0];
            assert_eq!(f.failed_replica, 0);
            assert_ne!(l.active, 0);
            // Oldest backup (replica 1 submitted before 2 at same time →
            // index tiebreak) becomes active.
            assert_eq!(l.active, 1);
            (f, l.replicas[0].job, l.replicas[1].job)
        };
        // The crashed PE was restarted.
        let new_pe = f.restarted_pe.unwrap();
        assert_eq!(world.kernel.pe_status(new_pe), Some(PeStatus::Up));
        // Status board follows (what the GUI titles render, Figure 9).
        let svc = world.controller::<OrcaService>(idx).unwrap();
        assert_eq!(svc.status("active"), Some("1"));
        assert_eq!(svc.status("replica0"), Some("backup"));
        assert_eq!(svc.status("replica1"), Some("active"));

        // The failed replica's windows refill only after window_secs: right
        // after restart its output is not "full" while the new active's is.
        world.run_for(SimDuration::from_secs(10));
        let failed = latest_by_symbol(&world, replica0_job);
        let active = latest_by_symbol(&world, replica1_job);
        assert!(active.values().all(|(_, full)| *full));
        assert!(failed.values().any(|(_, full)| !*full), "{failed:?}");

        // After the window span passes, the restarted replica recovers.
        world.run_for(SimDuration::from_secs(40));
        let failed = latest_by_symbol(&world, logic(&world, idx).replicas[0].job);
        assert!(failed.values().all(|(_, full)| *full));
    }

    #[test]
    fn backup_failure_keeps_active() {
        let (mut world, idx) = build_world(
            TrendParams {
                window_secs: 20.0,
                ..Default::default()
            },
            3,
        );
        world.run_for(SimDuration::from_secs(10));
        let backup_job = logic(&world, idx).replicas[2].job;
        let pe = world.kernel.pe_id_of(backup_job, 1).unwrap();
        world.kernel.kill_pe(pe).unwrap();
        world.run_for(SimDuration::from_secs(2));
        let l = logic(&world, idx);
        assert_eq!(l.active, 0, "active must not change on backup failure");
        assert_eq!(l.failovers.len(), 1);
        assert_eq!(l.failovers[0].failed_replica, 2);
        assert!(l.failovers[0].restarted_pe.is_some());
        let svc = world.controller::<OrcaService>(idx).unwrap();
        assert_eq!(svc.status("active"), Some("0"));
    }

    #[test]
    fn consecutive_failures_track_oldest_state() {
        let (mut world, idx) = build_world(
            TrendParams {
                window_secs: 20.0,
                ..Default::default()
            },
            3,
        );
        world.run_for(SimDuration::from_secs(30));
        // Kill active (0) → active becomes 1; replica 0 restarted (young).
        let pe = world
            .kernel
            .pe_id_of(logic(&world, idx).active_job(), 1)
            .unwrap();
        world.kernel.kill_pe(pe).unwrap();
        world.run_for(SimDuration::from_secs(5));
        assert_eq!(logic(&world, idx).active, 1);
        // Kill new active (1) → oldest running is 2 (replica 0 reset recently).
        let pe = world
            .kernel
            .pe_id_of(logic(&world, idx).active_job(), 1)
            .unwrap();
        world.kernel.kill_pe(pe).unwrap();
        world.run_for(SimDuration::from_secs(5));
        assert_eq!(logic(&world, idx).active, 2);
        assert_eq!(logic(&world, idx).failovers.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_replica_rejected() {
        let _ = TrendOrca::new(1);
    }
}
