//! §5.3 — On-demand dynamic application composition (Figure 10).
//!
//! Three sub-application categories build comprehensive social-media user
//! profiles:
//!
//! - **C1** readers consume continuous social streams (Twitter, MySpace),
//!   identify profiles of interest, and export them;
//! - **C2** query apps import those profiles, enrich them against
//!   keyword-search services (Facebook/Twitter/Blogs), and integrate the
//!   results into a deduplicating profile **data store**, maintaining custom
//!   metrics counting discovered profiles per attribute (duplicates
//!   included — C1 feeds multiple C2s);
//! - **C3** aggregators read the store and correlate sentiments with one
//!   attribute (age/gender/location), emitting a **final punctuation** when
//!   done.
//!
//! [`CompositionOrca`] wires C2→C1 dependencies (uptime 0), expands the
//! composition by submitting a C3 job whenever ≥ `threshold` (paper: 1500)
//! *new* profiles with some attribute appeared since the last C3 launch,
//! and contracts it by cancelling the C3 job when the sink's
//! `nFinalPunctsProcessed` built-in metric fires.

use crate::SharedStores;
use orca::{
    AppConfig, JobEventContext, JobEventScope, OperatorMetricContext, OperatorMetricScope, OrcaCtx,
    OrcaStartContext, Orchestrator,
};
use parking_lot::Mutex;
use sps_engine::metrics::builtin;
use sps_engine::{
    EngineError, OpCtx, Operator, OperatorRegistry, Punct, StateBlob, StateReader, StateWriter,
    Tuple,
};
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{
    AppModelBuilder, CompositeGraphBuilder, ExportSpec, ImportSpec, OperatorInvocation,
};
use sps_model::{Adl, Value};
use sps_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The profile data store
// ---------------------------------------------------------------------------

/// An integrated user profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    pub user: String,
    pub gender: Option<String>,
    pub age: Option<i64>,
    pub location: Option<String>,
    pub sentiment: f64,
    pub sources: Vec<String>,
}

/// Shared deduplicating data store: "C3 applications do not see duplicate
/// profiles because they read directly from the data store, which has no
/// duplicate profile entry" (§5.3).
#[derive(Clone, Default)]
pub struct ProfileStoreHandle(Arc<Mutex<BTreeMap<String, Profile>>>);

impl ProfileStoreHandle {
    /// Merges an observation into the store (attributes accumulate).
    pub fn merge(&self, p: Profile) {
        let mut store = self.0.lock();
        let entry = store.entry(p.user.clone()).or_default();
        entry.user = p.user;
        if p.gender.is_some() {
            entry.gender = p.gender;
        }
        if p.age.is_some() {
            entry.age = p.age;
        }
        if p.location.is_some() {
            entry.location = p.location;
        }
        entry.sentiment = p.sentiment;
        for s in p.sources {
            if !entry.sources.contains(&s) {
                entry.sources.push(s);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Snapshot of all profiles (what a C3 job scans).
    pub fn snapshot(&self) -> Vec<Profile> {
        self.0.lock().values().cloned().collect()
    }

    /// Profiles that have the given attribute.
    pub fn count_with_attribute(&self, attribute: &str) -> usize {
        self.0
            .lock()
            .values()
            .filter(|p| has_attribute(p, attribute))
            .count()
    }
}

fn has_attribute(p: &Profile, attribute: &str) -> bool {
    match attribute {
        "gender" => p.gender.is_some(),
        "age" => p.age.is_some(),
        "location" => p.location.is_some(),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// C1: reads a social stream and emits interesting profiles
/// `{user, source, sentiment}`.
pub struct SocialStreamReader {
    source: String,
    rate: f64,
    credit: f64,
    rng: SimRng,
    user_space: u64,
}

impl Operator for SocialStreamReader {
    fn on_tuple(&mut self, _port: usize, _t: Tuple, _ctx: &mut OpCtx) {}

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        self.credit += self.rate * ctx.quantum().as_secs_f64();
        while self.credit >= 1.0 - 1e-9 {
            self.credit -= 1.0;
            // Negative-post filter baked in: only ~interesting profiles flow.
            let user = format!("u{}", self.rng.gen_range(0, self.user_space));
            let sentiment = -self.rng.next_f64(); // negative posts
            ctx.submit(
                0,
                Tuple::new()
                    .with("user", user.as_str())
                    .with("source", self.source.as_str())
                    .with("sentiment", sentiment)
                    .with("ts", Value::Timestamp(ctx.now().as_millis())),
            );
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_f64(self.credit);
        w.put_rng(&self.rng);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.credit = r.get_f64()?;
        self.rng = r.get_rng()?;
        Ok(())
    }
}

/// C2: enriches imported profiles via a keyword-search "service" and
/// integrates them into the data store. Maintains the per-attribute custom
/// metrics the orchestrator subscribes to.
pub struct SocialQuery {
    service: String,
    store: ProfileStoreHandle,
    rng: SimRng,
    p_gender: f64,
    p_age: f64,
    p_location: f64,
}

impl Operator for SocialQuery {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        let Some(user) = tuple.get_str("user") else {
            return;
        };
        let mut profile = Profile {
            user: user.to_string(),
            sentiment: tuple.get_f64("sentiment").unwrap_or(0.0),
            sources: vec![self.service.clone()],
            ..Default::default()
        };
        if self.rng.gen_bool(self.p_gender) {
            profile.gender = Some(if self.rng.gen_bool(0.5) { "f" } else { "m" }.to_string());
        }
        if self.rng.gen_bool(self.p_age) {
            profile.age = Some(self.rng.gen_range(13, 80) as i64);
        }
        if self.rng.gen_bool(self.p_location) {
            profile.location = Some(format!("loc{}", self.rng.gen_range(0, 50)));
        }
        // Cumulative per-attribute counters — duplicates included, exactly
        // as the paper notes.
        for (attr, metric) in [
            ("gender", "nGenderProfiles"),
            ("age", "nAgeProfiles"),
            ("location", "nLocationProfiles"),
        ] {
            if has_attribute(&profile, attr) {
                ctx.metric_add(metric, 1);
            }
        }
        self.store.merge(profile);
        ctx.submit(0, tuple);
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_rng(&self.rng);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.rng = r.get_rng()?;
        Ok(())
    }
}

/// C3: scans the data store once, emits a sentiment correlation per value of
/// the configured attribute, then a final punctuation.
pub struct AttributeAggregator {
    attribute: String,
    store: ProfileStoreHandle,
    done: bool,
}

impl Operator for AttributeAggregator {
    fn on_tuple(&mut self, _port: usize, _t: Tuple, _ctx: &mut OpCtx) {}

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        if self.done {
            return;
        }
        self.done = true;
        // Correlate sentiment with the attribute over the deduplicated
        // store.
        let mut groups: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for p in self.store.snapshot() {
            if !has_attribute(&p, &self.attribute) {
                continue;
            }
            let key = match self.attribute.as_str() {
                "gender" => p.gender.clone().unwrap(),
                "age" => format!("{}s", (p.age.unwrap() / 10) * 10),
                "location" => p.location.clone().unwrap(),
                _ => unreachable!("validated at construction"),
            };
            let slot = groups.entry(key).or_insert((0.0, 0));
            slot.0 += p.sentiment;
            slot.1 += 1;
        }
        for (value, (sum, n)) in groups {
            ctx.submit(
                0,
                Tuple::new()
                    .with("attribute", self.attribute.as_str())
                    .with("value", value.as_str())
                    .with("avg_sentiment", sum / n as f64)
                    .with("count", n as i64)
                    .with("ts", Value::Timestamp(ctx.now().as_millis())),
            );
        }
        ctx.metric_set("nProfilesSegmented", 1);
        ctx.submit_punct(0, Punct::Final);
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        // `done` is the crucial bit: a revived C3 that already emitted must
        // not scan the store and emit (plus a second Final) again.
        w.put_bool(self.done);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        self.done = StateReader::new(blob).get_bool()?;
        Ok(())
    }
}

/// Registers the social operator kinds.
pub fn register_ops(r: &mut OperatorRegistry, stores: &SharedStores) {
    r.register("SocialStreamReader", |op| {
        let source = op
            .params
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or("twitter")
            .to_string();
        let rate = op
            .params
            .get("rate")
            .and_then(Value::as_f64)
            .unwrap_or(50.0);
        let seed = op.params.get("seed").and_then(Value::as_int).unwrap_or(11) as u64;
        let user_space = op
            .params
            .get("user_space")
            .and_then(Value::as_int)
            .unwrap_or(100_000) as u64;
        Ok(Box::new(SocialStreamReader {
            source,
            rate,
            credit: 0.0,
            rng: SimRng::new(seed),
            user_space,
        }))
    });
    let store = stores.profile_store.clone();
    r.register("SocialQuery", move |op| {
        let service = op
            .params
            .get("service")
            .and_then(Value::as_str)
            .unwrap_or("facebook")
            .to_string();
        let seed = op.params.get("seed").and_then(Value::as_int).unwrap_or(13) as u64;
        Ok(Box::new(SocialQuery {
            service,
            store: store.clone(),
            rng: SimRng::new(seed),
            p_gender: op
                .params
                .get("p_gender")
                .and_then(Value::as_f64)
                .unwrap_or(0.6),
            p_age: op
                .params
                .get("p_age")
                .and_then(Value::as_f64)
                .unwrap_or(0.4),
            p_location: op
                .params
                .get("p_location")
                .and_then(Value::as_f64)
                .unwrap_or(0.3),
        }))
    });
    let store = stores.profile_store.clone();
    r.register("AttributeAggregator", move |op| {
        let attribute = op
            .params
            .get("attribute")
            .and_then(Value::as_str)
            .unwrap_or("gender")
            .to_string();
        if !["gender", "age", "location"].contains(&attribute.as_str()) {
            return Err(sps_engine::EngineError::BadParam {
                op: op.name.clone(),
                message: format!("unknown attribute '{attribute}'"),
            });
        }
        Ok(Box::new(AttributeAggregator {
            attribute,
            store: store.clone(),
            done: false,
        }))
    });
}

// ---------------------------------------------------------------------------
// Application graphs
// ---------------------------------------------------------------------------

/// A C1 reader application exporting its profile stream.
pub fn c1_app(name: &str, source: &str, rate: f64, seed: u64) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "reader",
        OperatorInvocation::new("SocialStreamReader")
            .source()
            .param("source", source)
            .param("rate", rate)
            .param("seed", seed as i64)
            .export(
                0,
                ExportSpec::default()
                    .with_property("topic", "profiles")
                    .with_property("source", source),
            ),
    );
    let model = AppModelBuilder::new(name)
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

/// A C2 query application importing all profile streams.
pub fn c2_app(name: &str, service: &str, seed: u64) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "import",
        OperatorInvocation::new("Import")
            .source()
            .import_spec(ImportSpec::default().subscribe("topic", "profiles")),
    );
    m.operator(
        "query",
        OperatorInvocation::new("SocialQuery")
            .param("service", service)
            .param("seed", seed as i64)
            .custom_metric("nGenderProfiles")
            .custom_metric("nAgeProfiles")
            .custom_metric("nLocationProfiles"),
    );
    m.operator("log", OperatorInvocation::new("Sink").sink());
    m.pipe("import", "query");
    m.pipe("query", "log");
    let model = AppModelBuilder::new(name)
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

/// The C3 profile-segmentation application; `attribute` is a
/// submission-time parameter supplied by the app configuration.
pub fn c3_app() -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "aggregator",
        OperatorInvocation::new("AttributeAggregator")
            .source()
            .param("attribute", "${attribute}")
            .custom_metric("nProfilesSegmented"),
    );
    m.operator("result", OperatorInvocation::new("Sink").sink());
    m.pipe("aggregator", "result");
    let model = AppModelBuilder::new("AttributeAggregator")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

// ---------------------------------------------------------------------------
// The ORCA logic (§5.3) — the paper reports 139 lines of C++ for this
// ---------------------------------------------------------------------------

/// A point in the composition timeline (drives the Figure 10 rendering).
#[derive(Clone, Debug, PartialEq)]
pub struct CompositionEvent {
    pub at: SimTime,
    pub submitted: bool,
    pub app_name: String,
    pub config_id: Option<String>,
}

/// The dynamic-composition orchestrator.
pub struct CompositionOrca {
    threshold: i64,
    /// Latest cumulative per-(app, metric) values.
    latest: BTreeMap<(String, String), i64>,
    /// Aggregate value at the last C3 launch, per attribute.
    last_spawn: BTreeMap<String, i64>,
    /// Running C3 config per attribute (one segmentation at a time).
    active_c3: BTreeMap<String, String>,
    next_c3: u64,
    pub timeline: Vec<CompositionEvent>,
    pub c3_launched: u32,
    pub c3_completed: u32,
}

const C2_APPS: [(&str, &str); 3] = [
    ("TwitterQuery", "twitter"),
    ("BlogQuery", "blogs"),
    ("FacebookQuery", "facebook"),
];

const ATTRIBUTES: [(&str, &str); 3] = [
    ("gender", "nGenderProfiles"),
    ("age", "nAgeProfiles"),
    ("location", "nLocationProfiles"),
];

impl CompositionOrca {
    pub fn new(threshold: i64) -> Self {
        CompositionOrca {
            threshold,
            latest: BTreeMap::new(),
            last_spawn: BTreeMap::new(),
            active_c3: BTreeMap::new(),
            next_c3: 0,
            timeline: Vec::new(),
            c3_launched: 0,
            c3_completed: 0,
        }
    }

    /// Sum of a metric across all C2 applications.
    fn aggregate(&self, metric: &str) -> i64 {
        C2_APPS
            .iter()
            .filter_map(|(app, _)| self.latest.get(&(app.to_string(), metric.to_string())))
            .sum()
    }

    fn maybe_spawn_c3(&mut self, ctx: &mut OrcaCtx<'_>) {
        for (attr, metric) in ATTRIBUTES {
            if self.active_c3.contains_key(attr) {
                continue;
            }
            let total = self.aggregate(metric);
            let baseline = self.last_spawn.get(attr).copied().unwrap_or(0);
            if total - baseline < self.threshold {
                continue;
            }
            self.next_c3 += 1;
            let config_id = format!("c3-{attr}-{}", self.next_c3);
            let cfg = AppConfig::new(&config_id, "AttributeAggregator")
                .param("attribute", attr)
                .gc_timeout(SimDuration::ZERO);
            if ctx.create_app_config(cfg).is_err() {
                continue;
            }
            if ctx.request_start(&config_id).is_ok() {
                self.last_spawn.insert(attr.to_string(), total);
                self.active_c3.insert(attr.to_string(), config_id);
                self.c3_launched += 1;
            }
        }
    }
}

impl Orchestrator for CompositionOrca {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        // Configurations: two C1 readers, three C2 query apps.
        for (id, app) in [
            ("c1-twitter", "TwitterStreamReader"),
            ("c1-myspace", "MySpaceStreamReader"),
        ] {
            ctx.create_app_config(AppConfig::new(id, app).gc_timeout(SimDuration::from_secs(10)))
                .unwrap();
        }
        for (app, _) in C2_APPS {
            let id = format!("c2-{}", app.to_lowercase());
            ctx.create_app_config(AppConfig::new(&id, app).gc_timeout(SimDuration::from_secs(10)))
                .unwrap();
            // Every C2 depends on both C1 readers; uptime 0 because C1 apps
            // build no internal state (§5.3).
            ctx.register_dependency(&id, "c1-twitter", SimDuration::ZERO)
                .unwrap();
            ctx.register_dependency(&id, "c1-myspace", SimDuration::ZERO)
                .unwrap();
        }
        // Scopes: C2 per-attribute custom metrics…
        let mut c2_scope = OperatorMetricScope::new("c2Metrics").add_operator_instance("query");
        for (_, metric) in ATTRIBUTES {
            c2_scope = c2_scope.add_metric(metric);
        }
        for (app, _) in C2_APPS {
            c2_scope = c2_scope.add_application(app);
        }
        ctx.register_event_scope(c2_scope);
        // …and the final-punctuation built-in metric of the C3 sink.
        ctx.register_event_scope(
            OperatorMetricScope::new("c3Final")
                .add_application("AttributeAggregator")
                .add_operator_instance("result")
                .add_metric(builtin::N_FINAL_PUNCTS_PROCESSED),
        );
        // Timeline bookkeeping for every job event.
        ctx.register_event_scope(JobEventScope::new("timeline"));
        ctx.set_metric_poll_period(SimDuration::from_secs(3));

        // Start all C2 applications; dependencies pull the C1 readers up.
        for (app, _) in C2_APPS {
            ctx.request_start(&format!("c2-{}", app.to_lowercase()))
                .unwrap();
        }
    }

    fn on_operator_metric(
        &mut self,
        ctx: &mut OrcaCtx<'_>,
        e: &OperatorMetricContext,
        scopes: &[String],
    ) {
        if scopes.iter().any(|s| s == "c3Final") {
            // A C3 application has processed all of its tuples: contract the
            // composition (§5.3).
            if e.value >= 1 {
                if let Some(config) = ctx.config_of_job(e.job) {
                    if ctx.request_cancel(&config).is_ok() {
                        self.active_c3.retain(|_, c| c != &config);
                        self.c3_completed += 1;
                    }
                }
            }
            return;
        }
        self.latest
            .insert((e.app_name.clone(), e.metric.clone()), e.value);
        self.maybe_spawn_c3(ctx);
    }

    fn on_job_submitted(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
        self.timeline.push(CompositionEvent {
            at: e.at,
            submitted: true,
            app_name: e.app_name.clone(),
            config_id: e.config_id.clone(),
        });
    }

    fn on_job_cancelled(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
        self.timeline.push(CompositionEvent {
            at: e.at,
            submitted: false,
            app_name: e.app_name.clone(),
            config_id: e.config_id.clone(),
        });
    }
}

/// Builds the full orchestrator descriptor for the composition scenario.
pub fn composition_descriptor() -> orca::OrcaDescriptor {
    orca::OrcaDescriptor::new("CompositionOrca")
        .app(c1_app("TwitterStreamReader", "twitter", 80.0, 21))
        .app(c1_app("MySpaceStreamReader", "myspace", 40.0, 22))
        .app(c2_app("TwitterQuery", "twitter", 31))
        .app(c2_app("BlogQuery", "blogs", 32))
        .app(c2_app("FacebookQuery", "facebook", 33))
        .app(c3_app())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca::OrcaService;
    use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};

    fn build_world(threshold: i64) -> (World, usize, SharedStores) {
        let stores = SharedStores::new();
        let kernel = Kernel::new(
            Cluster::with_hosts(4),
            crate::registry(&stores),
            RuntimeConfig::default(),
        );
        let mut world = World::new(kernel);
        let service = OrcaService::submit(
            &mut world.kernel,
            composition_descriptor(),
            Box::new(CompositionOrca::new(threshold)),
        );
        let idx = world.add_controller(Box::new(service));
        (world, idx, stores)
    }

    fn logic(world: &World, idx: usize) -> &CompositionOrca {
        world
            .controller::<OrcaService>(idx)
            .unwrap()
            .logic::<CompositionOrca>()
            .unwrap()
    }

    #[test]
    fn dependencies_bring_up_c1_and_c2() {
        let (mut world, idx, _) = build_world(1_000_000); // never spawn C3
        world.run_for(SimDuration::from_secs(5));
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let mut running: Vec<String> = world
            .kernel
            .sam
            .jobs()
            .map(|j| j.app_name.clone())
            .collect();
        running.sort();
        assert_eq!(
            running,
            vec![
                "BlogQuery",
                "FacebookQuery",
                "MySpaceStreamReader",
                "TwitterQuery",
                "TwitterStreamReader"
            ]
        );
        // Cross-job stream connections exist: 2 exporters × 3 importers.
        assert_eq!(world.kernel.broker.num_connections(), 6);
        let _ = svc;
        // Submission timeline: C1 readers before (or same instant as) C2s.
        let l = logic(&world, idx);
        let first_c2 = l
            .timeline
            .iter()
            .position(|e| e.app_name.ends_with("Query"))
            .unwrap();
        let last_c1 = l
            .timeline
            .iter()
            .rposition(|e| e.app_name.ends_with("StreamReader"))
            .unwrap();
        assert!(l.timeline[last_c1].at <= l.timeline[first_c2].at);
    }

    #[test]
    fn profiles_flow_into_store_with_dedup() {
        let (mut world, _, stores) = build_world(1_000_000);
        world.run_for(SimDuration::from_secs(20));
        let n = stores.profile_store.len();
        assert!(n > 100, "store should fill: {n}");
        // Dedup: far fewer distinct users than tuples processed (3 C2 apps ×
        // 2 C1 feeds re-observe the same users).
        let with_gender = stores.profile_store.count_with_attribute("gender");
        assert!(with_gender > 0);
        assert!(with_gender <= n);
    }

    #[test]
    fn c3_spawns_at_threshold_and_contracts_on_final_punct() {
        let (mut world, idx, _) = build_world(1500);
        world.run_for(SimDuration::from_secs(60));
        let l = logic(&world, idx);
        assert!(l.c3_launched >= 1, "C3 should have been spawned");
        assert!(
            l.c3_completed >= 1,
            "C3 should have finished and been cancelled (launched {})",
            l.c3_launched
        );
        // Expansion and contraction both appear on the timeline.
        assert!(l
            .timeline
            .iter()
            .any(|e| e.submitted && e.app_name == "AttributeAggregator"));
        assert!(l
            .timeline
            .iter()
            .any(|e| !e.submitted && e.app_name == "AttributeAggregator"));
        // The composition contracted: no C3 job left running.
        let still_running = world
            .kernel
            .sam
            .jobs()
            .filter(|j| j.app_name == "AttributeAggregator")
            .count();
        let active: usize = l.active_c3.len();
        assert_eq!(still_running, active);
        // C3 results were produced before cancellation (check the trace).
        assert!(l.c3_launched as usize >= l.active_c3.len());
    }

    #[test]
    fn c3_results_correlate_attribute_with_sentiment() {
        let stores = SharedStores::new();
        for i in 0..100 {
            stores.profile_store.merge(Profile {
                user: format!("u{i}"),
                gender: Some(if i % 2 == 0 { "f" } else { "m" }.to_string()),
                age: None,
                location: None,
                sentiment: -0.5,
                sources: vec!["test".into()],
            });
        }
        let mut kernel = Kernel::new(
            Cluster::with_hosts(1),
            crate::registry(&stores),
            RuntimeConfig::default(),
        );
        let mut adl = c3_app();
        // Substitute the parameter by hand (no orchestrator in this test).
        for op in &mut adl.operators {
            if let Some(v) = op.params.get_mut("attribute") {
                *v = Value::Str("gender".into());
            }
        }
        let job = kernel.submit_job(adl, None).unwrap();
        for _ in 0..20 {
            kernel.quantum();
        }
        let results = kernel.tap(job, "result").unwrap();
        assert_eq!(results.len(), 2); // f and m buckets
        for r in &results {
            assert_eq!(r.get_int("count"), Some(50));
            assert!((r.get_f64("avg_sentiment").unwrap() + 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn store_merge_semantics() {
        let store = ProfileStoreHandle::default();
        assert!(store.is_empty());
        store.merge(Profile {
            user: "alice".into(),
            gender: Some("f".into()),
            sentiment: -0.2,
            sources: vec!["twitter".into()],
            ..Default::default()
        });
        store.merge(Profile {
            user: "alice".into(),
            age: Some(30),
            sentiment: -0.4,
            sources: vec!["facebook".into()],
            ..Default::default()
        });
        assert_eq!(store.len(), 1);
        let p = &store.snapshot()[0];
        assert_eq!(p.gender.as_deref(), Some("f")); // preserved
        assert_eq!(p.age, Some(30)); // merged in
        assert_eq!(
            p.sources,
            vec!["twitter".to_string(), "facebook".to_string()]
        );
        assert_eq!(store.count_with_attribute("gender"), 1);
        assert_eq!(store.count_with_attribute("location"), 0);
        assert_eq!(store.count_with_attribute("bogus"), 0);
    }

    #[test]
    fn aggregator_rejects_unknown_attribute() {
        let stores = SharedStores::new();
        let registry = crate::registry(&stores);
        let mut adl = c3_app();
        for op in &mut adl.operators {
            if let Some(v) = op.params.get_mut("attribute") {
                *v = Value::Str("shoe_size".into());
            }
        }
        let mut kernel = Kernel::new(Cluster::with_hosts(1), registry, RuntimeConfig::default());
        assert!(kernel.submit_job(adl, None).is_err());
    }
}
