//! End-to-end orchestrator event path (§3's performance discussion):
//!
//! - `poll_and_filter`: one SRM poll round — query, scope-match every
//!   observation, build and deliver events — under a selective scope vs. a
//!   firehose scope (the "scope filtering vs. deliver-everything" ablation).
//! - `failure_event_path`: SAM notification → scope match → context build →
//!   handler dispatch (the extra hop the paper says failure handling costs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use orca::{
    OperatorMetricContext, OperatorMetricScope, OrcaCtx, OrcaDescriptor, OrcaService,
    OrcaStartContext, Orchestrator, PeFailureContext, PeFailureScope,
};
use orca_bench::nested_app;
use sps_engine::OperatorRegistry;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

/// Counts deliveries; registers either a selective or a firehose scope.
struct Counter {
    selective: bool,
    metric_events: u64,
    failure_events: u64,
}

impl Orchestrator for Counter {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        let scope = if self.selective {
            OperatorMetricScope::new("sel")
                .add_operator_type("Work")
                .add_composite_type("level0")
                .add_metric("queueSize")
        } else {
            OperatorMetricScope::new("all") // firehose: every metric event
        };
        ctx.register_event_scope(scope);
        ctx.register_event_scope(PeFailureScope::new("fail"));
        ctx.set_metric_poll_period(SimDuration::from_secs(3));
        ctx.submit_app("Nested").unwrap();
    }

    fn on_operator_metric(
        &mut self,
        _ctx: &mut OrcaCtx<'_>,
        _e: &OperatorMetricContext,
        _s: &[String],
    ) {
        self.metric_events += 1;
    }

    fn on_pe_failure(&mut self, ctx: &mut OrcaCtx<'_>, e: &PeFailureContext, _s: &[String]) {
        self.failure_events += 1;
        let _ = ctx.restart_pe(e.pe);
    }
}

fn world_with(selective: bool) -> (World, usize) {
    let kernel = Kernel::new(
        Cluster::with_hosts(4),
        OperatorRegistry::with_builtins(),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("Bench").app(nested_app(8, 3, 8)),
        Box::new(Counter {
            selective,
            metric_events: 0,
            failure_events: 0,
        }),
    );
    let idx = world.add_controller(Box::new(service));
    // Warm up: submit + first metric pushes.
    world.run_for(SimDuration::from_secs(7));
    (world, idx)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_delivery");
    group.sample_size(20);
    for selective in [true, false] {
        let label = if selective {
            "selective_scope"
        } else {
            "firehose_scope"
        };
        group.bench_with_input(
            BenchmarkId::new("poll_round", label),
            &selective,
            |b, &sel| {
                b.iter_batched(
                    || world_with(sel),
                    |(mut world, idx)| {
                        // Drive past the next poll (3 s of sim time).
                        world.run_for(SimDuration::from_secs(3));
                        let svc = world.controller::<OrcaService>(idx).unwrap();
                        black_box(svc.stats().events_delivered)
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    group.bench_function("failure_event_path", |b| {
        b.iter_batched(
            || {
                let (world, idx) = world_with(true);
                let job = world.kernel.sam.running_jobs()[0];
                (world, idx, job)
            },
            |(mut world, idx, job)| {
                let pe = world.kernel.pe_id_of(job, 0).unwrap();
                world.kernel.kill_pe(pe).unwrap();
                // One quantum: notification pull + dispatch + restart.
                world.step();
                let svc = world.controller::<OrcaService>(idx).unwrap();
                black_box(svc.logic::<Counter>().unwrap().failure_events)
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
