//! §4.1 ablation: the scope-matcher API vs. the literal recursive-SQL
//! evaluation over the same relational view.
//!
//! The paper argues the scope API is the *simpler interface*; this bench
//! quantifies the runtime side: per-poll filtering cost of each approach as
//! the topology grows and nests.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use orca::sqlbase::Tables;
use orca::OperatorMetricScope;
use orca_bench::graph_with_metrics;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scope_vs_sql");
    for (width, depth, leaf) in [(4, 2, 4), (8, 3, 8), (16, 4, 16)] {
        let (graph, metrics) = graph_with_metrics(width, depth, leaf);
        let n_ops = graph.num_operators();
        let scope = OperatorMetricScope::new("k")
            .add_composite_type("level0")
            .add_operator_type("Work")
            .add_metric("queueSize");
        group.bench_with_input(BenchmarkId::new("scope_matcher", n_ops), &n_ops, |b, _| {
            b.iter(|| {
                let hits = metrics
                    .iter()
                    .filter(|(op, m, _)| scope.matches("Nested", &graph, op, m))
                    .count();
                black_box(hits)
            })
        });
        let tables = Tables::from_graph(&graph, &metrics);
        group.bench_with_input(BenchmarkId::new("recursive_sql", n_ops), &n_ops, |b, _| {
            b.iter(|| {
                let rows = tables.recursive_containment_query("queueSize", &["Work"], "level0");
                black_box(rows.len())
            })
        });
        // Sanity: both select the same operators.
        let via_scope = metrics
            .iter()
            .filter(|(op, m, _)| scope.matches("Nested", &graph, op, m))
            .count();
        let via_sql = tables
            .recursive_containment_query("queueSize", &["Work"], "level0")
            .len();
        assert_eq!(via_scope, via_sql);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
