//! Engine throughput and the fusion ablation: tuples/second through a
//! pipeline when all operators share one PE (in-memory routing) vs. one PE
//! per operator (serialize/deserialize on every hop), plus the hot-path
//! overhead comparison with an attached (but idle-scoped) orchestrator —
//! supporting the paper's claim that orchestration stays off the data path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sps_engine::OperatorRegistry;
use sps_model::compiler::{compile, CompileOptions, FusionPolicy};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::Adl;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

fn pipeline(stages: usize, fusion: FusionPolicy) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 5000.0),
    );
    for i in 0..stages {
        m.operator(
            &format!("f{i}"),
            OperatorInvocation::new("Functor").param("set:v", "seq * 2"),
        );
        let prev = if i == 0 {
            "src".to_string()
        } else {
            format!("f{}", i - 1)
        };
        m.pipe(&prev, &format!("f{i}"));
    }
    m.operator("snk", OperatorInvocation::new("Sink").sink());
    m.pipe(&format!("f{}", stages - 1), "snk");
    let model = AppModelBuilder::new("Pipe")
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions { fusion }).unwrap()
}

fn run_simulation(adl: Adl, secs: u64) -> u64 {
    let mut kernel = Kernel::new(
        Cluster::with_hosts(4),
        OperatorRegistry::with_builtins(),
        RuntimeConfig {
            pe_budget: 1_000_000,
            ..Default::default()
        },
    );
    let job = kernel.submit_job(adl, None).unwrap();
    for _ in 0..(secs * 10) {
        kernel.quantum();
    }
    // Tuples that reached the sink.
    let info = kernel.sam.job(job).unwrap();
    let sink_pe = info.pe_ids[info.adl.operator("snk").unwrap().pe];
    kernel
        .cluster
        .process(sink_pe)
        .unwrap()
        .runtime
        .metrics()
        .op_get("snk", "nTuplesProcessed")
        .unwrap_or(0) as u64
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    let sim_secs = 5;
    for stages in [4usize, 8] {
        // ~5000 t/s for 5 sim-seconds flows through the pipeline.
        group.throughput(Throughput::Elements(5000 * sim_secs));
        group.bench_with_input(
            BenchmarkId::new("fused_single_pe", stages),
            &stages,
            |b, &s| {
                b.iter(|| black_box(run_simulation(pipeline(s, FusionPolicy::FuseAll), sim_secs)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("one_pe_per_op", stages),
            &stages,
            |b, &s| {
                b.iter(|| {
                    black_box(run_simulation(
                        pipeline(s, FusionPolicy::Colocation),
                        sim_secs,
                    ))
                })
            },
        );
    }

    // Hot-path overhead: same workload with and without an attached
    // orchestrator whose scope matches nothing.
    group.bench_function("no_orchestrator", |b| {
        b.iter(|| black_box(run_simulation(pipeline(4, FusionPolicy::FuseAll), sim_secs)))
    });
    group.bench_function("idle_orchestrator_attached", |b| {
        b.iter(|| {
            let kernel = Kernel::new(
                Cluster::with_hosts(4),
                OperatorRegistry::with_builtins(),
                RuntimeConfig {
                    pe_budget: 1_000_000,
                    ..Default::default()
                },
            );
            let mut world = World::new(kernel);
            struct Idle;
            impl orca::Orchestrator for Idle {
                fn on_start(&mut self, ctx: &mut orca::OrcaCtx<'_>, _s: &orca::OrcaStartContext) {
                    ctx.register_event_scope(
                        orca::OperatorMetricScope::new("none").add_metric("nonexistent"),
                    );
                    ctx.submit_app("Pipe").unwrap();
                }
            }
            let service = orca::OrcaService::submit(
                &mut world.kernel,
                orca::OrcaDescriptor::new("Idle").app(pipeline(4, FusionPolicy::FuseAll)),
                Box::new(Idle),
            );
            world.add_controller(Box::new(service));
            world.run_for(SimDuration::from_secs(sim_secs));
            black_box(world.now())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
