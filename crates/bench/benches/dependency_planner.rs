//! Dependency-manager scaling (§4.4): submission planning and cancellation
//! sweeps over growing application DAGs (chains and fans).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use orca::{AppConfig, DependencyManager};
use sps_sim::{SimDuration, SimTime};

fn chain(n: usize) -> DependencyManager {
    let mut m = DependencyManager::new();
    for i in 0..n {
        m.register_config(AppConfig::new(&format!("a{i}"), &format!("App{i}")))
            .unwrap();
    }
    for i in 1..n {
        m.register_dependency(
            &format!("a{i}"),
            &format!("a{}", i - 1),
            SimDuration::from_secs(1),
        )
        .unwrap();
    }
    m
}

fn fan(n: usize) -> DependencyManager {
    let mut m = DependencyManager::new();
    m.register_config(AppConfig::new("top", "Top")).unwrap();
    for i in 0..n {
        m.register_config(AppConfig::new(&format!("leaf{i}"), &format!("Leaf{i}")))
            .unwrap();
        m.register_dependency("top", &format!("leaf{i}"), SimDuration::from_secs(2))
            .unwrap();
    }
    m
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_planner");
    for n in [10usize, 50, 200] {
        group.bench_with_input(BenchmarkId::new("plan_chain", n), &n, |b, &n| {
            b.iter_batched(
                || chain(n),
                |mut m| {
                    let plan = m
                        .request_start(&format!("a{}", n - 1), SimTime::ZERO)
                        .unwrap();
                    black_box(plan.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("plan_fan", n), &n, |b, &n| {
            b.iter_batched(
                || fan(n),
                |mut m| {
                    let plan = m.request_start("top", SimTime::ZERO).unwrap();
                    black_box(plan.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("cancel_fan", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut m = fan(n);
                    m.request_start("top", SimTime::ZERO).unwrap();
                    let mut job = 0;
                    for t in 0..5 {
                        for cfg in m.due_submissions(SimTime::from_secs(t)) {
                            job += 1;
                            m.mark_submitted(&cfg, sps_runtime::JobId(job), SimTime::from_secs(t));
                        }
                    }
                    m
                },
                |mut m| {
                    let plan = m.request_cancel("top", SimTime::from_secs(100)).unwrap();
                    black_box(plan.queued.len())
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("cycle_detection", n), &n, |b, &n| {
            b.iter_batched(
                || chain(n),
                |mut m| {
                    // Closing edge must be detected as a cycle.
                    let err = m
                        .register_dependency("a0", &format!("a{}", n - 1), SimDuration::ZERO)
                        .unwrap_err();
                    black_box(err)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
