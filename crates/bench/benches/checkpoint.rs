//! Checkpoint hot-path costs: snapshot encoding (tuple-heavy operator state
//! through `StateWriter`, the per-quantum work of a checkpointing kernel)
//! and `PeCheckpoint::digest` (computed once per snapshot *and* once per
//! restore self-verification).
//!
//! `put_tuple` is the allocation-cut target: it borrows tuples into a
//! reusable scratch buffer instead of cloning each one into a throwaway
//! encode buffer, so a 600 s trend window snapshots without a deep copy of
//! its contents.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sps_engine::ckpt::CKPT_FORMAT_VERSION;
use sps_engine::{MetricKey, OpCheckpoint, PeCheckpoint, StateBlob, StateWriter, Tuple};
use sps_model::Value;
use sps_sim::SimTime;
use std::sync::Arc;

fn tuple(i: usize) -> Tuple {
    Tuple::new()
        .with("sym", format!("S{}", i % 3).as_str())
        .with("price", 100.0 + i as f64 * 0.25)
        .with("seq", i as i64)
        .with("ts", Value::Timestamp(i as u64 * 50))
}

/// Serializes a window of `n` tuples the way stateful operators do.
fn encode_window(n: usize) -> StateBlob {
    let mut w = StateWriter::new();
    w.put_u32(n as u32);
    for i in 0..n {
        w.put_tuple(&tuple(i));
    }
    w.finish()
}

/// A PE checkpoint shaped like a fused stateful container: `ops` operator
/// slots with window blobs plus a realistic metric table.
fn sample_checkpoint(ops: usize, tuples_per_op: usize) -> PeCheckpoint {
    let metrics = (0..ops)
        .flat_map(|o| {
            ["nTuplesProcessed", "nTuplesSubmitted", "queueSize"]
                .into_iter()
                .map(move |m| {
                    (
                        Arc::new(MetricKey::Operator(format!("op{o}"), m.to_string())),
                        (o * 1000) as i64,
                    )
                })
        })
        .collect();
    PeCheckpoint {
        format_version: CKPT_FORMAT_VERSION,
        pe_index: 0,
        taken_at: SimTime::from_secs(60),
        ops: (0..ops)
            .map(|o| OpCheckpoint {
                name: format!("op{o}"),
                kind: "Aggregate".to_string(),
                finals_seen: vec![false],
                blob: Some(encode_window(tuples_per_op)),
            })
            .collect(),
        queues: (0..ops).map(|_| vec![bytes::Bytes::new()]).collect(),
        metrics,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    for tuples in [64usize, 512, 4096] {
        group.throughput(Throughput::Elements(tuples as u64));
        group.bench_with_input(
            BenchmarkId::new("snapshot_encode", format!("{tuples}tuples")),
            &tuples,
            |b, &n| b.iter(|| black_box(encode_window(n)).len()),
        );
    }
    for (ops, tuples) in [(2usize, 64usize), (4, 512)] {
        let ckpt = sample_checkpoint(ops, tuples);
        group.throughput(Throughput::Bytes(ckpt.state_bytes() as u64));
        group.bench_with_input(
            BenchmarkId::new("digest", format!("{ops}ops_{tuples}tuples")),
            &ckpt,
            |b, ckpt| b.iter(|| black_box(ckpt.digest())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
