//! Graph-store inspection queries (§4.2): cost of the logical↔physical
//! disambiguation primitives as topology size grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use orca_bench::graph_with_metrics;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_queries");
    for (width, depth, leaf) in [(4, 2, 4), (16, 4, 16)] {
        let (graph, _) = graph_with_metrics(width, depth, leaf);
        let n = graph.num_operators();
        let deep_op = graph
            .operators()
            .find(|o| o.composite_chain.len() == depth)
            .map(|o| o.name.clone())
            .unwrap();

        group.bench_with_input(BenchmarkId::new("operators_in_pe", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0;
                for pe in 0..graph.num_pes() {
                    total += graph.operators_in_pe(pe).len();
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("composites_in_pe", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0;
                for pe in 0..graph.num_pes() {
                    total += graph.composites_in_pe(pe).len();
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("enclosing_composite", n), &n, |b, _| {
            b.iter(|| black_box(graph.enclosing_composite(&deep_op)))
        });
        group.bench_with_input(BenchmarkId::new("recursive_containment", n), &n, |b, _| {
            b.iter(|| black_box(graph.op_in_composite_type(&deep_op, "level0")))
        });
        group.bench_with_input(
            BenchmarkId::new("operators_in_composite_type", n),
            &n,
            |b, _| b.iter(|| black_box(graph.operators_in_composite_type("level0").len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
