//! Inter-PE tuple serialization cost — the price of crossing a process
//! boundary, which the fusion ablation (engine_throughput) shows end to end.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sps_engine::codec::{decode, encode};
use sps_engine::{StreamItem, Tuple};
use sps_model::Value;

fn tuple(attrs: usize, string_len: usize) -> StreamItem {
    let mut t = Tuple::new();
    for i in 0..attrs {
        match i % 4 {
            0 => t.set(&format!("i{i}"), (i as i64) * 7),
            1 => t.set(&format!("f{i}"), i as f64 * 0.5),
            2 => t.set(&format!("s{i}"), "x".repeat(string_len).as_str()),
            _ => t.set(&format!("t{i}"), Value::Timestamp(i as u64)),
        }
    }
    StreamItem::Tuple(t)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuple_codec");
    for (attrs, slen) in [(4usize, 8usize), (16, 32), (64, 128)] {
        let item = tuple(attrs, slen);
        let encoded = encode(&item);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{attrs}attrs")),
            &item,
            |b, item| b.iter(|| black_box(encode(item))),
        );
        group.bench_with_input(
            BenchmarkId::new("decode", format!("{attrs}attrs")),
            &encoded,
            |b, bytes| b.iter(|| black_box(decode(bytes.clone()).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("roundtrip", format!("{attrs}attrs")),
            &item,
            |b, item| b.iter(|| black_box(decode(encode(item)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
