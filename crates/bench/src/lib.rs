//! Shared fixtures for the benchmark suite and the figure-regeneration
//! harness binaries.

use sps_model::adl::Adl;
use sps_model::compiler::{compile, CompileOptions, FusionPolicy};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::GraphStore;

/// Builds an application whose graph nests `width` composite instances of
/// `depth` levels, each leaf holding `ops_per_leaf` worker operators — a
/// scalable stand-in for large production topologies.
pub fn nested_app(width: usize, depth: usize, ops_per_leaf: usize) -> Adl {
    let mut builder = AppModelBuilder::new("Nested");

    // Leaf composite: a chain of workers.
    let mut leaf = CompositeGraphBuilder::new("level0", 1, 1);
    for i in 0..ops_per_leaf {
        leaf.operator(
            &format!("w{i}"),
            OperatorInvocation::new(if i % 2 == 0 { "Work" } else { "Functor" }),
        );
        if i > 0 {
            leaf.pipe(&format!("w{}", i - 1), &format!("w{i}"));
        }
    }
    leaf.bind_input(0, "w0", 0);
    leaf.bind_output(&format!("w{}", ops_per_leaf - 1), 0);
    builder.add_composite(leaf.build().unwrap()).unwrap();

    // Wrapper composites level1..level{depth-1}.
    for level in 1..depth {
        let mut c = CompositeGraphBuilder::new(&format!("level{level}"), 1, 1);
        c.composite("inner", &format!("level{}", level - 1));
        c.bind_input(0, "inner", 0);
        c.bind_output("inner", 0);
        builder.add_composite(c.build().unwrap()).unwrap();
    }

    let top = format!("level{}", depth - 1);
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 100.0),
    );
    for i in 0..width {
        m.composite(&format!("branch{i}"), &top);
        m.operator(&format!("sink{i}"), OperatorInvocation::new("Sink").sink());
        m.pipe("src", &format!("branch{i}"));
        m.pipe(&format!("branch{i}"), &format!("sink{i}"));
    }
    let model = builder.build(m.build().unwrap()).unwrap();
    compile(
        &model,
        CompileOptions {
            fusion: FusionPolicy::Target(width.max(2)),
        },
    )
    .unwrap()
}

/// Graph store plus a full queueSize metric snapshot for every operator.
pub fn graph_with_metrics(
    width: usize,
    depth: usize,
    ops_per_leaf: usize,
) -> (GraphStore, Vec<(String, String, i64)>) {
    let adl = nested_app(width, depth, ops_per_leaf);
    let graph = GraphStore::from_adl(&adl);
    let metrics: Vec<(String, String, i64)> = graph
        .operators()
        .enumerate()
        .map(|(i, o)| (o.name.clone(), "queueSize".to_string(), i as i64))
        .collect();
    (graph, metrics)
}

/// Debug helper: prints the PE layout of an ADL (used while tuning tests).
pub fn describe_layout(adl: &sps_model::Adl) -> String {
    let mut out = String::new();
    for pe in &adl.pes {
        out.push_str(&format!("PE{}: {:?}\n", pe.index, pe.operators));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_app_scales_as_requested() {
        let adl = nested_app(4, 3, 5);
        // 1 source + 4 branches × 5 leaf ops + 4 sinks.
        assert_eq!(adl.operators.len(), 1 + 4 * 5 + 4);
        let graph = GraphStore::from_adl(&adl);
        // Deepest chain: branch0 → branch0.inner → branch0.inner.inner.
        let leaf_op = graph.operators().find(|o| o.name.ends_with(".w0")).unwrap();
        assert_eq!(leaf_op.composite_chain.len(), 3);
        assert!(graph.op_in_composite_type(&leaf_op.name, "level2"));
        assert!(graph.op_in_composite_type(&leaf_op.name, "level0"));
    }

    #[test]
    fn metrics_cover_every_operator() {
        let (graph, metrics) = graph_with_metrics(2, 2, 3);
        assert_eq!(metrics.len(), graph.num_operators());
    }
}
