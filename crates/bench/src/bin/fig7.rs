//! Figure 7 regeneration: the application dependency graph
//! (fb/tw/fox/msnbc → sn/all with uptime requirements 20/80 and GC flags),
//! driven end to end: ordered submission schedule, starvation-protected
//! cancellation, garbage collection, and resurrection.
//!
//! Run with: `cargo run --release -p orca-bench --bin fig7`

use orca::{
    AppConfig, JobEventContext, JobEventScope, OrcaCtx, OrcaDescriptor, OrcaError, OrcaService,
    OrcaStartContext, Orchestrator, UserEventContext, UserEventScope,
};
use orca_apps::SharedStores;
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::Adl;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

fn tiny_app(name: &str) -> Adl {
    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 2.0),
    );
    let model = AppModelBuilder::new(name)
        .build(m.build().unwrap())
        .unwrap();
    compile(&model, CompileOptions::default()).unwrap()
}

#[derive(Default)]
struct Fig7 {
    log: Vec<String>,
    starve_error: Option<OrcaError>,
}

impl Fig7 {
    fn note(&mut self, at: SimTime, msg: String) {
        self.log
            .push(format!("t={:>6.1}s  {msg}", at.as_secs_f64()));
    }
}

impl Orchestrator for Fig7 {
    fn on_start(&mut self, ctx: &mut OrcaCtx<'_>, _s: &OrcaStartContext) {
        ctx.register_event_scope(JobEventScope::new("timeline"));
        ctx.register_event_scope(UserEventScope::new("cmd"));
        for (id, gc) in [
            ("fb", true),
            ("tw", true),
            ("fox", false), // F in the figure: not garbage collectable
            ("msnbc", true),
            ("sn", true),
            ("all", true),
        ] {
            let mut cfg = AppConfig::new(id, id).gc_timeout(SimDuration::from_secs(15));
            if !gc {
                cfg = cfg.not_garbage_collectable();
            }
            ctx.create_app_config(cfg).unwrap();
        }
        // sn depends on fb and tw, uptime 20 s; all depends on all four
        // feeds, uptime 80 s — the arc annotations of Figure 7.
        for dep in ["fb", "tw"] {
            ctx.register_dependency("sn", dep, SimDuration::from_secs(20))
                .unwrap();
        }
        for dep in ["fb", "tw", "fox", "msnbc"] {
            ctx.register_dependency("all", dep, SimDuration::from_secs(80))
                .unwrap();
        }
        // Submit both targets in the same round (the paper's example: sn's
        // required sleeping time 20 < all's 80, so sn comes up first).
        ctx.request_start("all").unwrap();
        ctx.request_start("sn").unwrap();
    }

    fn on_job_submitted(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
        self.note(
            e.at,
            format!(
                "+ submitted {:<6} as {}",
                e.config_id.clone().unwrap_or_default(),
                e.job
            ),
        );
    }

    fn on_job_cancelled(&mut self, _ctx: &mut OrcaCtx<'_>, e: &JobEventContext, _s: &[String]) {
        self.note(
            e.at,
            format!(
                "- cancelled {:<6} ({})",
                e.config_id.clone().unwrap_or_default(),
                e.job
            ),
        );
    }

    fn on_user_event(&mut self, ctx: &mut OrcaCtx<'_>, e: &UserEventContext, _s: &[String]) {
        let at = ctx.now();
        match e.name.as_str() {
            "cancel_fb" => {
                self.starve_error = ctx.request_cancel("fb").err();
                let msg = format!(
                    "! cancel(fb) rejected: {}",
                    self.starve_error
                        .as_ref()
                        .map(|e| e.to_string())
                        .unwrap_or_default()
                );
                self.note(at, msg);
            }
            "cancel_sn" => {
                ctx.request_cancel("sn").unwrap();
                self.note(at, "> cancel(sn) accepted".into());
            }
            "cancel_all" => {
                ctx.request_cancel("all").unwrap();
                self.note(at, "> cancel(all) accepted — feeders queued for GC".into());
            }
            "restart_sn" => {
                ctx.request_start("sn").unwrap();
                self.note(at, "> start(sn) — resurrects fb/tw off the GC queue".into());
            }
            other => self.note(at, format!("? unknown command {other}")),
        }
    }
}

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let mut desc = OrcaDescriptor::new("Figure7Orca");
    for name in ["fb", "tw", "fox", "msnbc", "sn", "all"] {
        desc = desc.app(tiny_app(name));
    }
    let service = OrcaService::submit(&mut world.kernel, desc, Box::new(Fig7::default()));
    let idx = world.add_controller(Box::new(service));

    let cmd = |world: &mut World, name: &str| {
        world
            .controller_mut::<OrcaService>(idx)
            .unwrap()
            .inject_user_event(name, Default::default());
    };

    // Phase 1: bring the whole graph up (roots at ~0, sn at +20, all at +80).
    world.run_for(SimDuration::from_secs(90));
    // Phase 2: starvation check, then orderly teardown with GC.
    cmd(&mut world, "cancel_fb"); // refused: feeds sn & all
    world.run_for(SimDuration::from_secs(1));
    cmd(&mut world, "cancel_sn");
    world.run_for(SimDuration::from_secs(5));
    cmd(&mut world, "cancel_all");
    world.run_for(SimDuration::from_secs(5));
    // Phase 3: resurrect sn before fb/tw hit their GC timeout.
    cmd(&mut world, "restart_sn");
    world.run_for(SimDuration::from_secs(30));

    println!("=== Figure 7: dependency-managed application set ===\n");
    println!("graph: sn <-(20s)- {{fb, tw}};  all <-(80s)- {{fb, tw, fox, msnbc}}");
    println!("GC flags: fox=non-collectable, others collectable (timeout 15s)\n");
    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<Fig7>().unwrap();
    for line in &logic.log {
        println!("{line}");
    }
    let mut remaining: Vec<String> = world
        .kernel
        .sam
        .jobs()
        .map(|j| j.app_name.clone())
        .collect();
    remaining.sort();
    println!("\nrunning at end: {remaining:?}");
    println!("(expected: fb, tw resurrected for sn; fox survives as non-collectable;");
    println!(" msnbc garbage-collected after its 15s timeout)");
}
