//! Figure 8 regeneration: unknown/known sentiment-cause ratio over metric
//! epochs. The cause distribution drifts mid-run ("antenna" complaints); the
//! orchestrator's measurement crosses the 1.0 actuation threshold, it
//! launches the model recomputation, and the ratio stabilizes below 1.0.
//!
//! Run with: `cargo run --release -p orca-bench --bin fig8`

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::sentiment::{sentiment_app, SentimentOrca, SentimentParams};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    // Poll every 3 s → one epoch ≈ 3 s. Drift at epoch ≈ 250 like the paper
    // (250 × 3 s = 750 s of simulated time); run to epoch ≈ 400.
    let poll = SimDuration::from_secs(3);
    let params = SentimentParams {
        drift_at_secs: 750.0,
        ..Default::default()
    };
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("SentimentOrca").app(sentiment_app(params)),
        Box::new(SentimentOrca::new(stores.clone(), poll)),
    );
    let idx = world.add_controller(Box::new(service));

    world.run_for(SimDuration::from_secs(1210)); // ≈ 400 epochs

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<SentimentOrca>().unwrap();

    println!("=== Figure 8: unknown-to-known sentiment cause ratio over epochs ===");
    println!("(drift injected at epoch ~250; actuation threshold 1.0)\n");
    println!(
        "{:>6} {:>9} {:>8} {:>8}  series",
        "epoch", "t(s)", "ratio", "model_v"
    );
    let mut triggered_at = None;
    for s in &logic.samples {
        if s.ratio > 1.0 && triggered_at.is_none() {
            triggered_at = Some(s.epoch);
        }
        if s.epoch % 5 != 0 && Some(s.epoch) != triggered_at {
            continue; // thin the printout
        }
        let bar_len = (s.ratio * 20.0).min(40.0) as usize;
        println!(
            "{:>6} {:>9.0} {:>8.3} {:>8}  |{}{}",
            s.epoch,
            s.at.as_secs_f64(),
            s.ratio,
            s.model_version,
            "#".repeat(bar_len),
            if s.ratio > 1.0 {
                "  << threshold crossed"
            } else {
                ""
            }
        );
    }
    println!(
        "\nthreshold first crossed at epoch {:?}; Hadoop jobs: launched {} / completed {}",
        triggered_at, logic.jobs_launched, logic.jobs_completed
    );
    println!(
        "final model: {:?} (version {})",
        stores.cause_model.snapshot().known_causes,
        stores.cause_model.snapshot().version
    );
    let last = logic.samples.last().unwrap();
    println!(
        "final ratio: {:.3} ({})",
        last.ratio,
        if last.ratio < 1.0 {
            "stabilized below threshold — matches the paper"
        } else {
            "NOT recovered"
        }
    );
}
