//! Figure 10 regeneration: the dynamic-composition application graph over
//! time — C1/C2 base applications plus on-demand C3 segmentation jobs that
//! come and go, driven by profile-count thresholds and final punctuation.
//!
//! Run with: `cargo run --release -p orca-bench --bin fig10`

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::social::{composition_descriptor, CompositionOrca};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, Kernel, RuntimeConfig, World};
use sps_sim::SimDuration;

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(4),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    let descriptor: OrcaDescriptor = composition_descriptor();
    // The paper's threshold: 1500 newly discovered attributed profiles.
    let service = OrcaService::submit(
        &mut world.kernel,
        descriptor,
        Box::new(CompositionOrca::new(1500)),
    );
    let idx = world.add_controller(Box::new(service));

    // Sample the composition size over time while running.
    let mut size_series: Vec<(f64, usize, usize)> = Vec::new();
    for _ in 0..48 {
        world.run_for(SimDuration::from_secs(5));
        let jobs = world.kernel.sam.running_jobs().len();
        let c3 = world
            .kernel
            .sam
            .jobs()
            .filter(|j| j.app_name == "AttributeAggregator")
            .count();
        size_series.push((world.now().as_secs_f64(), jobs, c3));
    }

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<CompositionOrca>().unwrap();

    println!("=== Figure 10: dynamic application composition over time ===\n");
    println!("base: 2×C1 readers + 3×C2 query apps; C3 spawned per 1500 new profiles\n");
    println!("timeline of job events:");
    println!("{:>8}  {:<3} {:<24} config", "t(s)", "+/-", "application");
    for e in &logic.timeline {
        println!(
            "{:>8.1}  {:<3} {:<24} {}",
            e.at.as_secs_f64(),
            if e.submitted { "+" } else { "-" },
            e.app_name,
            e.config_id.as_deref().unwrap_or("-"),
        );
    }

    println!("\ncomposition size over time (expansion/contraction):");
    println!("{:>8} {:>10} {:>8}  graph", "t(s)", "jobs", "C3 jobs");
    for (t, jobs, c3) in &size_series {
        println!("{t:>8.0} {jobs:>10} {c3:>8}  |{}", "#".repeat(*jobs));
    }

    println!(
        "\nprofile store: {} distinct users (gender {}, age {}, location {})",
        stores.profile_store.len(),
        stores.profile_store.count_with_attribute("gender"),
        stores.profile_store.count_with_attribute("age"),
        stores.profile_store.count_with_attribute("location"),
    );
    println!(
        "C3 segmentation jobs launched: {}, completed & cancelled: {}",
        logic.c3_launched, logic.c3_completed
    );
    assert!(logic.c3_launched >= 2);
    assert!(logic.c3_completed >= 1);
    println!("\nshape check passed: base apps persist; C3 jobs expand and contract on demand");
}
