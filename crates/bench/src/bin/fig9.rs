//! Figure 9 regeneration: Trend Calculator replica output around a PE crash.
//!
//! Prints the per-replica output series (average price + window-full flag
//! for one symbol) before the crash (identical outputs, Figure 9a), right
//! after the failover (failed replica silent then incorrect, Figure 9b), and
//! after the 600-second window refills.
//!
//! Run with: `cargo run --release -p orca-bench --bin fig9`

use orca::{OrcaDescriptor, OrcaService};
use orca_apps::trend::{trend_app, TrendOrca, TrendParams};
use orca_apps::SharedStores;
use sps_runtime::{Cluster, JobId, Kernel, RuntimeConfig, World};
use sps_sim::SimTime;

/// Latest (avg, full) for a symbol from a replica's sink, if any.
fn latest(world: &World, job: JobId, sym: &str) -> Option<(f64, bool, u64)> {
    world
        .kernel
        .tap(job, "graph")?
        .iter()
        .rev()
        .find(|t| t.get_str("group") == Some(sym))
        .map(|t| {
            (
                t.get_f64("avg").unwrap(),
                t.get_bool("full").unwrap(),
                t.get("ts").and_then(|v| v.as_timestamp()).unwrap_or(0),
            )
        })
}

fn main() {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        RuntimeConfig::default(),
    );
    let mut world = World::new(kernel);
    // The paper's 600-second sliding window.
    let params = TrendParams {
        window_secs: 600.0,
        ..Default::default()
    };
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("TrendOrca").app(trend_app(params)),
        Box::new(TrendOrca::new(3)),
    );
    let idx = world.add_controller(Box::new(service));

    let sym = "s:SYM0"; // group key rendering of SYM0
    let crash_at = SimTime::from_secs(700);
    let mut rows: Vec<String> = Vec::new();
    let mut sample = |world: &World, label: &str| {
        let svc = world.controller::<OrcaService>(idx).unwrap();
        let logic = svc.logic::<TrendOrca>().unwrap();
        let r0 = latest(world, logic.replicas[0].job, sym);
        let r1 = latest(world, logic.replicas[1].job, sym);
        let fmt = |v: Option<(f64, bool, u64)>| match v {
            None => format!("{:>10} {:>5} {:>8}", "-", "-", "-"),
            Some((avg, full, ts)) => format!("{avg:>10.3} {full:>5} {:>8.0}", ts as f64 / 1000.0),
        };
        rows.push(format!(
            "{:>7.0} {:>6} | {} | {} | {}",
            world.now().as_secs_f64(),
            svc.status("active").unwrap_or("?"),
            fmt(r0),
            fmt(r1),
            label,
        ));
    };

    // Warm up until windows are full, sampling along the way.
    for t in [100u64, 300, 600, 650, 699] {
        world.run_until(SimTime::from_secs(t));
        sample(
            &world,
            if t < 600 {
                "filling windows"
            } else {
                "healthy (Fig 9a)"
            },
        );
    }

    // Crash the active replica's calculator PE.
    let active_job = {
        let svc = world.controller::<OrcaService>(idx).unwrap();
        svc.logic::<TrendOrca>().unwrap().active_job()
    };
    let victim = world.kernel.pe_id_of(active_job, 1).unwrap();
    world.run_until(crash_at);
    world.kernel.kill_pe(victim).unwrap();

    for t in [702u64, 710, 730, 800, 1000, 1305, 1320] {
        world.run_until(SimTime::from_secs(t));
        let label = match t {
            702 | 710 => "after crash+failover (Fig 9b)",
            730 | 800 | 1000 => "restarted replica refilling (incorrect output)",
            _ => "window refilled: replicas agree again",
        };
        sample(&world, label);
    }

    println!("=== Figure 9: replica output around a PE crash (symbol SYM0) ===\n");
    println!("crash of replica 0's calculator PE injected at t=700s; window = 600s\n");
    println!(
        "{:>7} {:>6} | {:>10} {:>5} {:>8} | {:>10} {:>5} {:>8} |",
        "t(s)", "active", "r0 avg", "full", "r0 ts", "r1 avg", "full", "r1 ts"
    );
    for row in &rows {
        println!("{row}");
    }

    let svc = world.controller::<OrcaService>(idx).unwrap();
    let logic = svc.logic::<TrendOrca>().unwrap();
    println!("\nfailovers: {:?}", logic.failovers);
    println!("final active replica: {}", logic.active);

    // Shape assertions mirroring the paper's narrative.
    let r0 = latest(&world, logic.replicas[0].job, sym).unwrap();
    let r1 = latest(&world, logic.replicas[1].job, sym).unwrap();
    assert!(
        r0.1 && r1.1,
        "both replicas should be full again at the end"
    );
    assert_eq!(logic.active, 1, "failover must have moved the active role");
    println!("\nshape check passed: gap → incorrect (non-full) output → recovery after 600s");
}
