//! Seeded fault-injection campaign driver.
//!
//! ```text
//! cargo run --release -p orca_bench --bin campaign -- --plans 200 --seed 7
//! cargo run --release -p orca_bench --bin campaign -- --app trend --plans 50
//! cargo run --release -p orca_bench --bin campaign -- --plans 100 --jobs 8
//! cargo run --release -p orca_bench --bin campaign -- --broken-oracle convergence
//! cargo run --release -p orca_bench --bin campaign -- --checkpoint-interval 10
//! cargo run --release -p orca_bench --bin campaign -- --checkpoint-interval 10 --lossy-restore
//! cargo run --release -p orca_bench --bin campaign -- \
//!     --checkpoint-interval 10 --timing --bench-json BENCH_campaign.json
//! HARNESS_APP=trend HARNESS_SEED=123 HARNESS_PLAN=6500:kp:0:1 \
//!     cargo run --release -p orca_bench --bin campaign -- --replay
//! ```
//!
//! `--jobs N` (default: `HARNESS_JOBS`, else 1) shards plan evaluation and
//! failure shrinking across N worker threads; the report is folded in
//! plan-index order, so stdout is byte-identical for any `--jobs` value.
//!
//! `--checkpoint-interval N` enables PE checkpointing every N scheduling
//! quanta and activates the `StatePreservation` oracle; reproducer lines
//! then carry `HARNESS_CKPT=N` (and `HARNESS_LOSSY=1` under
//! `--lossy-restore`, `HARNESS_UB=1` under `--upstream-backup on`) so
//! replays run under the same policy.
//!
//! `--upstream-backup on` additionally buffers in-flight deliveries at the
//! sender and replays the post-checkpoint gap into restored PEs, making
//! recovery of checkpointable jobs exactly-once — the `StatePreservation`
//! oracle then asserts tap-count *equality* (not bounds) on each scenario's
//! structurally-exact taps. Transport counters (buffered / replayed /
//! suppressed / trimmed / peak) join the report and the `--timing` line.
//!
//! Fault-free baselines are memoized process-wide in a `BaselineCache`
//! keyed by `(scenario, seed, horizon floor, checkpoint policy)`; the
//! determinism replay, the shrink walk, repeated campaigns, and `--replay`
//! all hit entries instead of re-simulating baseline worlds (`--replay`
//! computes its baseline exactly once; the in-replay determinism re-run is
//! a cache hit). `--baseline-cache off` recomputes at every point of use —
//! the comparison arm `--bench-json` measures. The cache cannot change any
//! report: entries are pure functions of their key.
//!
//! Stdout is bit-identical across runs with the same arguments (timings go
//! to stderr), so campaign output itself can be diffed for determinism.
//! `--timing` additionally prints per-app wall-clock, plans/sec, and
//! baseline cache hit/miss lines to stdout — deliberately opt-in, so the
//! default stream stays byte-stable (wall-clock and, under `--jobs > 1`,
//! counter interleavings are nondeterministic).
//!
//! `--bench-json PATH` runs each app's campaign three times — cache
//! disabled, cold cache, warm cache (repeat on the same cache) — asserts
//! the three reports are byte-identical, and writes per-app wall-clock,
//! plans/sec, hit rates, and the warm-vs-off speedup as a JSON artifact
//! (the CI perf-trajectory record).

use orca_harness::{
    default_oracles, evaluate, run_campaign_cached, scenario, BaselineCache, BaselineSource,
    CampaignConfig, CampaignReport, CheckpointPolicy, FaultPlan, Scenario,
};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    plans: usize,
    seed: u64,
    app: Option<String>,
    broken_convergence: bool,
    check_determinism: bool,
    replay: bool,
    checkpoint_interval: u32,
    lossy_restore: bool,
    upstream_backup: bool,
    jobs: usize,
    timing: bool,
    baseline_cache: bool,
    bench_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plans: 50,
        seed: 7,
        app: None,
        broken_convergence: false,
        check_determinism: true,
        replay: false,
        checkpoint_interval: 0,
        lossy_restore: false,
        upstream_backup: false,
        jobs: 0,
        timing: false,
        baseline_cache: true,
        bench_json: None,
    };
    let mut jobs: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--plans" => args.plans = value("--plans")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => jobs = Some(value("--jobs")?.parse().map_err(|e| format!("{e}"))?),
            "--timing" => args.timing = true,
            "--app" => args.app = Some(value("--app")?),
            "--baseline-cache" => {
                args.baseline_cache = match value("--baseline-cache")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--baseline-cache {other}: expected on|off")),
                };
            }
            "--bench-json" => args.bench_json = Some(value("--bench-json")?),
            "--broken-oracle" => {
                let which = value("--broken-oracle")?;
                if which != "convergence" {
                    return Err(format!("unknown oracle `{which}` (try: convergence)"));
                }
                args.broken_convergence = true;
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--lossy-restore" => args.lossy_restore = true,
            "--upstream-backup" => {
                args.upstream_backup = match value("--upstream-backup")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--upstream-backup {other}: expected on|off")),
                };
            }
            "--no-determinism" => args.check_determinism = false,
            "--replay" => args.replay = true,
            "--help" | "-h" => {
                return Err(
                    "usage: campaign [--plans N] [--seed S] [--app NAME] [--jobs N] \
                     [--broken-oracle convergence] [--checkpoint-interval QUANTA] \
                     [--lossy-restore] [--upstream-backup on|off] [--no-determinism] \
                     [--timing] [--baseline-cache on|off] [--bench-json PATH] [--replay]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.lossy_restore && args.checkpoint_interval == 0 {
        return Err("--lossy-restore requires --checkpoint-interval".to_string());
    }
    if args.upstream_backup && args.checkpoint_interval == 0 {
        return Err("--upstream-backup on requires --checkpoint-interval".to_string());
    }
    if args.bench_json.is_some() && !args.baseline_cache {
        // The bench mode owns its cache arms (off, cold, warm); silently
        // ignoring the flag would make a measurement run lie.
        return Err("--bench-json runs its own cache-off/cold/warm arms; \
                    drop --baseline-cache off"
            .to_string());
    }
    // `HARNESS_JOBS` supplies the default so reproducer stanzas and CI job
    // environments can set parallelism without editing the command line; an
    // explicit `--jobs` wins, and only then is the env var consulted (a
    // malformed value must not sink a command that overrode it anyway).
    args.jobs = match jobs {
        Some(n) => n,
        None => match std::env::var("HARNESS_JOBS") {
            Ok(v) => v
                .parse::<usize>()
                .map_err(|e| format!("bad HARNESS_JOBS: {e}"))?,
            Err(_) => 1,
        },
    };
    if args.jobs == 0 {
        return Err("--jobs / HARNESS_JOBS must be >= 1".to_string());
    }
    Ok(args)
}

fn scenarios_for(app: &Option<String>) -> Result<Vec<Scenario>, String> {
    match app {
        None => Ok(scenario::all()),
        Some(name) => scenario::by_name(name)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown app `{name}` (try: live, sentiment, social, trend)")),
    }
}

fn campaign_config(args: &Args) -> CampaignConfig {
    CampaignConfig {
        plans: args.plans,
        seed: args.seed,
        check_determinism: args.check_determinism,
        broken_convergence: args.broken_convergence,
        checkpoint: CheckpointPolicy {
            every_quanta: args.checkpoint_interval,
            lossy_restore: args.lossy_restore,
            upstream_backup: args.upstream_backup,
            ..CheckpointPolicy::default()
        },
        jobs: args.jobs,
        ..Default::default()
    }
}

fn cache_for(args: &Args) -> BaselineCache {
    if args.baseline_cache {
        BaselineCache::new()
    } else {
        BaselineCache::disabled()
    }
}

/// Replays one plan from `HARNESS_APP` / `HARNESS_SEED` / `HARNESS_PLAN`
/// (plus optional `HARNESS_CKPT` / `HARNESS_LOSSY` / `HARNESS_UB` policy
/// capture).
fn replay(args: &Args) -> Result<ExitCode, String> {
    let app = std::env::var("HARNESS_APP")
        .ok()
        .or_else(|| args.app.clone())
        .ok_or("replay needs HARNESS_APP or --app")?;
    let seed: u64 = std::env::var("HARNESS_SEED")
        .map_err(|_| "replay needs HARNESS_SEED")?
        .parse()
        .map_err(|e| format!("bad HARNESS_SEED: {e}"))?;
    let plan = FaultPlan::decode(
        &std::env::var("HARNESS_PLAN").map_err(|_| "replay needs HARNESS_PLAN")?,
    )?;
    let checkpoint_interval = match std::env::var("HARNESS_CKPT") {
        Ok(v) => v.parse().map_err(|e| format!("bad HARNESS_CKPT: {e}"))?,
        Err(_) => args.checkpoint_interval,
    };
    let lossy = std::env::var("HARNESS_LOSSY").is_ok_and(|v| v == "1") || args.lossy_restore;
    let ub = std::env::var("HARNESS_UB").is_ok_and(|v| v == "1") || args.upstream_backup;
    let opts = CheckpointPolicy {
        every_quanta: checkpoint_interval,
        lossy_restore: lossy,
        upstream_backup: ub,
        ..CheckpointPolicy::default()
    };
    let sc = scenario::by_name(&app).ok_or_else(|| format!("unknown app `{app}`"))?;
    let oracles = default_oracles(args.broken_convergence, opts.enabled());
    // The baseline is fetched through the cache at the point of use: one
    // computation for the whole replay (the determinism re-run hits the
    // entry the first run populated).
    let cache = cache_for(args);
    let (digest, violations) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        args.check_determinism,
        opts,
        BaselineSource::new(&cache, plan.horizon()),
    );
    println!(
        "replay app={} seed={} ckpt={} plan={} digest={:016x}",
        sc.name,
        seed,
        checkpoint_interval,
        plan.encode(),
        digest
    );
    if violations.is_empty() {
        println!("all oracles passed");
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("oracle {} violated: {}", v.oracle, v.message);
        }
        Ok(ExitCode::FAILURE)
    }
}

fn print_report(args: &Args, report: &CampaignReport) {
    // Note: the campaign line carries no jobs= field on purpose — the
    // report is independent of --jobs, and the stdout of a --jobs 8 run
    // must diff clean against a --jobs 1 run.
    println!(
        "campaign app={} plans={} seed={} ckpt={} digest={:016x} failures={}",
        report.scenario,
        report.plans_run,
        args.seed,
        args.checkpoint_interval,
        report.digest,
        report.plans_failed
    );
    // Deterministic (folded in plan-index order from primary runs only), so
    // it diffs clean across --jobs; omitted entirely when backup is off to
    // keep legacy output byte-identical.
    if report.ub.any() {
        println!(
            "  upstream-backup buffered={} replayed={} suppressed={} trimmed={} peak_buffered={}",
            report.ub.buffered,
            report.ub.replayed,
            report.ub.suppressed,
            report.ub.trimmed,
            report.ub.peak_buffered
        );
    }
    for f in &report.failures {
        println!(
            "  FAIL seed={} original={} shrunk={}",
            f.plan_seed,
            f.original.encode(),
            f.shrunk.encode()
        );
        for v in &f.violations {
            println!("    oracle {}: {}", v.oracle, v.message);
        }
        println!(
            "  reproduce: {} cargo run --release -p orca_bench --bin campaign -- --replay{}",
            f.reproducer,
            if args.broken_convergence {
                " --broken-oracle convergence"
            } else {
                ""
            }
        );
    }
    if report.failures_truncated > 0 {
        println!(
            "  failures_truncated={}: that many more plans failed beyond the \
             shrink cap; re-run with a higher max_failures to shrink them",
            report.failures_truncated
        );
    }
}

/// One timed campaign over `sc` against `cache`, returning the report, the
/// wall-clock, and this run's baseline-counter deltas.
fn timed_run(
    sc: &Scenario,
    cfg: &CampaignConfig,
    cache: &BaselineCache,
) -> (CampaignReport, f64, orca_harness::CacheStats) {
    let before = cache.stats();
    let start = Instant::now();
    let report = run_campaign_cached(sc, cfg, cache);
    let wall = start.elapsed().as_secs_f64();
    (report, wall, cache.stats().since(before))
}

fn timing_line(
    app: &str,
    jobs: usize,
    phase: &str,
    wall: f64,
    plans: usize,
    stats: orca_harness::CacheStats,
    ub: orca_harness::UbStats,
) -> String {
    format!(
        "timing app={app} jobs={jobs} phase={phase} wall_s={wall:.2} plans_per_sec={:.2} \
         baseline_hits={} baseline_misses={} baseline_hit_rate={:.2} \
         ub_buffered={} ub_replayed={} ub_suppressed={} ub_trimmed={} ub_peak={}",
        plans as f64 / wall.max(f64::EPSILON),
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        ub.buffered,
        ub.replayed,
        ub.suppressed,
        ub.trimmed,
        ub.peak_buffered,
    )
}

/// `--bench-json`: per app, measure cache-off vs cold-cache vs warm-cache
/// (second campaign on the same cache — the repeated-campaign / replay
/// regime the memo exists for), enforce byte-identical reports across all
/// three arms, and record the numbers as a JSON artifact.
fn bench(args: &Args, scenarios: &[Scenario], path: &str) -> Result<ExitCode, String> {
    let cfg = campaign_config(args);
    let mut failed = false;
    let mut entries = Vec::new();
    for sc in scenarios {
        eprintln!("[{}] bench: cache off…", sc.name);
        let off_cache = BaselineCache::disabled();
        let (report_off, wall_off, stats_off) = timed_run(sc, &cfg, &off_cache);
        eprintln!("[{}] bench: cache cold…", sc.name);
        let cache = BaselineCache::new();
        let (report_cold, wall_cold, stats_cold) = timed_run(sc, &cfg, &cache);
        eprintln!("[{}] bench: cache warm…", sc.name);
        let (report_warm, wall_warm, stats_warm) = timed_run(sc, &cfg, &cache);

        // The cache guarantee, enforced at measurement time: all three arms
        // produce byte-identical reports.
        let rendered = report_off.render();
        if rendered != report_cold.render() || rendered != report_warm.render() {
            return Err(format!(
                "[{}] campaign report depends on the baseline cache — refusing to bench",
                sc.name
            ));
        }
        print_report(args, &report_off);
        if args.timing {
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "cache_off",
                    wall_off,
                    cfg.plans,
                    stats_off,
                    report_off.ub
                )
            );
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "cache_cold",
                    wall_cold,
                    cfg.plans,
                    stats_cold,
                    report_cold.ub
                )
            );
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "cache_warm",
                    wall_warm,
                    cfg.plans,
                    stats_warm,
                    report_warm.ub
                )
            );
        }
        failed |= report_off.plans_failed > 0;
        entries.push(format!(
            "    {{\n      \"app\": \"{}\",\n      \"wall_s_cache_off\": {:.3},\n      \
             \"wall_s_cache_cold\": {:.3},\n      \"wall_s_cache_warm\": {:.3},\n      \
             \"speedup_warm_vs_off\": {:.2},\n      \"plans_per_sec_warm\": {:.2},\n      \
             \"baseline_hits_warm\": {},\n      \"baseline_misses_warm\": {},\n      \
             \"baseline_hit_rate_warm\": {:.3}\n    }}",
            sc.name,
            wall_off,
            wall_cold,
            wall_warm,
            wall_off / wall_warm.max(f64::EPSILON),
            cfg.plans as f64 / wall_warm.max(f64::EPSILON),
            stats_warm.hits,
            stats_warm.misses,
            stats_warm.hit_rate(),
        ));
    }
    let json = format!(
        "{{\n  \"plans\": {},\n  \"seed\": {},\n  \"jobs\": {},\n  \
         \"checkpoint_interval\": {},\n  \"determinism_replay\": {},\n  \"apps\": [\n{}\n  ]\n}}\n",
        args.plans,
        args.seed,
        args.jobs,
        args.checkpoint_interval,
        args.check_determinism,
        entries.join(",\n")
    );
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("bench results written to {path}");
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.replay {
        return match replay(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let scenarios = match scenarios_for(&args.app) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.bench_json {
        return match bench(&args, &scenarios, path) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let cfg = campaign_config(&args);
    // One cache for the whole invocation: multi-app campaigns keep per-app
    // entries apart by key, and any repeated evaluation (determinism
    // replays, shrink walks) hits instead of re-simulating.
    let cache = cache_for(&args);
    let mut failed = false;
    for sc in &scenarios {
        let (report, wall, stats) = timed_run(sc, &cfg, &cache);
        eprintln!("[{}] {} plans in {:.1}s", sc.name, report.plans_run, wall);
        print_report(&args, &report);
        if args.timing {
            // Wall-clock is nondeterministic, hence flag-gated (see module
            // docs). plans/sec is the CI matrix's throughput headline; the
            // baseline hit/miss counters expose whether memoization is
            // actually engaging (hits ≈ misses under the determinism
            // replay, all-hits on a warm cache).
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "campaign",
                    wall,
                    report.plans_run,
                    stats,
                    report.ub
                )
            );
        }
        failed |= report.plans_failed > 0;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
