//! Seeded fault-injection campaign driver.
//!
//! ```text
//! cargo run --release -p orca_bench --bin campaign -- --plans 200 --seed 7
//! cargo run --release -p orca_bench --bin campaign -- --app trend --plans 50
//! cargo run --release -p orca_bench --bin campaign -- --plans 100 --jobs 8
//! cargo run --release -p orca_bench --bin campaign -- --broken-oracle convergence
//! cargo run --release -p orca_bench --bin campaign -- --checkpoint-interval 10
//! cargo run --release -p orca_bench --bin campaign -- --checkpoint-interval 10 --lossy-restore
//! cargo run --release -p orca_bench --bin campaign -- \
//!     --checkpoint-interval 10 --timing --bench-json BENCH_campaign.json
//! HARNESS_APP=trend HARNESS_SEED=123 HARNESS_PLAN=6500:kp:0:1 \
//!     cargo run --release -p orca_bench --bin campaign -- --replay
//! ```
//!
//! `--jobs N` (default: `HARNESS_JOBS`, else 1) shards plan evaluation and
//! failure shrinking across N worker threads; the report is folded in
//! plan-index order, so stdout is byte-identical for any `--jobs` value.
//!
//! `--checkpoint-interval N` enables PE checkpointing every N scheduling
//! quanta and activates the `StatePreservation` oracle; reproducer lines
//! then carry `HARNESS_CKPT=N` (and `HARNESS_LOSSY=1` under
//! `--lossy-restore`, `HARNESS_UB=1` under `--upstream-backup on`,
//! `HARNESS_CKPT_LAT=MS` under `--ckpt-write-latency`,
//! `HARNESS_CKPT_BUDGET=BYTES` under `--ckpt-budget`) so replays run under
//! the same policy. `--ckpt-write-latency MS` adds a fixed per-snapshot
//! write latency (commits — and upstream-backup trims — land that much sim
//! time after the snapshot is taken); `--ckpt-budget BYTES` bounds total
//! checkpoint storage, turning on sealed-generation retention and eviction.
//! During `--replay`, policy knobs may come from the environment capture or
//! from flags, but where both specify a knob they must agree —
//! contradictions are rejected with an error naming both sides.
//!
//! `--upstream-backup on` additionally buffers in-flight deliveries at the
//! sender and replays the post-checkpoint gap into restored PEs, making
//! recovery of checkpointable jobs exactly-once — the `StatePreservation`
//! oracle then asserts tap-count *equality* (not bounds) on each scenario's
//! structurally-exact taps. Transport counters (buffered / replayed /
//! suppressed / trimmed / peak) join the report and the `--timing` line.
//!
//! Fault-free baselines are memoized process-wide in a `BaselineCache`
//! keyed by `(scenario, seed, horizon floor, checkpoint policy)`; the
//! determinism replay, the shrink walk, repeated campaigns, and `--replay`
//! all hit entries instead of re-simulating baseline worlds (`--replay`
//! computes its baseline exactly once; the in-replay determinism re-run is
//! a cache hit). `--baseline-cache off` recomputes at every point of use —
//! the comparison arm `--bench-json` measures. The cache cannot change any
//! report: entries are pure functions of their key.
//!
//! Stdout is bit-identical across runs with the same arguments (timings go
//! to stderr), so campaign output itself can be diffed for determinism.
//! `--timing` additionally prints per-app wall-clock, plans/sec, and
//! baseline cache hit/miss lines to stdout — deliberately opt-in, so the
//! default stream stays byte-stable (wall-clock and, under `--jobs > 1`,
//! counter interleavings are nondeterministic).
//!
//! `--bench-json PATH` runs each app's campaign three times — cache
//! disabled, cold cache, warm cache (repeat on the same cache) — asserts
//! the three reports are byte-identical, and writes per-app wall-clock,
//! plans/sec, hit rates, and the warm-vs-off speedup as a JSON artifact
//! (the CI perf-trajectory record).

use orca_harness::{
    default_oracles, evaluate, run_campaign_cached, scenario, BaselineCache, BaselineSource,
    CampaignConfig, CampaignReport, CheckpointPolicy, FaultPlan, MetastoreKind, Scenario,
    StorageModel, WorldPolicy,
};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    plans: usize,
    seed: u64,
    app: Option<String>,
    broken_convergence: bool,
    check_determinism: bool,
    replay: bool,
    /// `Some` only when `--checkpoint-interval` was given on the command
    /// line — `--replay` must distinguish "not specified" from an explicit
    /// value to detect contradictions with `HARNESS_CKPT`.
    checkpoint_interval: Option<u32>,
    lossy_restore: bool,
    upstream_backup: Option<bool>,
    ckpt_write_latency: Option<u64>,
    ckpt_budget: Option<usize>,
    control_faults: Option<bool>,
    metastore: Option<MetastoreKind>,
    jobs: usize,
    timing: bool,
    baseline_cache: bool,
    bench_json: Option<String>,
}

impl Args {
    /// The checkpoint interval in effect for campaign (non-replay) runs.
    fn interval(&self) -> u32 {
        self.checkpoint_interval.unwrap_or(0)
    }

    /// Whether campaign (non-replay) runs inject control-plane faults.
    fn control(&self) -> bool {
        self.control_faults == Some(true)
    }

    /// The metastore in effect for campaign (non-replay) runs: an explicit
    /// `--metastore` wins; otherwise control-fault campaigns default to the
    /// replicated store (recovery should exercise log replay) and everything
    /// else stays on the zero-cost in-memory store.
    fn metastore_kind(&self) -> MetastoreKind {
        match self.metastore {
            Some(kind) => kind,
            None if self.control() => MetastoreKind::Replicated,
            None => MetastoreKind::Memory,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plans: 50,
        seed: 7,
        app: None,
        broken_convergence: false,
        check_determinism: true,
        replay: false,
        checkpoint_interval: None,
        lossy_restore: false,
        upstream_backup: None,
        ckpt_write_latency: None,
        ckpt_budget: None,
        control_faults: None,
        metastore: None,
        jobs: 0,
        timing: false,
        baseline_cache: true,
        bench_json: None,
    };
    let mut jobs: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--plans" => args.plans = value("--plans")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => jobs = Some(value("--jobs")?.parse().map_err(|e| format!("{e}"))?),
            "--timing" => args.timing = true,
            "--app" => args.app = Some(value("--app")?),
            "--baseline-cache" => {
                args.baseline_cache = match value("--baseline-cache")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--baseline-cache {other}: expected on|off")),
                };
            }
            "--bench-json" => args.bench_json = Some(value("--bench-json")?),
            "--broken-oracle" => {
                let which = value("--broken-oracle")?;
                if which != "convergence" {
                    return Err(format!("unknown oracle `{which}` (try: convergence)"));
                }
                args.broken_convergence = true;
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = Some(
                    value("--checkpoint-interval")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--lossy-restore" => args.lossy_restore = true,
            "--upstream-backup" => {
                args.upstream_backup = Some(match value("--upstream-backup")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--upstream-backup {other}: expected on|off")),
                });
            }
            "--ckpt-write-latency" => {
                args.ckpt_write_latency = Some(
                    value("--ckpt-write-latency")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--ckpt-budget" => {
                args.ckpt_budget = Some(
                    value("--ckpt-budget")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--control-faults" => {
                args.control_faults = Some(match value("--control-faults")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--control-faults {other}: expected on|off")),
                });
            }
            "--metastore" => {
                args.metastore = Some(
                    value("--metastore")?
                        .parse()
                        .map_err(|e| format!("bad --metastore: {e}"))?,
                );
            }
            "--no-determinism" => args.check_determinism = false,
            "--replay" => args.replay = true,
            "--help" | "-h" => {
                return Err(
                    "usage: campaign [--plans N] [--seed S] [--app NAME] [--jobs N] \
                     [--broken-oracle convergence] [--checkpoint-interval QUANTA] \
                     [--lossy-restore] [--upstream-backup on|off] \
                     [--ckpt-write-latency MS] [--ckpt-budget BYTES] \
                     [--control-faults on|off] [--metastore memory|replicated] \
                     [--no-determinism] [--timing] [--baseline-cache on|off] \
                     [--bench-json PATH] [--replay]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // Replay defers these dependency checks to policy resolution, where the
    // interval may arrive through `HARNESS_CKPT` instead of a flag.
    if !args.replay {
        if args.lossy_restore && args.interval() == 0 {
            return Err("--lossy-restore requires --checkpoint-interval".to_string());
        }
        if args.upstream_backup == Some(true) && args.interval() == 0 {
            return Err("--upstream-backup on requires --checkpoint-interval".to_string());
        }
        if args.ckpt_write_latency.unwrap_or(0) != 0 && args.interval() == 0 {
            return Err("--ckpt-write-latency requires --checkpoint-interval".to_string());
        }
        if args.ckpt_budget.unwrap_or(0) != 0 && args.interval() == 0 {
            return Err("--ckpt-budget requires --checkpoint-interval".to_string());
        }
    }
    if args.bench_json.is_some() && !args.baseline_cache {
        // The bench mode owns its cache arms (off, cold, warm); silently
        // ignoring the flag would make a measurement run lie.
        return Err("--bench-json runs its own cache-off/cold/warm arms; \
                    drop --baseline-cache off"
            .to_string());
    }
    // `HARNESS_JOBS` supplies the default so reproducer stanzas and CI job
    // environments can set parallelism without editing the command line; an
    // explicit `--jobs` wins, and only then is the env var consulted (a
    // malformed value must not sink a command that overrode it anyway).
    args.jobs = match jobs {
        Some(n) => n,
        None => match std::env::var("HARNESS_JOBS") {
            Ok(v) => v
                .parse::<usize>()
                .map_err(|e| format!("bad HARNESS_JOBS: {e}"))?,
            Err(_) => 1,
        },
    };
    if args.jobs == 0 {
        return Err("--jobs / HARNESS_JOBS must be >= 1".to_string());
    }
    Ok(args)
}

fn scenarios_for(app: &Option<String>) -> Result<Vec<Scenario>, String> {
    match app {
        None => Ok(scenario::all()),
        Some(name) => scenario::by_name(name)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown app `{name}` (try: live, sentiment, social, trend)")),
    }
}

fn campaign_config(args: &Args) -> CampaignConfig {
    CampaignConfig {
        plans: args.plans,
        seed: args.seed,
        check_determinism: args.check_determinism,
        broken_convergence: args.broken_convergence,
        checkpoint: CheckpointPolicy::every(args.interval())
            .lossy(args.lossy_restore)
            .upstream_backup(args.upstream_backup == Some(true))
            .storage(
                StorageModel::default()
                    .with_write(args.ckpt_write_latency.unwrap_or(0), 0)
                    .with_budget(args.ckpt_budget.unwrap_or(0)),
            ),
        metastore: args.metastore_kind(),
        control_faults: args.control(),
        jobs: args.jobs,
        ..Default::default()
    }
}

fn cache_for(args: &Args) -> BaselineCache {
    if args.baseline_cache {
        BaselineCache::new()
    } else {
        BaselineCache::disabled()
    }
}

/// One side's view of the replay checkpoint policy — either the `HARNESS_*`
/// environment capture or the explicit command-line flags. `None` means
/// "that side did not specify the knob".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct PolicySpec {
    interval: Option<u32>,
    lossy: Option<bool>,
    ub: Option<bool>,
    write_latency: Option<u64>,
    budget: Option<usize>,
    ctrl: Option<bool>,
    metastore: Option<MetastoreKind>,
}

/// Strictly parses one `HARNESS_*` env var, erroring on malformed values
/// instead of silently treating them as unset.
fn env_parse<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(v) => v.parse().map(Some).map_err(|e| format!("bad {name}: {e}")),
        Err(_) => Ok(None),
    }
}

/// Strict boolean env var: exactly `"0"` or `"1"`.
fn env_bool(name: &str) -> Result<Option<bool>, String> {
    match std::env::var(name) {
        Ok(v) => match v.as_str() {
            "1" => Ok(Some(true)),
            "0" => Ok(Some(false)),
            other => Err(format!("bad {name}: `{other}` (expected 0 or 1)")),
        },
        Err(_) => Ok(None),
    }
}

fn env_spec() -> Result<PolicySpec, String> {
    Ok(PolicySpec {
        interval: env_parse("HARNESS_CKPT")?,
        lossy: env_bool("HARNESS_LOSSY")?,
        ub: env_bool("HARNESS_UB")?,
        write_latency: env_parse("HARNESS_CKPT_LAT")?,
        budget: env_parse("HARNESS_CKPT_BUDGET")?,
        ctrl: env_bool("HARNESS_CTRL")?,
        metastore: env_parse("HARNESS_META")?,
    })
}

fn flags_spec(args: &Args) -> PolicySpec {
    PolicySpec {
        interval: args.checkpoint_interval,
        // The flag can only assert "on"; absence is "unspecified", so a
        // reproducer's `HARNESS_LOSSY=1` never conflicts with a bare replay.
        lossy: args.lossy_restore.then_some(true),
        ub: args.upstream_backup,
        write_latency: args.ckpt_write_latency,
        budget: args.ckpt_budget,
        ctrl: args.control_faults,
        metastore: args.metastore,
    }
}

/// One knob of [`resolve_policy`]: when both the environment and the flags
/// specify it, they must agree — a replay that silently preferred one side
/// would reproduce a different policy than the operator asked for.
fn pick<T: Copy + PartialEq + std::fmt::Display>(
    env_name: &str,
    flag_name: &str,
    env: Option<T>,
    flag: Option<T>,
    default: T,
) -> Result<T, String> {
    match (env, flag) {
        (Some(e), Some(f)) if e != f => Err(format!(
            "{env_name}={e} contradicts {flag_name} {f}; drop one side"
        )),
        (Some(e), _) => Ok(e),
        (None, Some(f)) => Ok(f),
        (None, None) => Ok(default),
    }
}

/// Merges the environment capture and the command-line flags into one
/// checkpoint policy, rejecting contradictions and dependent knobs whose
/// resolved interval leaves checkpointing disabled.
fn resolve_policy(env: PolicySpec, flags: PolicySpec) -> Result<CheckpointPolicy, String> {
    let interval = pick(
        "HARNESS_CKPT",
        "--checkpoint-interval",
        env.interval,
        flags.interval,
        0,
    )?;
    let lossy = pick(
        "HARNESS_LOSSY",
        "--lossy-restore",
        env.lossy,
        flags.lossy,
        false,
    )?;
    let ub = pick("HARNESS_UB", "--upstream-backup", env.ub, flags.ub, false)?;
    let write_latency = pick(
        "HARNESS_CKPT_LAT",
        "--ckpt-write-latency",
        env.write_latency,
        flags.write_latency,
        0,
    )?;
    let budget = pick(
        "HARNESS_CKPT_BUDGET",
        "--ckpt-budget",
        env.budget,
        flags.budget,
        0,
    )?;
    if interval == 0 {
        let needs = [
            (lossy, "lossy restore (HARNESS_LOSSY / --lossy-restore)"),
            (ub, "upstream backup (HARNESS_UB / --upstream-backup)"),
            (
                write_latency != 0,
                "write latency (HARNESS_CKPT_LAT / --ckpt-write-latency)",
            ),
            (
                budget != 0,
                "a storage budget (HARNESS_CKPT_BUDGET / --ckpt-budget)",
            ),
        ];
        for (on, what) in needs {
            if on {
                return Err(format!(
                    "{what} requires a checkpoint interval \
                     (HARNESS_CKPT / --checkpoint-interval)"
                ));
            }
        }
    }
    Ok(CheckpointPolicy::every(interval)
        .lossy(lossy)
        .upstream_backup(ub)
        .storage(
            StorageModel::default()
                .with_write(write_latency, 0)
                .with_budget(budget),
        ))
}

/// Merges the control-plane knobs the same way: contradictions rejected,
/// and — mirroring the campaign default — an unspecified metastore falls
/// back to replicated exactly when control faults are on.
fn resolve_control(env: PolicySpec, flags: PolicySpec) -> Result<(bool, MetastoreKind), String> {
    let ctrl = pick(
        "HARNESS_CTRL",
        "--control-faults",
        env.ctrl,
        flags.ctrl,
        false,
    )?;
    let metastore = pick(
        "HARNESS_META",
        "--metastore",
        env.metastore,
        flags.metastore,
        if ctrl {
            MetastoreKind::Replicated
        } else {
            MetastoreKind::Memory
        },
    )?;
    Ok((ctrl, metastore))
}

/// Replays one plan from `HARNESS_APP` / `HARNESS_SEED` / `HARNESS_PLAN`
/// (plus optional `HARNESS_CKPT` / `HARNESS_LOSSY` / `HARNESS_UB` /
/// `HARNESS_CKPT_LAT` / `HARNESS_CKPT_BUDGET` policy capture). Environment
/// and flags may each specify policy knobs, but where both do they must
/// agree — contradictions are rejected rather than silently resolved.
fn replay(args: &Args) -> Result<ExitCode, String> {
    let app = std::env::var("HARNESS_APP")
        .ok()
        .or_else(|| args.app.clone())
        .ok_or("replay needs HARNESS_APP or --app")?;
    let seed: u64 = std::env::var("HARNESS_SEED")
        .map_err(|_| "replay needs HARNESS_SEED")?
        .parse()
        .map_err(|e| format!("bad HARNESS_SEED: {e}"))?;
    let plan = FaultPlan::decode(
        &std::env::var("HARNESS_PLAN").map_err(|_| "replay needs HARNESS_PLAN")?,
    )?;
    let env = env_spec()?;
    let flags = flags_spec(args);
    let opts = resolve_policy(env, flags)?;
    let (ctrl, metastore) = resolve_control(env, flags)?;
    let sc = scenario::by_name(&app).ok_or_else(|| format!("unknown app `{app}`"))?;
    let oracles = default_oracles(args.broken_convergence, opts.enabled(), ctrl);
    // The baseline is fetched through the cache at the point of use: one
    // computation for the whole replay (the determinism re-run hits the
    // entry the first run populated).
    let cache = cache_for(args);
    let (digest, violations) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        args.check_determinism,
        WorldPolicy {
            checkpoint: opts,
            metastore,
        },
        BaselineSource::new(&cache, plan.horizon()),
    );
    println!(
        "replay app={} seed={} ckpt={} plan={} digest={:016x}",
        sc.name,
        seed,
        opts.every_quanta,
        plan.encode(),
        digest
    );
    if violations.is_empty() {
        println!("all oracles passed");
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("oracle {} violated: {}", v.oracle, v.message);
        }
        Ok(ExitCode::FAILURE)
    }
}

fn print_report(args: &Args, report: &CampaignReport) {
    // Note: the campaign line carries no jobs= field on purpose — the
    // report is independent of --jobs, and the stdout of a --jobs 8 run
    // must diff clean against a --jobs 1 run.
    println!(
        "campaign app={} plans={} seed={} ckpt={} digest={:016x} failures={}",
        report.scenario,
        report.plans_run,
        args.seed,
        args.interval(),
        report.digest,
        report.plans_failed
    );
    // Deterministic (folded in plan-index order from primary runs only), so
    // it diffs clean across --jobs; omitted entirely when backup is off to
    // keep legacy output byte-identical.
    if report.ub.any() {
        println!(
            "  upstream-backup buffered={} replayed={} suppressed={} trimmed={} peak_buffered={}",
            report.ub.buffered,
            report.ub.replayed,
            report.ub.suppressed,
            report.ub.trimmed,
            report.ub.peak_buffered
        );
    }
    // Same convention for the control-plane counters: folded in plan-index
    // order, omitted entirely when no control fault fired so legacy output
    // (and the memory-vs-replicated differential diff) stays byte-identical.
    if report.control.any() {
        println!(
            "  control-plane orca_crashes={} orca_recoveries={} notifications_replayed={} \
             sam_restarts={} meta_ops_replayed={} hc_partitions={} false_declarations={}",
            report.control.orca_crashes,
            report.control.orca_recoveries,
            report.control.notifications_replayed,
            report.control.sam_restarts,
            report.control.meta_ops_replayed,
            report.control.hc_partitions,
            report.control.false_declarations
        );
    }
    for f in &report.failures {
        println!(
            "  FAIL seed={} original={} shrunk={}",
            f.plan_seed,
            f.original.encode(),
            f.shrunk.encode()
        );
        for v in &f.violations {
            println!("    oracle {}: {}", v.oracle, v.message);
        }
        println!(
            "  reproduce: {} cargo run --release -p orca_bench --bin campaign -- --replay{}",
            f.reproducer,
            if args.broken_convergence {
                " --broken-oracle convergence"
            } else {
                ""
            }
        );
    }
    if report.failures_truncated > 0 {
        println!(
            "  failures_truncated={}: that many more plans failed beyond the \
             shrink cap; re-run with a higher max_failures to shrink them",
            report.failures_truncated
        );
    }
}

/// One timed campaign over `sc` against `cache`, returning the report, the
/// wall-clock, and this run's baseline-counter deltas.
fn timed_run(
    sc: &Scenario,
    cfg: &CampaignConfig,
    cache: &BaselineCache,
) -> (CampaignReport, f64, orca_harness::CacheStats) {
    let before = cache.stats();
    // sslint: allow(ambient-authority, wall-clock timing is printed only under --timing and never reaches default stdout)
    let start = Instant::now();
    let report = run_campaign_cached(sc, cfg, cache);
    let wall = start.elapsed().as_secs_f64();
    (report, wall, cache.stats().since(before))
}

fn timing_line(
    app: &str,
    jobs: usize,
    phase: &str,
    wall: f64,
    plans: usize,
    stats: orca_harness::CacheStats,
    ub: orca_harness::UbStats,
) -> String {
    format!(
        "timing app={app} jobs={jobs} phase={phase} wall_s={wall:.2} plans_per_sec={:.2} \
         baseline_hits={} baseline_misses={} baseline_hit_rate={:.2} \
         ub_buffered={} ub_replayed={} ub_suppressed={} ub_trimmed={} ub_peak={}",
        plans as f64 / wall.max(f64::EPSILON),
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        ub.buffered,
        ub.replayed,
        ub.suppressed,
        ub.trimmed,
        ub.peak_buffered,
    )
}

/// `--bench-json`: per app, measure cache-off vs cold-cache vs warm-cache
/// (second campaign on the same cache — the repeated-campaign / replay
/// regime the memo exists for), enforce byte-identical reports across all
/// three arms, and record the numbers as a JSON artifact.
fn bench(args: &Args, scenarios: &[Scenario], path: &str) -> Result<ExitCode, String> {
    let cfg = campaign_config(args);
    let mut failed = false;
    let mut entries = Vec::new();
    for sc in scenarios {
        eprintln!("[{}] bench: cache off…", sc.name);
        let off_cache = BaselineCache::disabled();
        let (report_off, wall_off, stats_off) = timed_run(sc, &cfg, &off_cache);
        eprintln!("[{}] bench: cache cold…", sc.name);
        let cache = BaselineCache::new();
        let (report_cold, wall_cold, stats_cold) = timed_run(sc, &cfg, &cache);
        eprintln!("[{}] bench: cache warm…", sc.name);
        let (report_warm, wall_warm, stats_warm) = timed_run(sc, &cfg, &cache);

        // The cache guarantee, enforced at measurement time: all three arms
        // produce byte-identical reports.
        let rendered = report_off.render();
        if rendered != report_cold.render() || rendered != report_warm.render() {
            return Err(format!(
                "[{}] campaign report depends on the baseline cache — refusing to bench",
                sc.name
            ));
        }
        print_report(args, &report_off);
        if args.timing {
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "cache_off",
                    wall_off,
                    cfg.plans,
                    stats_off,
                    report_off.ub
                )
            );
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "cache_cold",
                    wall_cold,
                    cfg.plans,
                    stats_cold,
                    report_cold.ub
                )
            );
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "cache_warm",
                    wall_warm,
                    cfg.plans,
                    stats_warm,
                    report_warm.ub
                )
            );
        }
        failed |= report_off.plans_failed > 0;
        entries.push(format!(
            "    {{\n      \"app\": \"{}\",\n      \"wall_s_cache_off\": {:.3},\n      \
             \"wall_s_cache_cold\": {:.3},\n      \"wall_s_cache_warm\": {:.3},\n      \
             \"speedup_warm_vs_off\": {:.2},\n      \"plans_per_sec_warm\": {:.2},\n      \
             \"baseline_hits_warm\": {},\n      \"baseline_misses_warm\": {},\n      \
             \"baseline_hit_rate_warm\": {:.3}\n    }}",
            sc.name,
            wall_off,
            wall_cold,
            wall_warm,
            wall_off / wall_warm.max(f64::EPSILON),
            cfg.plans as f64 / wall_warm.max(f64::EPSILON),
            stats_warm.hits,
            stats_warm.misses,
            stats_warm.hit_rate(),
        ));
    }
    let json = format!(
        "{{\n  \"plans\": {},\n  \"seed\": {},\n  \"jobs\": {},\n  \
         \"checkpoint_interval\": {},\n  \"determinism_replay\": {},\n  \"apps\": [\n{}\n  ]\n}}\n",
        args.plans,
        args.seed,
        args.jobs,
        args.interval(),
        args.check_determinism,
        entries.join(",\n")
    );
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("bench results written to {path}");
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.replay {
        return match replay(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let scenarios = match scenarios_for(&args.app) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.bench_json {
        return match bench(&args, &scenarios, path) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let cfg = campaign_config(&args);
    // One cache for the whole invocation: multi-app campaigns keep per-app
    // entries apart by key, and any repeated evaluation (determinism
    // replays, shrink walks) hits instead of re-simulating.
    let cache = cache_for(&args);
    let mut failed = false;
    for sc in &scenarios {
        let (report, wall, stats) = timed_run(sc, &cfg, &cache);
        eprintln!("[{}] {} plans in {:.1}s", sc.name, report.plans_run, wall);
        print_report(&args, &report);
        if args.timing {
            // Wall-clock is nondeterministic, hence flag-gated (see module
            // docs). plans/sec is the CI matrix's throughput headline; the
            // baseline hit/miss counters expose whether memoization is
            // actually engaging (hits ≈ misses under the determinism
            // replay, all-hits on a warm cache).
            println!(
                "{}",
                timing_line(
                    sc.name,
                    args.jobs,
                    "campaign",
                    wall,
                    report.plans_run,
                    stats,
                    report.ub
                )
            );
        }
        failed |= report.plans_failed > 0;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_harness::reproducer_line;

    /// Parses the `KEY=VAL` environment prefix of a reproducer line the way
    /// a shell + [`env_spec`] would, without mutating process env vars
    /// (tests share a process).
    fn spec_from_line(line: &str) -> PolicySpec {
        let mut spec = PolicySpec::default();
        for tok in line.split_whitespace() {
            let Some((k, v)) = tok.split_once('=') else {
                continue;
            };
            match k {
                "HARNESS_CKPT" => spec.interval = Some(v.parse().unwrap()),
                "HARNESS_LOSSY" => spec.lossy = Some(v == "1"),
                "HARNESS_UB" => spec.ub = Some(v == "1"),
                "HARNESS_CKPT_LAT" => spec.write_latency = Some(v.parse().unwrap()),
                "HARNESS_CKPT_BUDGET" => spec.budget = Some(v.parse().unwrap()),
                "HARNESS_CTRL" => spec.ctrl = Some(v == "1"),
                "HARNESS_META" => spec.metastore = Some(v.parse().unwrap()),
                _ => {}
            }
        }
        spec
    }

    #[test]
    fn reproducer_line_round_trips_through_replay_resolution() {
        let sc = scenario::by_name("trend").unwrap();
        let plan = FaultPlan::default();
        for opts in [
            CheckpointPolicy::every(10),
            CheckpointPolicy::every(10).lossy(true),
            CheckpointPolicy::every(5).upstream_backup(true),
            CheckpointPolicy::every(10).storage(
                StorageModel::default()
                    .with_write(250, 0)
                    .with_budget(16_384),
            ),
        ] {
            let line = reproducer_line(&sc, 123, &plan, WorldPolicy::checkpointed(opts), false);
            let resolved = resolve_policy(spec_from_line(&line), PolicySpec::default())
                .expect("captured policy must resolve");
            assert_eq!(resolved, opts, "round-trip mismatch for line `{line}`");
        }
    }

    #[test]
    fn control_capture_round_trips_through_replay_resolution() {
        let sc = scenario::by_name("trend").unwrap();
        let plan = FaultPlan::decode("1000:co,2000:rs,3000:ps:1500").unwrap();
        for (policy, ctrl) in [
            (
                WorldPolicy {
                    checkpoint: CheckpointPolicy::default(),
                    metastore: MetastoreKind::Replicated,
                },
                true,
            ),
            (
                WorldPolicy {
                    checkpoint: CheckpointPolicy::every(10),
                    metastore: MetastoreKind::Memory,
                },
                true,
            ),
            (
                WorldPolicy {
                    checkpoint: CheckpointPolicy::default(),
                    metastore: MetastoreKind::Replicated,
                },
                false,
            ),
        ] {
            let line = reproducer_line(&sc, 123, &plan, policy, ctrl);
            let spec = spec_from_line(&line);
            let (got_ctrl, got_meta) =
                resolve_control(spec, PolicySpec::default()).expect("must resolve");
            assert_eq!(got_ctrl, ctrl, "line `{line}`");
            assert_eq!(got_meta, policy.metastore, "line `{line}`");
            assert!(line.contains(&format!("HARNESS_PLAN={}", plan.encode())));
        }
        // The campaign's "control faults default to the replicated store"
        // rule holds on replay when neither side pins the metastore.
        let ctrl_only = PolicySpec {
            ctrl: Some(true),
            ..PolicySpec::default()
        };
        assert_eq!(
            resolve_control(ctrl_only, PolicySpec::default()).unwrap(),
            (true, MetastoreKind::Replicated)
        );
        assert_eq!(
            resolve_control(PolicySpec::default(), PolicySpec::default()).unwrap(),
            (false, MetastoreKind::Memory)
        );
        // Contradictions are rejected, naming both sides.
        let env = PolicySpec {
            metastore: Some(MetastoreKind::Memory),
            ..PolicySpec::default()
        };
        let flags = PolicySpec {
            metastore: Some(MetastoreKind::Replicated),
            ..PolicySpec::default()
        };
        let err = resolve_control(env, flags).unwrap_err();
        assert!(err.contains("HARNESS_META=memory"), "got: {err}");
        assert!(err.contains("--metastore replicated"), "got: {err}");
    }

    #[test]
    fn contradictory_env_and_flags_are_rejected() {
        let env = PolicySpec {
            interval: Some(10),
            ..PolicySpec::default()
        };
        let flags = PolicySpec {
            interval: Some(20),
            ..PolicySpec::default()
        };
        let err = resolve_policy(env, flags).unwrap_err();
        assert!(err.contains("HARNESS_CKPT=10"), "got: {err}");
        assert!(err.contains("--checkpoint-interval 20"), "got: {err}");

        let env = PolicySpec {
            interval: Some(10),
            budget: Some(1_024),
            ..PolicySpec::default()
        };
        let flags = PolicySpec {
            budget: Some(2_048),
            ..PolicySpec::default()
        };
        let err = resolve_policy(env, flags).unwrap_err();
        assert!(err.contains("HARNESS_CKPT_BUDGET"), "got: {err}");
    }

    #[test]
    fn agreeing_env_and_flags_resolve() {
        let spec = PolicySpec {
            interval: Some(10),
            ub: Some(true),
            ..PolicySpec::default()
        };
        let opts = resolve_policy(spec, spec).unwrap();
        assert_eq!(opts.every_quanta, 10);
        assert!(opts.upstream_backup);
    }

    #[test]
    fn storage_knobs_require_an_interval() {
        for spec in [
            PolicySpec {
                write_latency: Some(5),
                ..PolicySpec::default()
            },
            PolicySpec {
                budget: Some(4_096),
                ..PolicySpec::default()
            },
            PolicySpec {
                lossy: Some(true),
                ..PolicySpec::default()
            },
        ] {
            let err = resolve_policy(spec, PolicySpec::default()).unwrap_err();
            assert!(err.contains("requires a checkpoint interval"), "got: {err}");
        }
        // Zero-valued knobs are no-ops and must not demand an interval.
        let spec = PolicySpec {
            write_latency: Some(0),
            budget: Some(0),
            ..PolicySpec::default()
        };
        assert!(resolve_policy(spec, PolicySpec::default()).is_ok());
    }
}
