//! Seeded fault-injection campaign driver.
//!
//! ```text
//! cargo run --release -p orca_bench --bin campaign -- --plans 200 --seed 7
//! cargo run --release -p orca_bench --bin campaign -- --app trend --plans 50
//! cargo run --release -p orca_bench --bin campaign -- --plans 100 --jobs 8
//! cargo run --release -p orca_bench --bin campaign -- --broken-oracle convergence
//! cargo run --release -p orca_bench --bin campaign -- --checkpoint-interval 10
//! cargo run --release -p orca_bench --bin campaign -- --checkpoint-interval 10 --lossy-restore
//! HARNESS_APP=trend HARNESS_SEED=123 HARNESS_PLAN=6500:kp:0:1 \
//!     cargo run --release -p orca_bench --bin campaign -- --replay
//! ```
//!
//! `--jobs N` (default: `HARNESS_JOBS`, else 1) shards plan evaluation and
//! failure shrinking across N worker threads; the report is folded in
//! plan-index order, so stdout is byte-identical for any `--jobs` value.
//!
//! `--checkpoint-interval N` enables PE checkpointing every N scheduling
//! quanta and activates the `StatePreservation` oracle; reproducer lines
//! then carry `HARNESS_CKPT=N` (and `HARNESS_LOSSY=1` under
//! `--lossy-restore`) so replays run under the same policy.
//!
//! Stdout is bit-identical across runs with the same arguments (timings go
//! to stderr), so campaign output itself can be diffed for determinism.
//! `--timing` additionally prints per-app wall-clock and plans/sec lines to
//! stdout — deliberately opt-in, so the default stream stays byte-stable.

use orca_harness::{
    compute_baseline, default_oracles, evaluate, run_campaign, scenario, CampaignConfig,
    CheckpointPolicy, FaultPlan, Scenario,
};
use std::process::ExitCode;

struct Args {
    plans: usize,
    seed: u64,
    app: Option<String>,
    broken_convergence: bool,
    check_determinism: bool,
    replay: bool,
    checkpoint_interval: u32,
    lossy_restore: bool,
    jobs: usize,
    timing: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        plans: 50,
        seed: 7,
        app: None,
        broken_convergence: false,
        check_determinism: true,
        replay: false,
        checkpoint_interval: 0,
        lossy_restore: false,
        jobs: 0,
        timing: false,
    };
    let mut jobs: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--plans" => args.plans = value("--plans")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => jobs = Some(value("--jobs")?.parse().map_err(|e| format!("{e}"))?),
            "--timing" => args.timing = true,
            "--app" => args.app = Some(value("--app")?),
            "--broken-oracle" => {
                let which = value("--broken-oracle")?;
                if which != "convergence" {
                    return Err(format!("unknown oracle `{which}` (try: convergence)"));
                }
                args.broken_convergence = true;
            }
            "--checkpoint-interval" => {
                args.checkpoint_interval = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--lossy-restore" => args.lossy_restore = true,
            "--no-determinism" => args.check_determinism = false,
            "--replay" => args.replay = true,
            "--help" | "-h" => {
                return Err(
                    "usage: campaign [--plans N] [--seed S] [--app NAME] [--jobs N] \
                     [--broken-oracle convergence] [--checkpoint-interval QUANTA] \
                     [--lossy-restore] [--no-determinism] [--timing] [--replay]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.lossy_restore && args.checkpoint_interval == 0 {
        return Err("--lossy-restore requires --checkpoint-interval".to_string());
    }
    // `HARNESS_JOBS` supplies the default so reproducer stanzas and CI job
    // environments can set parallelism without editing the command line; an
    // explicit `--jobs` wins, and only then is the env var consulted (a
    // malformed value must not sink a command that overrode it anyway).
    args.jobs = match jobs {
        Some(n) => n,
        None => match std::env::var("HARNESS_JOBS") {
            Ok(v) => v
                .parse::<usize>()
                .map_err(|e| format!("bad HARNESS_JOBS: {e}"))?,
            Err(_) => 1,
        },
    };
    if args.jobs == 0 {
        return Err("--jobs / HARNESS_JOBS must be >= 1".to_string());
    }
    Ok(args)
}

fn scenarios_for(app: &Option<String>) -> Result<Vec<Scenario>, String> {
    match app {
        None => Ok(scenario::all()),
        Some(name) => scenario::by_name(name)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown app `{name}` (try: live, sentiment, social, trend)")),
    }
}

/// Replays one plan from `HARNESS_APP` / `HARNESS_SEED` / `HARNESS_PLAN`
/// (plus optional `HARNESS_CKPT` / `HARNESS_LOSSY` policy capture).
fn replay(args: &Args) -> Result<ExitCode, String> {
    let app = std::env::var("HARNESS_APP")
        .ok()
        .or_else(|| args.app.clone())
        .ok_or("replay needs HARNESS_APP or --app")?;
    let seed: u64 = std::env::var("HARNESS_SEED")
        .map_err(|_| "replay needs HARNESS_SEED")?
        .parse()
        .map_err(|e| format!("bad HARNESS_SEED: {e}"))?;
    let plan = FaultPlan::decode(
        &std::env::var("HARNESS_PLAN").map_err(|_| "replay needs HARNESS_PLAN")?,
    )?;
    let checkpoint_interval = match std::env::var("HARNESS_CKPT") {
        Ok(v) => v.parse().map_err(|e| format!("bad HARNESS_CKPT: {e}"))?,
        Err(_) => args.checkpoint_interval,
    };
    let lossy = std::env::var("HARNESS_LOSSY").is_ok_and(|v| v == "1") || args.lossy_restore;
    let opts = CheckpointPolicy {
        every_quanta: checkpoint_interval,
        lossy_restore: lossy,
    };
    let sc = scenario::by_name(&app).ok_or_else(|| format!("unknown app `{app}`"))?;
    let oracles = default_oracles(args.broken_convergence, opts.enabled());
    let baseline = opts
        .enabled()
        .then(|| compute_baseline(&sc, seed, opts, plan.horizon()));
    let (digest, violations) = evaluate(
        &sc,
        seed,
        &plan,
        &oracles,
        args.check_determinism,
        opts,
        baseline.as_ref(),
    );
    println!(
        "replay app={} seed={} ckpt={} plan={} digest={:016x}",
        sc.name,
        seed,
        checkpoint_interval,
        plan.encode(),
        digest
    );
    if violations.is_empty() {
        println!("all oracles passed");
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("oracle {} violated: {}", v.oracle, v.message);
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.replay {
        return match replay(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let scenarios = match scenarios_for(&args.app) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = CampaignConfig {
        plans: args.plans,
        seed: args.seed,
        check_determinism: args.check_determinism,
        broken_convergence: args.broken_convergence,
        checkpoint: CheckpointPolicy {
            every_quanta: args.checkpoint_interval,
            lossy_restore: args.lossy_restore,
        },
        jobs: args.jobs,
        ..Default::default()
    };
    let mut failed = false;
    for sc in &scenarios {
        let start = std::time::Instant::now();
        let report = run_campaign(sc, &cfg);
        let wall = start.elapsed().as_secs_f64();
        eprintln!("[{}] {} plans in {:.1}s", sc.name, report.plans_run, wall);
        // Note: the campaign line carries no jobs= field on purpose — the
        // report is independent of --jobs, and the stdout of a --jobs 8 run
        // must diff clean against a --jobs 1 run.
        println!(
            "campaign app={} plans={} seed={} ckpt={} digest={:016x} failures={}",
            report.scenario,
            report.plans_run,
            args.seed,
            args.checkpoint_interval,
            report.digest,
            report.plans_failed
        );
        if args.timing {
            // Wall-clock is nondeterministic, hence flag-gated (see module
            // docs). plans/sec is the CI matrix's throughput headline.
            println!(
                "timing app={} jobs={} wall_s={:.2} plans_per_sec={:.2}",
                report.scenario,
                args.jobs,
                wall,
                report.plans_run as f64 / wall.max(f64::EPSILON)
            );
        }
        failed |= report.plans_failed > 0;
        for f in &report.failures {
            println!(
                "  FAIL seed={} original={} shrunk={}",
                f.plan_seed,
                f.original.encode(),
                f.shrunk.encode()
            );
            for v in &f.violations {
                println!("    oracle {}: {}", v.oracle, v.message);
            }
            println!(
                "  reproduce: {} cargo run --release -p orca_bench --bin campaign -- --replay{}",
                f.reproducer,
                if args.broken_convergence {
                    " --broken-oracle convergence"
                } else {
                    ""
                }
            );
        }
        if report.failures_truncated > 0 {
            println!(
                "  failures_truncated={}: that many more plans failed beyond the \
                 shrink cap; re-run with a higher max_failures to shrink them",
                report.failures_truncated
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
