//! Checkpoint storage-cost sweep: recovery time as a function of
//! checkpoint interval and storage budget.
//!
//! ```text
//! cargo run --release -p orca_bench --bin ckpt_sweep
//! cargo run --release -p orca_bench --bin ckpt_sweep -- \
//!     --apps live,trend --intervals 5,10,20,40 --budgets 0,16384 \
//!     --plans 6 --json BENCH_checkpoint.json
//! ```
//!
//! For every `(app, interval, budget)` grid point the sweep executes the
//! same seeded fault plans the campaign would generate, under a nonzero
//! [`StorageModel`] (per-snapshot write/restore op latency plus a byte
//! throughput term), and mines the settled kernel's restart log:
//!
//! - **staleness**: sim-time between the restored snapshot's `taken_at`
//!   and the restart — the work a longer checkpoint interval forces the
//!   replacement PE to redo,
//! - **recovery**: `restart_delay + restore read latency + staleness` —
//!   the end-to-end cost of one recovery,
//! - **fresh** restarts (no restorable checkpoint — including budget
//!   evictions) and the store's eviction/peak-byte counters.
//!
//! Every row is deterministic in `(seed, grid point)`; stdout `sweep …`
//! lines and the `--json` artifact can be diffed across runs. Upstream
//! backup stays off: under a finite budget an evicted chain can force a
//! fresh restore that legitimately breaks exactly-once replay, which would
//! conflate transport loss with the storage effect this sweep isolates.

use orca_harness::{
    plan_seeds, scenario, settled_world, CheckpointPolicy, FaultPlan, StorageModel, WorldPolicy,
};
use sps_sim::SimRng;
use std::process::ExitCode;

struct Args {
    apps: Vec<String>,
    intervals: Vec<u32>,
    budgets: Vec<usize>,
    plans: usize,
    seed: u64,
    write_op_ms: u64,
    write_bytes_per_ms: u64,
    restore_op_ms: u64,
    restore_bytes_per_ms: u64,
    json: Option<String>,
}

fn parse_list<T: std::str::FromStr>(name: &str, raw: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    raw.split(',')
        .map(|tok| {
            tok.trim()
                .parse()
                .map_err(|e| format!("bad {name} element `{tok}`: {e}"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        apps: vec!["live".into(), "trend".into()],
        intervals: vec![5, 10, 20, 40],
        budgets: vec![0, 16_384],
        plans: 6,
        seed: 7,
        write_op_ms: 5,
        write_bytes_per_ms: 64,
        restore_op_ms: 5,
        restore_bytes_per_ms: 64,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--apps" => args.apps = parse_list("--apps", &value("--apps")?)?,
            "--intervals" => args.intervals = parse_list("--intervals", &value("--intervals")?)?,
            "--budgets" => args.budgets = parse_list("--budgets", &value("--budgets")?)?,
            "--plans" => args.plans = value("--plans")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--write-op-ms" => {
                args.write_op_ms = value("--write-op-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--write-bytes-per-ms" => {
                args.write_bytes_per_ms = value("--write-bytes-per-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--restore-op-ms" => {
                args.restore_op_ms = value("--restore-op-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--restore-bytes-per-ms" => {
                args.restore_bytes_per_ms = value("--restore-bytes-per-ms")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                return Err(
                    "usage: ckpt_sweep [--apps A,B] [--intervals N,..] [--budgets B,..] \
                     [--plans N] [--seed S] [--write-op-ms MS] [--write-bytes-per-ms B] \
                     [--restore-op-ms MS] [--restore-bytes-per-ms B] [--json PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.intervals.contains(&0) {
        return Err("--intervals entries must be >= 1 (0 disables checkpointing)".to_string());
    }
    Ok(args)
}

/// Aggregated restart-log metrics over every plan of one grid point.
#[derive(Default)]
struct Point {
    restores: u64,
    fresh: u64,
    /// Sums over *restored* restarts only.
    recovery_ms_total: u64,
    staleness_ms_total: u64,
    restore_read_ms_total: u64,
    fallbacks: u64,
    evictions: u64,
    peak_bytes: usize,
}

impl Point {
    fn mean(total: u64, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    fn recovery_ms(&self) -> f64 {
        Self::mean(self.recovery_ms_total, self.restores)
    }

    fn staleness_ms(&self) -> f64 {
        Self::mean(self.staleness_ms_total, self.restores)
    }

    fn restore_read_ms(&self) -> f64 {
        Self::mean(self.restore_read_ms_total, self.restores)
    }
}

fn run_point(app: &str, interval: u32, budget: usize, args: &Args) -> Result<Point, String> {
    let sc = scenario::by_name(app).ok_or_else(|| format!("unknown app `{app}`"))?;
    let opts = CheckpointPolicy::every(interval).storage(
        StorageModel::default()
            .with_write(args.write_op_ms, args.write_bytes_per_ms)
            .with_restore(args.restore_op_ms, args.restore_bytes_per_ms)
            .with_budget(budget),
    );
    let mut point = Point::default();
    for plan_seed in plan_seeds(args.seed, args.plans) {
        let plan = FaultPlan::generate(&mut SimRng::new(plan_seed), &sc.plan_spec());
        let (world, _, _) =
            settled_world(&sc, plan_seed, &plan, WorldPolicy::checkpointed(opts), None);
        let kernel = &world.kernel;
        let restart_delay_ms = kernel.config.restart_delay.as_millis();
        for rec in kernel.restart_log() {
            match rec.restore {
                sps_runtime::RestoreOutcome::Restored { taken_at, .. } => {
                    let staleness = rec.at.as_millis().saturating_sub(taken_at.as_millis());
                    point.restores += 1;
                    point.staleness_ms_total += staleness;
                    point.restore_read_ms_total += rec.restore_ms;
                    point.recovery_ms_total += restart_delay_ms + rec.restore_ms + staleness;
                }
                sps_runtime::RestoreOutcome::Fresh { .. } => point.fresh += 1,
            }
        }
        point.fallbacks += kernel.ckpt.fallbacks();
        point.evictions += kernel.ckpt.evictions();
        point.peak_bytes = point.peak_bytes.max(kernel.ckpt.peak_state_bytes());
    }
    Ok(point)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows = Vec::new();
    for app in &args.apps {
        for &interval in &args.intervals {
            for &budget in &args.budgets {
                let point = match run_point(app, interval, budget, &args) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                println!(
                    "sweep app={app} interval={interval} budget={budget} \
                     recovery_ms={:.1} staleness_ms={:.1} restore_read_ms={:.1} \
                     restores={} fresh={} fallbacks={} evictions={} peak_bytes={}",
                    point.recovery_ms(),
                    point.staleness_ms(),
                    point.restore_read_ms(),
                    point.restores,
                    point.fresh,
                    point.fallbacks,
                    point.evictions,
                    point.peak_bytes
                );
                rows.push(format!(
                    "    {{\n      \"app\": \"{app}\",\n      \"interval\": {interval},\n      \
                     \"budget\": {budget},\n      \"recovery_ms\": {:.1},\n      \
                     \"staleness_ms\": {:.1},\n      \"restore_read_ms\": {:.1},\n      \
                     \"restores\": {},\n      \"fresh\": {},\n      \"fallbacks\": {},\n      \
                     \"evictions\": {},\n      \"peak_bytes\": {}\n    }}",
                    point.recovery_ms(),
                    point.staleness_ms(),
                    point.restore_read_ms(),
                    point.restores,
                    point.fresh,
                    point.fallbacks,
                    point.evictions,
                    point.peak_bytes
                ));
            }
        }
    }
    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"seed\": {},\n  \"plans\": {},\n  \"write_op_ms\": {},\n  \
             \"write_bytes_per_ms\": {},\n  \"restore_op_ms\": {},\n  \
             \"restore_bytes_per_ms\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            args.seed,
            args.plans,
            args.write_op_ms,
            args.write_bytes_per_ms,
            args.restore_op_ms,
            args.restore_bytes_per_ms,
            rows.join(",\n")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("sweep results written to {path}");
    }
    ExitCode::SUCCESS
}
