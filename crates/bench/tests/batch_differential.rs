//! Differential gate for the batched data path: campaign stdout must be
//! byte-identical with batching on (the default) and with the per-tuple
//! fallback forced via `SPS_BATCH=off`.
//!
//! The fallback caps every run at one tuple and dispatches straight to
//! `on_tuple`, so this comparison proves the batched `on_batch` overrides,
//! the run-coalesced transport deliveries, and the straddling-batch replay
//! split in upstream backup all preserve the per-tuple semantics — not just
//! on a clean run but under fault plans, checkpoint restores, and replay.
//! `batching_enabled()` is read once per process, which is why each side
//! runs in its own campaign subprocess.

use std::process::Command;

fn campaign_stdout(app: &str, extra: &[&str], batch: bool) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(["--app", app, "--plans", "6", "--seed", "7", "--jobs", "2"]);
    cmd.args(extra);
    if !batch {
        cmd.env("SPS_BATCH", "off");
    } else {
        cmd.env_remove("SPS_BATCH");
    }
    let out = cmd.output().expect("campaign binary runs");
    assert!(
        out.status.success(),
        "campaign --app {app} {extra:?} (batch={batch}) exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is utf-8")
}

fn assert_differential(extra: &[&str]) {
    for app in ["live", "sentiment", "social", "trend"] {
        let batched = campaign_stdout(app, extra, true);
        let fallback = campaign_stdout(app, extra, false);
        assert!(
            !batched.is_empty(),
            "campaign --app {app} {extra:?} produced no report"
        );
        assert_eq!(
            batched, fallback,
            "batched stdout diverged from per-tuple fallback for --app {app} {extra:?}"
        );
    }
}

#[test]
fn plain_campaign_is_batching_invariant() {
    assert_differential(&[]);
}

#[test]
fn checkpointed_campaign_is_batching_invariant() {
    assert_differential(&["--checkpoint-interval", "10"]);
}

#[test]
fn upstream_backup_campaign_is_batching_invariant() {
    assert_differential(&["--checkpoint-interval", "10", "--upstream-backup", "on"]);
}
