//! Guards the `--timing` containment invariant: the campaign binary's
//! *default* stdout must never carry wall-clock fields. Everything on the
//! default stream participates in byte-identity comparisons across runs and
//! `--jobs` levels, so a single leaked `wall_s=` would make every
//! determinism claim flaky. (This is the invariant the `sslint` allow on
//! `Instant::now()` in `src/bin/campaign.rs` records.)

use std::process::Command;

fn campaign_stdout(extra: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
    cmd.args(["--plans", "3", "--seed", "7", "--app", "live"]);
    cmd.args(extra);
    let out = cmd.output().expect("campaign binary runs");
    assert!(
        out.status.success(),
        "campaign exited with {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is utf-8")
}

#[test]
fn default_stdout_has_no_timing_fields() {
    let stdout = campaign_stdout(&[]);
    assert!(!stdout.is_empty(), "campaign produced no report");
    for needle in ["timing ", "wall_s=", "plans_per_sec="] {
        assert!(
            !stdout.contains(needle),
            "default stdout leaked `{needle}`:\n{stdout}"
        );
    }

    // The probe must be able to see the fields when they are asked for —
    // otherwise a renamed field would let the assertions above pass vacuously.
    let timed = campaign_stdout(&["--timing"]);
    assert!(
        timed.contains("wall_s=") && timed.contains("plans_per_sec="),
        "--timing stdout is missing its fields:\n{timed}"
    );
}

#[test]
fn default_stdout_is_run_to_run_identical() {
    // Wall-clock containment is what makes this equality possible at all.
    assert_eq!(campaign_stdout(&[]), campaign_stdout(&[]));
}
