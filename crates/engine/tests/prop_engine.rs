//! Property tests: tuple codec round-trips, expression-parser robustness,
//! and window invariants.

use proptest::prelude::*;
use sps_engine::codec::{decode, encode};
use sps_engine::expr::Expr;
use sps_engine::window::{SlidingTimeWindow, TumblingCountWindow};
use sps_engine::{Punct, StreamItem, Tuple};
use sps_model::Value;
use sps_sim::{SimDuration, SimTime};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        // Arbitrary unicode strings are fine for the binary codec.
        ".{0,24}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::Timestamp),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,10}", arb_value()), 0..8).prop_map(|attrs| {
        let mut t = Tuple::new();
        for (k, v) in attrs {
            t.set(&k, v);
        }
        t
    })
}

proptest! {
    #[test]
    fn codec_roundtrip(t in arb_tuple()) {
        let item = StreamItem::Tuple(t);
        let decoded = decode(encode(&item)).unwrap();
        prop_assert_eq!(decoded, item);
    }

    #[test]
    fn codec_puncts_roundtrip(window in any::<bool>()) {
        let p = if window { Punct::Window } else { Punct::Final };
        let decoded = decode(encode(&StreamItem::Punct(p))).unwrap();
        prop_assert_eq!(decoded, StreamItem::Punct(p));
    }

    #[test]
    fn codec_rejects_any_truncation(t in arb_tuple()) {
        let bytes = encode(&StreamItem::Tuple(t));
        // Every strict prefix fails cleanly (no panic, no success).
        for cut in 0..bytes.len() {
            prop_assert!(decode(bytes.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn expr_parse_never_panics(src in ".{0,48}") {
        let _ = Expr::parse(&src);
    }

    #[test]
    fn expr_eval_is_deterministic_and_total(
        src in "[a-z0-9 ()+*<>=&|!\"-]{0,32}",
        x in any::<i64>(),
    ) {
        if let Ok(e) = Expr::parse(&src) {
            let t = Tuple::new().with("a", x).with("b", 2i64);
            let r1 = e.eval(&t);
            let r2 = e.eval(&t);
            prop_assert_eq!(r1, r2);
        }
    }

    #[test]
    fn expr_int_comparison_semantics(a in -1000i64..1000, b in -1000i64..1000) {
        let t = Tuple::new().with("a", a).with("b", b);
        let lt = Expr::parse("a < b").unwrap().eval_bool(&t).unwrap();
        prop_assert_eq!(lt, a < b);
        let arith = Expr::parse("a + b * 2").unwrap().eval(&t).unwrap();
        prop_assert_eq!(arith, Value::Int(a.wrapping_add(b.wrapping_mul(2))));
    }

    #[test]
    fn sliding_window_never_retains_expired(
        deltas in prop::collection::vec(0u64..5000, 1..60),
        span_ms in 1u64..10_000,
    ) {
        let span = SimDuration::from_millis(span_ms);
        let mut w = SlidingTimeWindow::new(span);
        let mut now = SimTime::ZERO;
        let mut pushes = 0usize;
        for d in deltas {
            now += SimDuration::from_millis(d);
            w.push(now, 1.0f64);
            pushes += 1;
            // Invariants after every push:
            prop_assert!(w.len() <= pushes);
            if let Some(oldest) = w.oldest() {
                prop_assert!(now.since(oldest) <= span);
            }
            // Aggregates agree with the raw contents.
            let agg = w.aggregates().unwrap();
            prop_assert_eq!(agg.count, w.len());
        }
    }

    #[test]
    fn sliding_window_fullness_definition(
        span_s in 1u64..100,
        age_s in 0u64..200,
    ) {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(span_s));
        // Keep the entry from being evicted: eviction happens on push/evict
        // only, and we never call evict at `now`.
        w.push(SimTime::ZERO, 1.0f64);
        let now = SimTime::from_secs(age_s);
        prop_assert_eq!(w.is_full(now), age_s >= span_s);
    }

    #[test]
    fn tumbling_window_batches_exactly(size in 1usize..20, n in 0usize..100) {
        let mut w = TumblingCountWindow::new(size);
        let mut flushed = 0usize;
        for i in 0..n {
            if let Some(batch) = w.push(i) {
                prop_assert_eq!(batch.len(), size);
                flushed += batch.len();
            }
        }
        prop_assert_eq!(flushed + w.pending(), n);
        prop_assert!(w.pending() < size);
    }
}
