//! Sliding and tumbling windows.
//!
//! The Trend Calculator (§5.2) keeps 600-second sliding time windows per
//! stock symbol; losing and refilling that state after a PE restart is the
//! crux of the replica-failover experiment (Figure 9).

use sps_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A time-based sliding window of `(timestamp, item)` pairs.
#[derive(Clone, Debug)]
pub struct SlidingTimeWindow<T> {
    span: SimDuration,
    items: VecDeque<(SimTime, T)>,
}

impl<T> SlidingTimeWindow<T> {
    pub fn new(span: SimDuration) -> Self {
        SlidingTimeWindow {
            span,
            items: VecDeque::new(),
        }
    }

    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// Inserts an item observed at `at`, then evicts expired entries.
    /// Timestamps must be non-decreasing (stream order).
    pub fn push(&mut self, at: SimTime, item: T) {
        debug_assert!(self.items.back().is_none_or(|(t, _)| *t <= at));
        self.items.push_back((at, item));
        self.evict(at);
    }

    /// Evicts entries older than `now - span`.
    pub fn evict(&mut self, now: SimTime) {
        while let Some((t, _)) = self.items.front() {
            if now.since(*t) > self.span {
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.items.iter()
    }

    /// Timestamp of the oldest retained entry.
    pub fn oldest(&self) -> Option<SimTime> {
        self.items.front().map(|(t, _)| *t)
    }

    /// True when the window covers its full span, i.e. the oldest entry is at
    /// least `span` older than `now`. The Trend Calculator reports correct
    /// results only once its windows are full again after a restart (§5.2).
    pub fn is_full(&self, now: SimTime) -> bool {
        self.oldest()
            .is_some_and(|oldest| now.since(oldest) >= self.span)
    }

    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// Numeric aggregates over a sliding window of f64 samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowAggregates {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub avg: f64,
    pub stddev: f64,
}

impl SlidingTimeWindow<f64> {
    /// Computes min/max/avg/stddev over the current contents; `None` when
    /// empty. Used by the financial operators (Bollinger Bands = avg ± k·σ).
    pub fn aggregates(&self) -> Option<WindowAggregates> {
        if self.items.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for (_, v) in &self.items {
            min = min.min(*v);
            max = max.max(*v);
            sum += v;
        }
        let n = self.items.len() as f64;
        let avg = sum / n;
        let var = self
            .items
            .iter()
            .map(|(_, v)| (v - avg) * (v - avg))
            .sum::<f64>()
            / n;
        Some(WindowAggregates {
            count: self.items.len(),
            min,
            max,
            avg,
            stddev: var.sqrt(),
        })
    }
}

/// A count-based tumbling window: buffers `size` items then flushes.
#[derive(Clone, Debug)]
pub struct TumblingCountWindow<T> {
    size: usize,
    items: Vec<T>,
}

impl<T> TumblingCountWindow<T> {
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "tumbling window size must be positive");
        TumblingCountWindow {
            size,
            items: Vec::with_capacity(size),
        }
    }

    /// Pushes an item; returns the full batch when the window tumbles.
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.items.push(item);
        if self.items.len() >= self.size {
            Some(std::mem::take(&mut self.items))
        } else {
            None
        }
    }

    pub fn pending(&self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn sliding_window_evicts_by_time() {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(10));
        for i in 0..20 {
            w.push(s(i), i as f64);
        }
        // At t=19 the cutoff is 9: entries at 9..=19 remain.
        assert_eq!(w.len(), 11);
        assert_eq!(w.oldest(), Some(s(9)));
    }

    #[test]
    fn explicit_evict_without_push() {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(5));
        w.push(s(0), 1.0);
        w.push(s(1), 2.0);
        w.evict(s(100));
        assert!(w.is_empty());
        assert_eq!(w.oldest(), None);
    }

    #[test]
    fn fullness_tracks_span_coverage() {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(600));
        w.push(s(0), 1.0);
        assert!(!w.is_full(s(0)));
        assert!(!w.is_full(s(599)));
        assert!(w.is_full(s(600)));
        // After clearing (PE restart), fullness is lost.
        w.clear();
        assert!(!w.is_full(s(600)));
        w.push(s(700), 1.0);
        assert!(!w.is_full(s(900)));
        assert!(w.is_full(s(1300)));
    }

    #[test]
    fn aggregates_basic() {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(100));
        assert_eq!(w.aggregates(), None);
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            w.push(s(i as u64), *v);
        }
        let a = w.aggregates().unwrap();
        assert_eq!(a.count, 8);
        assert_eq!(a.min, 2.0);
        assert_eq!(a.max, 9.0);
        assert!((a.avg - 5.0).abs() < 1e-12);
        assert!((a.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_reflect_eviction() {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(2));
        w.push(s(0), 100.0);
        w.push(s(10), 1.0);
        let a = w.aggregates().unwrap();
        assert_eq!(a.count, 1);
        assert_eq!(a.max, 1.0);
    }

    #[test]
    fn iter_preserves_order() {
        let mut w = SlidingTimeWindow::new(SimDuration::from_secs(100));
        w.push(s(1), 10.0);
        w.push(s(2), 20.0);
        let vals: Vec<f64> = w.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![10.0, 20.0]);
    }

    #[test]
    fn tumbling_window_flushes_at_size() {
        let mut w = TumblingCountWindow::new(3);
        assert_eq!(w.push(1), None);
        assert_eq!(w.push(2), None);
        assert_eq!(w.pending(), 2);
        assert_eq!(w.push(3), Some(vec![1, 2, 3]));
        assert_eq!(w.pending(), 0);
        assert_eq!(w.push(4), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tumbling_window_rejects_zero() {
        let _ = TumblingCountWindow::<i32>::new(0);
    }
}
