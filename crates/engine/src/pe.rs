//! The processing element (PE) container.
//!
//! A PE hosts one or more fused operators and corresponds to an
//! operating-system process in System S (§2.1). The container:
//!
//! - routes tuples between fused operators **in memory** and serializes
//!   tuples crossing PE boundaries (returned as [`RemoteDelivery`] items for
//!   the runtime transport to deliver),
//! - maintains built-in metrics and hosts custom metrics,
//! - executes with a bounded per-quantum *budget*, so an overloaded PE
//!   accumulates input-queue backlog (visible as the `queueSize` metric the
//!   paper's Figure 5 example subscribes to),
//! - turns an operator fault into a **PE crash** (uncaught-exception
//!   analogue): processing stops and the runtime is told, which ultimately
//!   produces the orchestrator's PE-failure event (§4.2).

use crate::ckpt::{OpCheckpoint, PeCheckpoint, CKPT_FORMAT_VERSION};
use crate::codec::{self, TupleCodec};
use crate::error::EngineError;
use crate::metrics::{builtin, MetricKey, MetricStore};
use crate::op::{OpCtx, Operator, Punct, StreamItem, TupleBatch};
use crate::registry::OperatorRegistry;
use crate::tuple::Tuple;
use bytes::Bytes;
use sps_model::adl::Adl;
use sps_sim::{SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Address of an operator input port in another PE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteDest {
    pub pe: usize,
    pub op: String,
    pub port: usize,
}

/// A serialized payload bound for another PE: either a single item frame or
/// a batch frame holding a run of consecutive tuples from one quantum.
#[derive(Clone, Debug)]
pub struct RemoteDelivery {
    pub dest: RemoteDest,
    pub payload: Bytes,
    /// Tuples (or punctuations) carried by `payload` — 1 for item frames,
    /// the run length for batch frames. Transport counters (upstream-backup
    /// buffered/replayed/suppressed totals) stay tuple-granular through this.
    pub items: u32,
}

/// An item emitted on an exported output port, to be routed across jobs by
/// the import/export broker.
#[derive(Clone, Debug)]
pub struct ExportedItem {
    pub op: String,
    pub port: usize,
    pub item: StreamItem,
}

/// Everything a PE produced during one scheduling quantum.
#[derive(Debug, Default)]
pub struct PeOutput {
    pub remote: Vec<RemoteDelivery>,
    pub exported: Vec<ExportedItem>,
    /// Fault message if the PE crashed during this quantum.
    pub crashed: Option<String>,
    /// Budget units consumed.
    pub work_done: u64,
}

struct OpSlot {
    name: String,
    kind: String,
    op: Box<dyn Operator>,
    outputs: usize,
    cost: u32,
    /// Input queues, one per port (at least one, so Import pseudo-sources
    /// can receive broker injections).
    queues: Vec<VecDeque<StreamItem>>,
    /// Per-input-port final-punctuation tracking, maintained by the
    /// container so the default [`Operator::on_punct`] can coalesce finals
    /// of multi-input operators correctly.
    finals_seen: Vec<bool>,
    /// Local destinations per output port: `(slot index, input port)`.
    local_routes: Vec<Vec<(usize, usize)>>,
    /// Remote destinations per output port.
    remote_routes: Vec<Vec<RemoteDest>>,
    /// Output ports carrying an export spec.
    exported_ports: Vec<bool>,
    /// Round-robin cursor over input ports.
    next_port: usize,
}

/// The PE container.
pub struct PeRuntime {
    pe_index: usize,
    slots: Vec<OpSlot>,
    op_index: BTreeMap<String, usize>,
    metrics: MetricStore,
    rng: SimRng,
    crashed: Option<String>,
    /// Reusable encode scratch for the remote transport path.
    codec: TupleCodec,
}

/// One scheduling decision from the drain loop: a run of consecutive tuples
/// from one port, or a single punctuation (punctuation is never batched).
enum PoppedRun {
    Batch(usize, TupleBatch),
    Punct(usize, Punct),
}

/// Whether batched delivery is on. `SPS_BATCH=off|0|false` forces the
/// per-tuple reference path — single-item runs dispatched through
/// `on_tuple`, one transport payload per tuple — which the batching
/// systest diffs against to prove the batched data path is
/// observationally identical. Read once per process.
fn batching_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("SPS_BATCH").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

impl PeRuntime {
    /// Instantiates all operators the ADL assigns to `pe_index` and wires
    /// intra-/inter-PE routes. `rng` should be forked per PE for
    /// determinism under restarts.
    pub fn build(
        adl: &Adl,
        pe_index: usize,
        registry: &OperatorRegistry,
        rng: SimRng,
    ) -> Result<Self, EngineError> {
        let mut slots = Vec::new();
        let mut op_index = BTreeMap::new();
        for op in adl.operators.iter().filter(|o| o.pe == pe_index) {
            let instance = registry.instantiate(op)?;
            let cost = instance.cost_per_tuple();
            op_index.insert(op.name.clone(), slots.len());
            slots.push(OpSlot {
                name: op.name.clone(),
                kind: op.kind.clone(),
                op: instance,
                outputs: op.outputs,
                cost,
                queues: (0..op.inputs.max(1)).map(|_| VecDeque::new()).collect(),
                finals_seen: vec![false; op.inputs.max(1)],
                local_routes: vec![Vec::new(); op.outputs],
                remote_routes: vec![Vec::new(); op.outputs],
                exported_ports: vec![false; op.outputs],
                next_port: 0,
            });
        }
        for stream in &adl.streams {
            let Some(&from_slot) = op_index.get(&stream.from_op) else {
                continue; // source is in another PE
            };
            if let Some(&to_slot) = op_index.get(&stream.to_op) {
                slots[from_slot].local_routes[stream.from_port].push((to_slot, stream.to_port));
            } else {
                let to_pe = adl
                    .pe_of(&stream.to_op)
                    .ok_or_else(|| EngineError::BadParam {
                        op: stream.to_op.clone(),
                        message: "stream target not in ADL".into(),
                    })?;
                slots[from_slot].remote_routes[stream.from_port].push(RemoteDest {
                    pe: to_pe,
                    op: stream.to_op.clone(),
                    port: stream.to_port,
                });
            }
        }
        for export in &adl.exports {
            if let Some(&slot) = op_index.get(&export.op) {
                slots[slot].exported_ports[export.port] = true;
            }
        }
        Ok(PeRuntime {
            pe_index,
            slots,
            op_index,
            metrics: MetricStore::new(),
            rng,
            crashed: None,
            codec: TupleCodec::new(),
        })
    }

    pub fn pe_index(&self) -> usize {
        self.pe_index
    }

    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    pub fn operator_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.name.as_str()).collect()
    }

    pub fn metrics(&self) -> &MetricStore {
        &self.metrics
    }

    /// Observable contents of a sink-like operator.
    pub fn tap(&self, op_name: &str) -> Option<Vec<Tuple>> {
        let &slot = self.op_index.get(op_name)?;
        self.slots[slot].op.tap()
    }

    /// Injects an item into an operator's input queue (remote deliveries and
    /// broker import routing).
    pub fn inject(
        &mut self,
        op_name: &str,
        port: usize,
        item: StreamItem,
    ) -> Result<(), EngineError> {
        if self.crashed.is_some() {
            return Ok(()); // a dead process silently loses input
        }
        let &slot = self
            .op_index
            .get(op_name)
            .ok_or_else(|| EngineError::BadParam {
                op: op_name.to_string(),
                message: "inject target not in this PE".into(),
            })?;
        let queues = &mut self.slots[slot].queues;
        let port = port.min(queues.len().saturating_sub(1));
        queues[port].push_back(item);
        Ok(())
    }

    /// Decodes and injects a serialized remote delivery — one item frame or
    /// a whole batch frame (the tuples land on the port queue in batch
    /// order, exactly as per-item deliveries would).
    pub fn receive(&mut self, delivery: &RemoteDelivery) -> Result<(), EngineError> {
        match codec::decode_frame(delivery.payload.clone())? {
            codec::Decoded::Item(item) => {
                if let StreamItem::Tuple(t) = &item {
                    self.metrics.pe_add(
                        self.pe_index,
                        builtin::N_TUPLE_BYTES_PROCESSED,
                        t.approx_bytes() as i64,
                    );
                }
                self.inject(&delivery.dest.op, delivery.dest.port, item)
            }
            codec::Decoded::Batch(batch) => {
                self.metrics.pe_add(
                    self.pe_index,
                    builtin::N_TUPLE_BYTES_PROCESSED,
                    batch.approx_bytes() as i64,
                );
                for t in batch {
                    self.inject(&delivery.dest.op, delivery.dest.port, StreamItem::Tuple(t))?;
                }
                Ok(())
            }
        }
    }

    /// Runs one scheduling quantum: source ticks, then queue draining up to
    /// `budget` units of work.
    pub fn step(&mut self, now: SimTime, quantum: SimDuration, budget: u32) -> PeOutput {
        let mut out = PeOutput::default();
        if self.crashed.is_some() {
            return out;
        }

        // Phase 1: ticks (sources and periodic operators).
        for slot_idx in 0..self.slots.len() {
            if self.tick_slot(slot_idx, now, quantum, &mut out) {
                return self.crash(out);
            }
        }

        // Phase 2: drain queues round-robin until budget exhausted. Each
        // visit to a slot hands down a whole run of consecutive tuples from
        // one port as a single `on_batch` call; punctuation is delivered
        // singly so batch boundaries never cross a punct.
        let mut spent: u64 = 0;
        loop {
            let mut progressed = false;
            for slot_idx in 0..self.slots.len() {
                if spent >= budget as u64 {
                    break;
                }
                let cost = self.slots[slot_idx].cost as u64;
                // Largest run the remaining budget admits; matches the
                // legacy loop's overshoot (an item started under budget is
                // always charged in full).
                let headroom = (budget as u64 - spent).div_ceil(cost.max(1));
                let Some(run) = self.pop_run(slot_idx, headroom as usize) else {
                    continue;
                };
                progressed = true;
                let crashed = match run {
                    PoppedRun::Punct(port, punct) => {
                        spent += cost;
                        self.process_punct(slot_idx, port, punct, now, quantum, &mut out)
                    }
                    PoppedRun::Batch(port, batch) => {
                        spent += cost * batch.len() as u64;
                        self.process_batch(slot_idx, port, batch, now, quantum, &mut out)
                    }
                };
                if crashed {
                    out.work_done = spent;
                    return self.crash(out);
                }
            }
            if !progressed || spent >= budget as u64 {
                break;
            }
        }
        out.work_done = spent;

        // Phase 3: refresh queue-size metrics.
        self.refresh_queue_metrics();
        out
    }

    fn crash(&mut self, mut out: PeOutput) -> PeOutput {
        out.crashed = self.crashed.clone();
        // A crashing process loses its queued input.
        for slot in &mut self.slots {
            for q in &mut slot.queues {
                q.clear();
            }
        }
        out
    }

    /// Updates per-operator and per-port `queueSize` metrics.
    pub fn refresh_queue_metrics(&mut self) {
        for slot in &self.slots {
            let total: usize = slot.queues.iter().map(VecDeque::len).sum();
            self.metrics
                .op_set(&slot.name, builtin::QUEUE_SIZE, total as i64);
            for (port, q) in slot.queues.iter().enumerate() {
                self.metrics.set(
                    MetricKey::OperatorPort(slot.name.clone(), port, builtin::QUEUE_SIZE.into()),
                    q.len() as i64,
                );
            }
        }
    }

    /// Pops the next run for a slot, rotating over input ports: up to
    /// `max_items` consecutive tuples from one port (stopping at queued
    /// punctuation), or one punctuation. Slots with several input ports keep
    /// per-item runs — the legacy loop rotates ports after *every* item, so
    /// longer runs would change a multi-input operator's interleaving.
    fn pop_run(&mut self, slot_idx: usize, max_items: usize) -> Option<PoppedRun> {
        let slot = &mut self.slots[slot_idx];
        let ports = slot.queues.len();
        for offset in 0..ports {
            let port = (slot.next_port + offset) % ports;
            let queue = &mut slot.queues[port];
            match queue.front() {
                None => continue,
                Some(StreamItem::Punct(_)) => {
                    let Some(StreamItem::Punct(p)) = queue.pop_front() else {
                        unreachable!("front was a punct");
                    };
                    slot.next_port = (port + 1) % ports;
                    return Some(PoppedRun::Punct(port, p));
                }
                Some(StreamItem::Tuple(_)) => {
                    let cap = if ports > 1 || !batching_enabled() {
                        1
                    } else {
                        max_items.max(1)
                    };
                    let mut batch = TupleBatch::with_capacity(cap.min(queue.len()));
                    while batch.len() < cap {
                        match queue.front() {
                            Some(StreamItem::Tuple(_)) => {
                                let Some(StreamItem::Tuple(t)) = queue.pop_front() else {
                                    unreachable!("front was a tuple");
                                };
                                batch.push(t);
                            }
                            _ => break,
                        }
                    }
                    slot.next_port = (port + 1) % ports;
                    return Some(PoppedRun::Batch(port, batch));
                }
            }
        }
        None
    }

    /// Returns true if the operator faulted.
    fn tick_slot(
        &mut self,
        slot_idx: usize,
        now: SimTime,
        quantum: SimDuration,
        out: &mut PeOutput,
    ) -> bool {
        let slot = &mut self.slots[slot_idx];
        let mut ctx = OpCtx::new(
            now,
            quantum,
            &slot.name,
            slot.outputs,
            &mut self.metrics,
            &mut self.rng,
        );
        slot.op.on_tick(&mut ctx);
        let emitted = ctx.take_emitted();
        let fault = ctx.take_fault();
        self.route(slot_idx, emitted, out);
        if let Some(msg) = fault {
            self.crashed = Some(format!("{}: {msg}", self.slots[slot_idx].name));
            return true;
        }
        false
    }

    /// Delivers a run of consecutive tuples from one port through a single
    /// `on_batch` call. Returns true if the operator faulted; in that case
    /// the whole run was consumed — tuples after the faulting one are lost
    /// with the crashing process, like the cleared input queues.
    fn process_batch(
        &mut self,
        slot_idx: usize,
        port: usize,
        batch: TupleBatch,
        now: SimTime,
        quantum: SimDuration,
        out: &mut PeOutput,
    ) -> bool {
        // Consumption-side built-in metrics, amortized over the run.
        let k = batch.len() as i64;
        let name = self.slots[slot_idx].name.clone();
        self.metrics.op_add(&name, builtin::N_TUPLES_PROCESSED, k);
        self.metrics.add(
            MetricKey::OperatorPort(name, port, builtin::N_TUPLES_PROCESSED.into()),
            k,
        );
        self.metrics.pe_add(
            self.pe_index,
            builtin::N_TUPLE_BYTES_PROCESSED,
            batch.approx_bytes() as i64,
        );

        let slot = &mut self.slots[slot_idx];
        let all_final = slot.finals_seen.iter().all(|&s| s);
        let mut ctx = OpCtx::new(
            now,
            quantum,
            &slot.name,
            slot.outputs,
            &mut self.metrics,
            &mut self.rng,
        );
        ctx.set_all_inputs_final(all_final);
        if batching_enabled() {
            slot.op.on_batch(port, batch, &mut ctx);
        } else {
            // Reference path: dispatch each tuple through `on_tuple`,
            // bypassing every batched override.
            for tuple in batch {
                if ctx.has_fault() {
                    break;
                }
                slot.op.on_tuple(port, tuple, &mut ctx);
            }
        }
        let emitted = ctx.take_emitted();
        let fault = ctx.take_fault();
        self.route(slot_idx, emitted, out);
        if let Some(msg) = fault {
            self.crashed = Some(format!("{}: {msg}", self.slots[slot_idx].name));
            return true;
        }
        false
    }

    /// Returns true if the operator faulted.
    fn process_punct(
        &mut self,
        slot_idx: usize,
        port: usize,
        punct: Punct,
        now: SimTime,
        quantum: SimDuration,
        out: &mut PeOutput,
    ) -> bool {
        if punct == Punct::Final {
            let name = self.slots[slot_idx].name.clone();
            self.metrics
                .op_add(&name, builtin::N_FINAL_PUNCTS_PROCESSED, 1);
        }
        let slot = &mut self.slots[slot_idx];
        if punct == Punct::Final {
            if let Some(seen) = slot.finals_seen.get_mut(port) {
                *seen = true;
            }
        }
        let all_final = slot.finals_seen.iter().all(|&s| s);
        let mut ctx = OpCtx::new(
            now,
            quantum,
            &slot.name,
            slot.outputs,
            &mut self.metrics,
            &mut self.rng,
        );
        ctx.set_all_inputs_final(all_final);
        slot.op.on_punct(port, punct, &mut ctx);
        let emitted = ctx.take_emitted();
        let fault = ctx.take_fault();
        self.route(slot_idx, emitted, out);
        if let Some(msg) = fault {
            self.crashed = Some(format!("{}: {msg}", self.slots[slot_idx].name));
            return true;
        }
        false
    }

    /// Routes items emitted by `slot_idx` to local queues, the remote
    /// outbox, and the export outbox. Runs of consecutive tuples on one
    /// output port are serialized as a single batch payload per remote
    /// channel; local queues and the (cross-job) export path stay per-item,
    /// preserving emission order exactly.
    fn route(&mut self, slot_idx: usize, emitted: Vec<(usize, StreamItem)>, out: &mut PeOutput) {
        if emitted.is_empty() {
            return;
        }
        // Gather destinations first (immutable pass), then apply (mutable
        // pass) to keep the borrow checker happy with self-loops.
        let mut local: Vec<(usize, usize, StreamItem)> = Vec::new();
        {
            let slot = &self.slots[slot_idx];
            let name = &slot.name;
            let mut i = 0;
            while i < emitted.len() {
                let (port, item) = &emitted[i];
                let port = *port;
                // Extend the run while consecutive emissions are tuples on
                // the same port; puncts and port switches end it.
                let mut j = i + 1;
                if matches!(item, StreamItem::Tuple(_)) && batching_enabled() {
                    while j < emitted.len()
                        && emitted[j].0 == port
                        && matches!(emitted[j].1, StreamItem::Tuple(_))
                    {
                        j += 1;
                    }
                }
                let run = &emitted[i..j];
                if let StreamItem::Tuple(_) = item {
                    self.metrics
                        .op_add(name, builtin::N_TUPLES_SUBMITTED, run.len() as i64);
                    self.metrics.add(
                        MetricKey::OperatorPort(
                            name.clone(),
                            port,
                            builtin::N_TUPLES_SUBMITTED.into(),
                        ),
                        run.len() as i64,
                    );
                }
                let exported = port < slot.exported_ports.len() && slot.exported_ports[port];
                let routed = port < slot.local_routes.len();
                for (_, it) in run {
                    if exported {
                        out.exported.push(ExportedItem {
                            op: name.clone(),
                            port,
                            item: it.clone(),
                        });
                    }
                    if routed {
                        for &(to_slot, to_port) in &slot.local_routes[port] {
                            local.push((to_slot, to_port, it.clone()));
                        }
                    }
                }
                if routed && !slot.remote_routes[port].is_empty() {
                    let payload = if run.len() > 1 {
                        self.codec.encode_tuple_run(
                            run.len(),
                            run.iter().map(|(_, it)| match it {
                                StreamItem::Tuple(t) => t,
                                StreamItem::Punct(_) => unreachable!("runs hold only tuples"),
                            }),
                        )
                    } else {
                        self.codec.encode_item(item)
                    };
                    for dest in &slot.remote_routes[port] {
                        out.remote.push(RemoteDelivery {
                            dest: dest.clone(),
                            payload: payload.clone(),
                            items: run.len() as u32,
                        });
                    }
                }
                i = j;
            }
        }
        for (to_slot, to_port, item) in local {
            self.slots[to_slot].queues[to_port].push_back(item);
        }
    }

    // ---- checkpoint / restore ----------------------------------------------

    /// Snapshots every operator's recoverable state (plus the container's
    /// final-punct tracking, the per-port input queues, and the metric
    /// store) into a versioned [`PeCheckpoint`]. Queues are captured in
    /// wire encoding (format v2) at batch granularity — one blob per port,
    /// with runs of consecutive tuples coalesced into batch frames — so
    /// tuples in flight *inside* the container at snapshot time survive a
    /// restore; tuples delivered after the snapshot are replayed from the
    /// sender-side upstream-backup buffers instead.
    pub fn checkpoint(&self, now: SimTime) -> PeCheckpoint {
        PeCheckpoint {
            format_version: CKPT_FORMAT_VERSION,
            pe_index: self.pe_index,
            taken_at: now,
            ops: self
                .slots
                .iter()
                .map(|slot| OpCheckpoint {
                    name: slot.name.clone(),
                    kind: slot.kind.clone(),
                    finals_seen: slot.finals_seen.clone(),
                    blob: slot.op.checkpoint(),
                })
                .collect(),
            queues: self
                .slots
                .iter()
                .map(|slot| slot.queues.iter().map(codec::encode_queue).collect())
                .collect(),
            metrics: self.metrics.snapshot(),
        }
    }

    /// Restores operator state from a checkpoint taken by an earlier
    /// incarnation of the same ADL PE. Fails (leaving the container in an
    /// unspecified, must-be-discarded state) when the checkpoint does not
    /// match this container's shape — wrong format version, PE index, or
    /// operator list — or when any blob cannot be decoded; the caller is
    /// expected to fall back to a freshly built container. Returns the
    /// number of operators whose state blob was applied.
    pub fn restore(&mut self, ckpt: &PeCheckpoint) -> Result<usize, EngineError> {
        if ckpt.format_version != CKPT_FORMAT_VERSION {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint format v{} incompatible with v{CKPT_FORMAT_VERSION}",
                ckpt.format_version
            )));
        }
        if ckpt.pe_index != self.pe_index {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint is for PE {} not {}",
                ckpt.pe_index, self.pe_index
            )));
        }
        if ckpt.ops.len() != self.slots.len() {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint has {} operators, container has {} (ADL shape changed)",
                ckpt.ops.len(),
                self.slots.len()
            )));
        }
        if ckpt.queues.len() != self.slots.len() {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint has queues for {} operators, container has {}",
                ckpt.queues.len(),
                self.slots.len()
            )));
        }
        let mut restored = 0;
        for (slot, op_ckpt) in self.slots.iter_mut().zip(&ckpt.ops) {
            if slot.name != op_ckpt.name || slot.kind != op_ckpt.kind {
                return Err(EngineError::Checkpoint(format!(
                    "checkpoint operator {}({}) does not match container slot {}({})",
                    op_ckpt.name, op_ckpt.kind, slot.name, slot.kind
                )));
            }
            if op_ckpt.finals_seen.len() == slot.finals_seen.len() {
                slot.finals_seen.copy_from_slice(&op_ckpt.finals_seen);
            } else {
                return Err(EngineError::Checkpoint(format!(
                    "checkpoint final tracking arity mismatch for {}",
                    slot.name
                )));
            }
            if let Some(blob) = &op_ckpt.blob {
                slot.op.restore(blob)?;
                restored += 1;
            }
        }
        // Repopulate the input queues from the captured wire encodings, so
        // tuples that were in flight inside the container at snapshot time
        // come back exactly (v2 exactly-once recovery).
        for (slot, q_ckpt) in self.slots.iter_mut().zip(&ckpt.queues) {
            if q_ckpt.len() != slot.queues.len() {
                return Err(EngineError::Checkpoint(format!(
                    "checkpoint queue arity mismatch for {}: {} ports vs {}",
                    slot.name,
                    q_ckpt.len(),
                    slot.queues.len()
                )));
            }
            for (queue, blob) in slot.queues.iter_mut().zip(q_ckpt) {
                queue.clear();
                queue.extend(codec::decode_queue(blob.clone())?);
            }
        }
        self.metrics = MetricStore::new();
        for (key, value) in &ckpt.metrics {
            // Share the checkpoint's interned keys instead of re-cloning
            // every name string into the revived store.
            self.metrics.set_shared(Arc::clone(key), *value);
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_model::adl::{AdlExport, AdlOperator, AdlPe, AdlStream};
    use sps_model::logical::ExportSpec;
    use sps_model::value::ParamMap;
    use sps_model::Value;

    fn op(
        name: &str,
        kind: &str,
        pe: usize,
        inputs: usize,
        outputs: usize,
        params: ParamMap,
    ) -> AdlOperator {
        AdlOperator {
            name: name.into(),
            kind: kind.into(),
            composite_path: vec![],
            params,
            inputs,
            outputs,
            custom_metrics: vec![],
            pe,
            restartable: true,
            checkpointable: true,
        }
    }

    fn p(pairs: &[(&str, Value)]) -> ParamMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// beacon -> filter -> sink fused in one PE.
    fn pipeline_adl() -> Adl {
        let operators = vec![
            op("src", "Beacon", 0, 0, 1, p(&[("rate", Value::Float(50.0))])),
            op(
                "flt",
                "Filter",
                0,
                1,
                1,
                p(&[("predicate", Value::Str("seq % 2 == 0".into()))]),
            ),
            op("snk", "Sink", 0, 1, 0, ParamMap::new()),
        ];
        Adl {
            app_name: "Pipe".into(),
            pes: vec![AdlPe {
                index: 0,
                operators: operators.iter().map(|o| o.name.clone()).collect(),
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![
                AdlStream {
                    from_op: "src".into(),
                    from_port: 0,
                    to_op: "flt".into(),
                    to_port: 0,
                },
                AdlStream {
                    from_op: "flt".into(),
                    from_port: 0,
                    to_op: "snk".into(),
                    to_port: 0,
                },
            ],
            operators,
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        }
    }

    fn registry() -> OperatorRegistry {
        OperatorRegistry::with_builtins()
    }

    #[test]
    fn fused_pipeline_flows_in_one_pe() {
        let adl = pipeline_adl();
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let out = pe.step(SimTime::ZERO, SimDuration::from_millis(100), 10_000);
        assert!(out.crashed.is_none());
        assert!(out.remote.is_empty());
        // 50/s at 100ms = 5 tuples; evens pass: seq 0, 2, 4.
        let tap = pe.tap("snk").unwrap();
        assert_eq!(tap.len(), 3);
        assert_eq!(tap[0].get_int("seq"), Some(0));
        assert_eq!(
            pe.metrics().op_get("flt", builtin::N_TUPLES_PROCESSED),
            Some(5)
        );
        assert_eq!(
            pe.metrics().op_get("flt", builtin::N_TUPLES_SUBMITTED),
            Some(3)
        );
        assert_eq!(pe.metrics().op_get("flt", "nDiscarded"), Some(2));
        assert_eq!(
            pe.metrics().op_get("snk", builtin::N_TUPLES_PROCESSED),
            Some(3)
        );
        assert!(
            pe.metrics()
                .pe_get(0, builtin::N_TUPLE_BYTES_PROCESSED)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn budget_limits_work_and_queues_grow() {
        let adl = pipeline_adl();
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        // Budget of 2: sources still produce 5, only 2 items drained.
        let out = pe.step(SimTime::ZERO, SimDuration::from_millis(100), 2);
        assert_eq!(out.work_done, 2);
        let q = pe.metrics().op_get("flt", builtin::QUEUE_SIZE).unwrap();
        assert!(q >= 3, "expected backlog, queueSize={q}");
    }

    #[test]
    fn cross_pe_streams_are_serialized() {
        let mut adl = pipeline_adl();
        // Move sink to PE 1.
        adl.operators[2].pe = 1;
        adl.pes[0].operators = vec!["src".into(), "flt".into()];
        adl.pes.push(AdlPe {
            index: 1,
            operators: vec!["snk".into()],
            host_pool: None,
            host_exlocate: None,
        });
        let mut pe0 = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let mut pe1 = PeRuntime::build(&adl, 1, &registry(), SimRng::new(2)).unwrap();
        let out0 = pe0.step(SimTime::ZERO, SimDuration::from_millis(100), 10_000);
        // Consecutive same-port tuples coalesce into batch payloads, so the
        // delivery count is below the tuple count but the item total matches.
        let items: u32 = out0.remote.iter().map(|d| d.items).sum();
        assert_eq!(items, 3);
        assert!(out0.remote.len() <= 3);
        assert!(out0
            .remote
            .iter()
            .all(|d| d.dest.pe == 1 && d.dest.op == "snk"));
        for d in &out0.remote {
            pe1.receive(d).unwrap();
        }
        pe1.step(
            SimTime::from_millis(100),
            SimDuration::from_millis(100),
            10_000,
        );
        assert_eq!(pe1.tap("snk").unwrap().len(), 3);
    }

    #[test]
    fn operator_fault_crashes_pe() {
        let operators = vec![
            op("src", "Beacon", 0, 0, 1, p(&[("rate", Value::Float(50.0))])),
            op(
                "bomb",
                "FaultInject",
                0,
                1,
                1,
                p(&[("fault_after", Value::Int(3))]),
            ),
            op("snk", "Sink", 0, 1, 0, ParamMap::new()),
        ];
        let adl = Adl {
            app_name: "Boom".into(),
            pes: vec![AdlPe {
                index: 0,
                operators: operators.iter().map(|o| o.name.clone()).collect(),
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![
                AdlStream {
                    from_op: "src".into(),
                    from_port: 0,
                    to_op: "bomb".into(),
                    to_port: 0,
                },
                AdlStream {
                    from_op: "bomb".into(),
                    from_port: 0,
                    to_op: "snk".into(),
                    to_port: 0,
                },
            ],
            operators,
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        };
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let out = pe.step(SimTime::ZERO, SimDuration::from_millis(100), 10_000);
        let msg = out.crashed.expect("PE should crash");
        assert!(msg.contains("bomb"));
        assert!(msg.contains("injected fault"));
        assert!(pe.is_crashed());
        // A crashed PE does nothing further and swallows injections.
        let out2 = pe.step(
            SimTime::from_millis(100),
            SimDuration::from_millis(100),
            10_000,
        );
        assert!(out2.crashed.is_none());
        assert_eq!(out2.work_done, 0);
        assert!(pe
            .inject("bomb", 0, StreamItem::Tuple(Tuple::new()))
            .is_ok());
    }

    #[test]
    fn exported_ports_are_captured() {
        let mut adl = pipeline_adl();
        adl.exports.push(AdlExport {
            op: "flt".into(),
            port: 0,
            spec: ExportSpec::by_id("evens"),
        });
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let out = pe.step(SimTime::ZERO, SimDuration::from_millis(100), 10_000);
        assert_eq!(out.exported.len(), 3);
        assert!(out.exported.iter().all(|e| e.op == "flt" && e.port == 0));
        // Export does not steal from local consumers.
        assert_eq!(pe.tap("snk").unwrap().len(), 3);
    }

    #[test]
    fn final_punct_counted_and_propagated() {
        let operators = vec![
            op(
                "src",
                "Beacon",
                0,
                0,
                1,
                p(&[("rate", Value::Float(100.0)), ("limit", Value::Int(2))]),
            ),
            op("mid", "PassThrough", 0, 1, 1, ParamMap::new()),
            op("snk", "Sink", 0, 1, 0, ParamMap::new()),
        ];
        let adl = Adl {
            app_name: "Fin".into(),
            pes: vec![AdlPe {
                index: 0,
                operators: operators.iter().map(|o| o.name.clone()).collect(),
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![
                AdlStream {
                    from_op: "src".into(),
                    from_port: 0,
                    to_op: "mid".into(),
                    to_port: 0,
                },
                AdlStream {
                    from_op: "mid".into(),
                    from_port: 0,
                    to_op: "snk".into(),
                    to_port: 0,
                },
            ],
            operators,
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        };
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        pe.step(SimTime::ZERO, SimDuration::from_millis(100), 10_000);
        assert_eq!(
            pe.metrics()
                .op_get("snk", builtin::N_FINAL_PUNCTS_PROCESSED),
            Some(1)
        );
        assert_eq!(pe.tap("snk").unwrap().len(), 2);
    }

    #[test]
    fn inject_unknown_operator_errors() {
        let adl = pipeline_adl();
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        assert!(pe
            .inject("ghost", 0, StreamItem::Tuple(Tuple::new()))
            .is_err());
    }

    #[test]
    fn unknown_kind_fails_build() {
        let mut adl = pipeline_adl();
        adl.operators[1].kind = "Mystery".into();
        assert!(matches!(
            PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)),
            Err(EngineError::UnknownOperatorKind(_))
        ));
    }

    #[test]
    fn operator_names_lists_pe_members() {
        let adl = pipeline_adl();
        let pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        assert_eq!(pe.operator_names(), vec!["src", "flt", "snk"]);
        assert_eq!(pe.pe_index(), 0);
    }

    #[test]
    fn checkpoint_restore_preserves_state_and_digest() {
        let adl = pipeline_adl();
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let q = SimDuration::from_millis(100);
        for i in 0..5u64 {
            pe.step(SimTime::from_millis(i * 100), q, 10_000);
        }
        let tap_before = pe.tap("snk").unwrap();
        assert!(!tap_before.is_empty());
        let ckpt = pe.checkpoint(SimTime::from_millis(500));
        assert!(ckpt.stateful_ops() >= 2, "beacon + sink are stateful");
        assert!(ckpt.state_bytes() > 0);

        // Restore into a freshly built container (the restart path).
        let mut revived = PeRuntime::build(&adl, 0, &registry(), SimRng::new(99)).unwrap();
        let restored = revived.restore(&ckpt).unwrap();
        assert_eq!(restored, ckpt.stateful_ops());
        assert_eq!(revived.tap("snk").unwrap(), tap_before);
        assert_eq!(
            revived.metrics().op_get("flt", builtin::N_TUPLES_PROCESSED),
            pe.metrics().op_get("flt", builtin::N_TUPLES_PROCESSED)
        );
        // Canonical encoding: re-checkpointing the restored container
        // reproduces the original digest (how the runtime verifies restores).
        let again = revived.checkpoint(SimTime::from_secs(60));
        assert_eq!(again.digest(), ckpt.digest());

        // The revived beacon continues the sequence instead of rewinding to
        // zero: the next emitted seq picks up where the checkpoint left off.
        let last_seq = tap_before.last().unwrap().get_int("seq").unwrap();
        revived.step(SimTime::from_millis(600), q, 10_000);
        let tap_after = revived.tap("snk").unwrap();
        let next_seq = tap_after[tap_before.len()].get_int("seq").unwrap();
        assert!(next_seq > last_seq, "{next_seq} vs {last_seq}");
    }

    #[test]
    fn restore_rejects_incompatible_checkpoints() {
        let adl = pipeline_adl();
        let pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let good = pe.checkpoint(SimTime::ZERO);

        let mut target = PeRuntime::build(&adl, 0, &registry(), SimRng::new(2)).unwrap();
        // Wrong format version.
        let mut bad = good.clone();
        bad.format_version += 1;
        assert!(target.restore(&bad).is_err());
        // Wrong PE index.
        let mut bad = good.clone();
        bad.pe_index = 7;
        assert!(target.restore(&bad).is_err());
        // Renamed operator (ADL shape change).
        let mut bad = good.clone();
        bad.ops[1].name = "ghost".into();
        assert!(target.restore(&bad).is_err());
        // Changed kind under the same name.
        let mut bad = good.clone();
        bad.ops[0].kind = "Sink".into();
        assert!(target.restore(&bad).is_err());
        // Dropped operator entry.
        let mut bad = good.clone();
        bad.ops.pop();
        assert!(target.restore(&bad).is_err());
        // The pristine checkpoint still applies.
        assert!(target.restore(&good).is_ok());
    }

    /// Regression for the multi-input early-final bug at container level: an
    /// operator relying on the *default* `on_punct` (here PassThrough with
    /// two declared inputs) must not emit `Final` downstream until every
    /// input port delivered its own final punctuation.
    #[test]
    fn two_input_default_op_finalizes_after_both_ports() {
        let operators = vec![
            op(
                "a",
                "Beacon",
                0,
                0,
                1,
                p(&[("rate", Value::Float(100.0)), ("limit", Value::Int(2))]),
            ),
            op(
                "b",
                "Beacon",
                0,
                0,
                1,
                p(&[("rate", Value::Float(10.0)), ("limit", Value::Int(20))]),
            ),
            // Two-input pass-through NOT using FinalPunctTracker.
            op("mix", "PassThrough", 0, 2, 1, ParamMap::new()),
            op("snk", "Sink", 0, 1, 0, ParamMap::new()),
        ];
        let adl = Adl {
            app_name: "Mix".into(),
            pes: vec![AdlPe {
                index: 0,
                operators: operators.iter().map(|o| o.name.clone()).collect(),
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![
                AdlStream {
                    from_op: "a".into(),
                    from_port: 0,
                    to_op: "mix".into(),
                    to_port: 0,
                },
                AdlStream {
                    from_op: "b".into(),
                    from_port: 0,
                    to_op: "mix".into(),
                    to_port: 1,
                },
                AdlStream {
                    from_op: "mix".into(),
                    from_port: 0,
                    to_op: "snk".into(),
                    to_port: 0,
                },
            ],
            operators,
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        };
        let mut pe = PeRuntime::build(&adl, 0, &registry(), SimRng::new(1)).unwrap();
        let q = SimDuration::from_millis(100);
        // Beacon a (100/s, limit 2) finishes on the first tick; beacon b
        // (10/s, limit 20) keeps going for 2 seconds.
        pe.step(SimTime::ZERO, q, 10_000);
        assert_eq!(
            pe.metrics()
                .op_get("snk", builtin::N_FINAL_PUNCTS_PROCESSED)
                .unwrap_or(0),
            0,
            "final must not propagate after only one input finished"
        );
        for i in 1..=25u64 {
            pe.step(SimTime::from_millis(i * 100), q, 10_000);
        }
        assert_eq!(
            pe.metrics()
                .op_get("snk", builtin::N_FINAL_PUNCTS_PROCESSED),
            Some(1),
            "exactly one final once both inputs finished"
        );
        // All 22 tuples made it through the merge point.
        assert_eq!(pe.tap("snk").unwrap().len(), 22);
    }
}
