//! Expression mini-language for parameterizing Filter/Functor/Split
//! operators from ADL params (strings survive serialization, unlike
//! closures).
//!
//! Grammar (recursive descent, C-like precedence):
//! ```text
//! expr    := or
//! or      := and ("||" and)*
//! and     := cmp ("&&" cmp)*
//! cmp     := add (("=="|"!="|"<="|">="|"<"|">") add)?
//! add     := mul (("+"|"-") mul)*
//! mul     := unary (("*"|"/"|"%") unary)*
//! unary   := ("!"|"-") unary | primary
//! primary := int | float | "string" | true | false | ident | "(" expr ")"
//! ```
//! Identifiers reference tuple attributes. Arithmetic coerces int→float when
//! mixed; `+` concatenates strings; comparisons work on numbers and strings.

use crate::error::EngineError;
use crate::tuple::Tuple;
use sps_model::Value;

/// Parsed expression AST.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Literal(Value),
    Attr(String),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl Expr {
    /// Parses an expression from source text.
    pub fn parse(src: &str) -> Result<Expr, EngineError> {
        let tokens = tokenize(src)?;
        let mut p = ExprParser { tokens, pos: 0 };
        let e = p.parse_or()?;
        if p.pos != p.tokens.len() {
            return Err(EngineError::Expr(format!(
                "unexpected trailing token {:?}",
                p.tokens[p.pos]
            )));
        }
        Ok(e)
    }

    /// Evaluates against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, EngineError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Attr(name) => tuple
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::Expr(format!("missing attribute '{name}'"))),
            Expr::Unary(op, inner) => {
                let v = inner.eval(tuple)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(type_err("!", &other)),
                    },
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(type_err("-", &other)),
                    },
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                // Short-circuit logical operators.
                match op {
                    BinaryOp::And => {
                        return match lhs.eval(tuple)? {
                            Value::Bool(false) => Ok(Value::Bool(false)),
                            Value::Bool(true) => expect_bool(rhs.eval(tuple)?),
                            other => Err(type_err("&&", &other)),
                        };
                    }
                    BinaryOp::Or => {
                        return match lhs.eval(tuple)? {
                            Value::Bool(true) => Ok(Value::Bool(true)),
                            Value::Bool(false) => expect_bool(rhs.eval(tuple)?),
                            other => Err(type_err("||", &other)),
                        };
                    }
                    _ => {}
                }
                let l = lhs.eval(tuple)?;
                let r = rhs.eval(tuple)?;
                eval_binary(*op, l, r)
            }
        }
    }

    /// Evaluates, requiring a boolean result (Filter predicates).
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool, EngineError> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            other => Err(EngineError::Expr(format!(
                "expected bool result, got {other:?}"
            ))),
        }
    }

    /// Attribute names the expression references (used for dependency
    /// validation at graph-build time).
    pub fn referenced_attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e str>) {
            match e {
                Expr::Literal(_) => {}
                Expr::Attr(n) => {
                    if !out.contains(&n.as_str()) {
                        out.push(n);
                    }
                }
                Expr::Unary(_, i) => walk(i, out),
                Expr::Binary(_, l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

fn expect_bool(v: Value) -> Result<Value, EngineError> {
    match v {
        Value::Bool(_) => Ok(v),
        other => Err(type_err("logical operand", &other)),
    }
}

fn type_err(op: &str, v: &Value) -> EngineError {
    EngineError::Expr(format!("type error: {op} applied to {v:?}"))
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value, EngineError> {
    use BinaryOp::*;
    // String concatenation and comparison.
    if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
        return match op {
            Add => Ok(Value::Str(format!("{a}{b}"))),
            Eq => Ok(Value::Bool(a == b)),
            Ne => Ok(Value::Bool(a != b)),
            Lt => Ok(Value::Bool(a < b)),
            Le => Ok(Value::Bool(a <= b)),
            Gt => Ok(Value::Bool(a > b)),
            Ge => Ok(Value::Bool(a >= b)),
            _ => Err(EngineError::Expr(format!("{op:?} not defined on strings"))),
        };
    }
    if let (Value::Bool(a), Value::Bool(b)) = (&l, &r) {
        return match op {
            Eq => Ok(Value::Bool(a == b)),
            Ne => Ok(Value::Bool(a != b)),
            _ => Err(EngineError::Expr(format!("{op:?} not defined on bools"))),
        };
    }
    // Integer-preserving arithmetic when both sides are ints.
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        return Ok(match op {
            Add => Value::Int(a.wrapping_add(b)),
            Sub => Value::Int(a.wrapping_sub(b)),
            Mul => Value::Int(a.wrapping_mul(b)),
            Div => {
                if b == 0 {
                    return Err(EngineError::Expr("integer division by zero".into()));
                }
                Value::Int(a / b)
            }
            Mod => {
                if b == 0 {
                    return Err(EngineError::Expr("integer modulo by zero".into()));
                }
                Value::Int(a % b)
            }
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            Lt => Value::Bool(a < b),
            Le => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            Ge => Value::Bool(a >= b),
            And | Or => unreachable!("handled by short-circuit path"),
        });
    }
    // Mixed numeric: coerce to f64 (timestamps included).
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(EngineError::Expr(format!(
            "type error: {op:?} applied to {l:?} and {r:?}"
        )));
    };
    Ok(match op {
        Add => Value::Float(a + b),
        Sub => Value::Float(a - b),
        Mul => Value::Float(a * b),
        Div => Value::Float(a / b),
        Mod => Value::Float(a % b),
        Eq => Value::Bool(a == b),
        Ne => Value::Bool(a != b),
        Lt => Value::Bool(a < b),
        Le => Value::Bool(a <= b),
        Gt => Value::Bool(a > b),
        Ge => Value::Bool(a >= b),
        And | Or => unreachable!("handled by short-circuit path"),
    })
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    True,
    False,
    LParen,
    RParen,
    Op(BinaryOp),
    Bang,
    Minus,
    Plus,
    Star,
    Slash,
    Percent,
}

fn tokenize(src: &str) -> Result<Vec<Token>, EngineError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '+' => {
                chars.next();
                tokens.push(Token::Plus);
            }
            '-' => {
                chars.next();
                tokens.push(Token::Minus);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '/' => {
                chars.next();
                tokens.push(Token::Slash);
            }
            '%' => {
                chars.next();
                tokens.push(Token::Percent);
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Op(BinaryOp::Ne));
                } else {
                    tokens.push(Token::Bang);
                }
            }
            '=' => {
                chars.next();
                if chars.next() == Some('=') {
                    tokens.push(Token::Op(BinaryOp::Eq));
                } else {
                    return Err(EngineError::Expr("single '=' (use '==')".into()));
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Op(BinaryOp::Le));
                } else {
                    tokens.push(Token::Op(BinaryOp::Lt));
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Op(BinaryOp::Ge));
                } else {
                    tokens.push(Token::Op(BinaryOp::Gt));
                }
            }
            '&' => {
                chars.next();
                if chars.next() == Some('&') {
                    tokens.push(Token::Op(BinaryOp::And));
                } else {
                    return Err(EngineError::Expr("single '&' (use '&&')".into()));
                }
            }
            '|' => {
                chars.next();
                if chars.next() == Some('|') {
                    tokens.push(Token::Op(BinaryOp::Or));
                } else {
                    return Err(EngineError::Expr("single '|' (use '||')".into()));
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(EngineError::Expr(format!(
                                    "bad escape {other:?} in string literal"
                                )))
                            }
                        },
                        Some(c) => s.push(c),
                        None => {
                            return Err(EngineError::Expr("unterminated string literal".into()))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        chars.next();
                    } else if c == '.' && !is_float {
                        is_float = true;
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| {
                        EngineError::Expr(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        EngineError::Expr(format!("bad int literal '{text}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(match ident.as_str() {
                    "true" => Token::True,
                    "false" => Token::False,
                    _ => Token::Ident(ident),
                });
            }
            other => return Err(EngineError::Expr(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

struct ExprParser {
    tokens: Vec<Token>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<Expr, EngineError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Op(BinaryOp::Or)) {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, EngineError> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Token::Op(BinaryOp::And)) {
            self.next();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, EngineError> {
        let lhs = self.parse_add()?;
        if let Some(Token::Op(op)) = self.peek() {
            let op = *op;
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
            ) {
                self.next();
                let rhs = self.parse_add()?;
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, EngineError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, EngineError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, EngineError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.next();
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.parse_unary()?)))
            }
            Some(Token::Minus) => {
                self.next();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, EngineError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::True) => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::False) => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Ident(name)) => Ok(Expr::Attr(name)),
            Some(Token::LParen) => {
                let e = self.parse_or()?;
                match self.next() {
                    Some(Token::RParen) => Ok(e),
                    _ => Err(EngineError::Expr("expected ')'".into())),
                }
            }
            other => Err(EngineError::Expr(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new()
            .with("price", 101.5)
            .with("vol", 300i64)
            .with("sym", "IBM")
            .with("neg", true)
    }

    fn eval(src: &str) -> Value {
        Expr::parse(src).unwrap().eval(&t()).unwrap()
    }

    #[test]
    fn literals() {
        assert_eq!(eval("42"), Value::Int(42));
        assert_eq!(eval("2.5"), Value::Float(2.5));
        assert_eq!(eval("\"hi\""), Value::Str("hi".into()));
        assert_eq!(eval("true"), Value::Bool(true));
        assert_eq!(eval("false"), Value::Bool(false));
    }

    #[test]
    fn attribute_refs() {
        assert_eq!(eval("vol"), Value::Int(300));
        assert_eq!(eval("sym"), Value::Str("IBM".into()));
        let err = Expr::parse("ghost").unwrap().eval(&t()).unwrap_err();
        assert!(err.to_string().contains("missing attribute"));
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(eval("2 + 3 * 4"), Value::Int(14));
        assert_eq!(eval("(2 + 3) * 4"), Value::Int(20));
        assert_eq!(eval("10 / 3"), Value::Int(3));
        assert_eq!(eval("10 % 3"), Value::Int(1));
        assert_eq!(eval("10.0 / 4"), Value::Float(2.5));
        assert_eq!(eval("vol * 2"), Value::Int(600));
        assert_eq!(eval("price + 0.5"), Value::Float(102.0));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval("-5"), Value::Int(-5));
        assert_eq!(eval("--5"), Value::Int(5));
        assert_eq!(eval("!true"), Value::Bool(false));
        assert_eq!(eval("!!neg"), Value::Bool(true));
        assert_eq!(eval("-price"), Value::Float(-101.5));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("vol > 100"), Value::Bool(true));
        assert_eq!(eval("vol >= 300"), Value::Bool(true));
        assert_eq!(eval("vol < 300"), Value::Bool(false));
        assert_eq!(eval("price <= 101.5"), Value::Bool(true));
        assert_eq!(eval("vol == 300"), Value::Bool(true));
        assert_eq!(eval("vol != 300"), Value::Bool(false));
        assert_eq!(eval("sym == \"IBM\""), Value::Bool(true));
        assert_eq!(eval("sym < \"JBM\""), Value::Bool(true));
        // Mixed int/float comparison coerces.
        assert_eq!(eval("vol == 300.0"), Value::Bool(true));
    }

    #[test]
    fn logical_ops_and_precedence() {
        assert_eq!(eval("vol > 100 && sym == \"IBM\""), Value::Bool(true));
        assert_eq!(eval("vol > 1000 || neg"), Value::Bool(true));
        // && binds tighter than ||.
        assert_eq!(eval("false && false || true"), Value::Bool(true));
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS references a missing attribute but must not be evaluated.
        assert_eq!(eval("false && ghost > 1"), Value::Bool(false));
        assert_eq!(eval("true || ghost > 1"), Value::Bool(true));
    }

    #[test]
    fn string_concat() {
        assert_eq!(eval("sym + \"!\""), Value::Str("IBM!".into()));
    }

    #[test]
    fn division_by_zero() {
        assert!(Expr::parse("1 / 0").unwrap().eval(&t()).is_err());
        assert!(Expr::parse("1 % 0").unwrap().eval(&t()).is_err());
        // Float division by zero is IEEE.
        assert_eq!(eval("1.0 / 0.0"), Value::Float(f64::INFINITY));
    }

    #[test]
    fn type_errors() {
        assert!(Expr::parse("sym * 2").unwrap().eval(&t()).is_err());
        assert!(Expr::parse("!vol").unwrap().eval(&t()).is_err());
        assert!(Expr::parse("-sym").unwrap().eval(&t()).is_err());
        assert!(Expr::parse("true && 1").unwrap().eval(&t()).is_err());
        assert!(Expr::parse("true - false").unwrap().eval(&t()).is_err());
    }

    #[test]
    fn eval_bool_enforces_type() {
        assert!(Expr::parse("vol").unwrap().eval_bool(&t()).is_err());
        assert!(Expr::parse("vol > 0").unwrap().eval_bool(&t()).unwrap());
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("1 = 2").is_err());
        assert!(Expr::parse("a & b").is_err());
        assert!(Expr::parse("a | b").is_err());
        assert!(Expr::parse("\"unterminated").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("@").is_err());
        assert!(Expr::parse("\"bad \\x escape\"").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(eval("\"a\\\"b\\\\c\\n\""), Value::Str("a\"b\\c\n".into()));
    }

    #[test]
    fn referenced_attrs_dedups() {
        let e = Expr::parse("price > 1 && price < 2 || sym == \"X\"").unwrap();
        assert_eq!(e.referenced_attrs(), vec!["price", "sym"]);
        assert!(Expr::parse("1 + 2").unwrap().referenced_attrs().is_empty());
    }

    #[test]
    fn timestamp_coercion() {
        let tup = Tuple::new().with("ts", Value::Timestamp(5000));
        let e = Expr::parse("ts > 1000").unwrap();
        assert_eq!(e.eval(&tup).unwrap(), Value::Bool(true));
    }
}
