//! Engine error type.

use std::fmt;

/// Errors raised while instantiating or executing operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No factory registered for an operator kind.
    UnknownOperatorKind(String),
    /// An operator parameter is missing or has the wrong type.
    BadParam { op: String, message: String },
    /// Expression parse/eval failure.
    Expr(String),
    /// Tuple decode failure.
    Codec(String),
    /// Checkpoint/restore failure (malformed blob, shape mismatch, or an
    /// operator that cannot reconstruct its state).
    Checkpoint(String),
    /// An operator signalled a fatal fault — the containing PE crashes
    /// (uncaught-exception analogue, §4.2).
    OperatorFault { op: String, message: String },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownOperatorKind(k) => write!(f, "unknown operator kind '{k}'"),
            EngineError::BadParam { op, message } => {
                write!(f, "bad parameter for operator '{op}': {message}")
            }
            EngineError::Expr(m) => write!(f, "expression error: {m}"),
            EngineError::Codec(m) => write!(f, "tuple codec error: {m}"),
            EngineError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            EngineError::OperatorFault { op, message } => {
                write!(f, "operator '{op}' fault: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::UnknownOperatorKind("Zap".into())
            .to_string()
            .contains("Zap"));
        assert!(EngineError::BadParam {
            op: "a".into(),
            message: "missing rate".into()
        }
        .to_string()
        .contains("missing rate"));
        assert!(EngineError::OperatorFault {
            op: "x".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("fault"));
    }
}
