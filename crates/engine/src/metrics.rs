//! Built-in and custom runtime metrics (§2.1).
//!
//! Built-in metrics are maintained automatically by the PE container for
//! every operator (tuples processed/submitted, queue sizes) and per PE
//! (bytes processed). Custom metrics are created and updated by operator
//! code at any point during execution — e.g. the sentiment application's
//! `nKnownCauses` / `nUnknownCauses` counters (§5.1).

use std::collections::BTreeMap;
use std::sync::Arc;

/// Well-known built-in metric names (paper §2.1 examples).
pub mod builtin {
    /// Tuples processed by an operator (all input ports).
    pub const N_TUPLES_PROCESSED: &str = "nTuplesProcessed";
    /// Tuples submitted by an operator (all output ports).
    pub const N_TUPLES_SUBMITTED: &str = "nTuplesSubmitted";
    /// Current input-queue length of an operator.
    pub const QUEUE_SIZE: &str = "queueSize";
    /// Final punctuations processed by an operator (drives §5.3).
    pub const N_FINAL_PUNCTS_PROCESSED: &str = "nFinalPunctsProcessed";
    /// Tuple bytes processed by a PE (PE-level metric).
    pub const N_TUPLE_BYTES_PROCESSED: &str = "nTupleBytesProcessed";
    /// Tuples dropped by an operator (e.g. Throttle under overload).
    pub const N_TUPLES_DROPPED: &str = "nTuplesDropped";
}

/// Identifies one metric instance within a job.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKey {
    /// Operator-level metric: `(operator instance name, metric name)`.
    Operator(String, String),
    /// Operator-port metric: `(operator, port, metric name)`.
    OperatorPort(String, usize, String),
    /// PE-level metric: `(pe index, metric name)`.
    Pe(usize, String),
}

impl MetricKey {
    pub fn metric_name(&self) -> &str {
        match self {
            MetricKey::Operator(_, m) | MetricKey::OperatorPort(_, _, m) | MetricKey::Pe(_, m) => m,
        }
    }

    pub fn operator_name(&self) -> Option<&str> {
        match self {
            MetricKey::Operator(op, _) | MetricKey::OperatorPort(op, _, _) => Some(op),
            MetricKey::Pe(..) => None,
        }
    }
}

/// A flat store of metric values, owned by a PE container and periodically
/// snapshotted by the host controller (§2.2).
///
/// Keys are interned behind `Arc` the first time they are inserted, so the
/// per-checkpoint-quantum [`MetricStore::snapshot`] hands out refcount bumps
/// instead of deep-cloning every operator/metric name string.
#[derive(Clone, Debug, Default)]
pub struct MetricStore {
    values: BTreeMap<Arc<MetricKey>, i64>,
}

impl MetricStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a metric to an absolute value (creates it if absent — operators
    /// "can create new custom metrics at any point during their execution").
    pub fn set(&mut self, key: MetricKey, value: i64) {
        if let Some(v) = self.values.get_mut(&key) {
            *v = value;
        } else {
            self.values.insert(Arc::new(key), value);
        }
    }

    /// Sets a metric through an already-interned key (checkpoint restore),
    /// sharing the snapshot's allocation instead of re-interning.
    pub fn set_shared(&mut self, key: Arc<MetricKey>, value: i64) {
        self.values.insert(key, value);
    }

    /// Adds a delta, creating the metric at zero first if needed.
    pub fn add(&mut self, key: MetricKey, delta: i64) {
        if let Some(v) = self.values.get_mut(&key) {
            *v += delta;
        } else {
            self.values.insert(Arc::new(key), delta);
        }
    }

    pub fn get(&self, key: &MetricKey) -> Option<i64> {
        self.values.get(key).copied()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, i64)> {
        self.values.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Snapshot for SRM collection and checkpointing: interned keys, so each
    /// row costs one refcount bump, not a string clone.
    pub fn snapshot(&self) -> Vec<(Arc<MetricKey>, i64)> {
        self.values
            .iter()
            .map(|(k, v)| (Arc::clone(k), *v))
            .collect()
    }

    /// Convenience accessors used by operator contexts.
    pub fn op_add(&mut self, op: &str, metric: &str, delta: i64) {
        self.add(
            MetricKey::Operator(op.to_string(), metric.to_string()),
            delta,
        );
    }

    pub fn op_set(&mut self, op: &str, metric: &str, value: i64) {
        self.set(
            MetricKey::Operator(op.to_string(), metric.to_string()),
            value,
        );
    }

    pub fn op_get(&self, op: &str, metric: &str) -> Option<i64> {
        self.get(&MetricKey::Operator(op.to_string(), metric.to_string()))
    }

    pub fn pe_add(&mut self, pe: usize, metric: &str, delta: i64) {
        self.add(MetricKey::Pe(pe, metric.to_string()), delta);
    }

    pub fn pe_get(&self, pe: usize, metric: &str) -> Option<i64> {
        self.get(&MetricKey::Pe(pe, metric.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_get() {
        let mut m = MetricStore::new();
        let key = MetricKey::Operator("op1".into(), "nTuplesProcessed".into());
        assert_eq!(m.get(&key), None);
        m.add(key.clone(), 5);
        m.add(key.clone(), 3);
        assert_eq!(m.get(&key), Some(8));
        m.set(key.clone(), 100);
        assert_eq!(m.get(&key), Some(100));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn key_kinds_are_distinct() {
        let mut m = MetricStore::new();
        m.add(MetricKey::Operator("a".into(), "x".into()), 1);
        m.add(MetricKey::OperatorPort("a".into(), 0, "x".into()), 2);
        m.add(MetricKey::Pe(0, "x".into()), 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.op_get("a", "x"), Some(1));
        assert_eq!(m.pe_get(0, "x"), Some(3));
    }

    #[test]
    fn key_accessors() {
        let k = MetricKey::Operator("op".into(), "m".into());
        assert_eq!(k.metric_name(), "m");
        assert_eq!(k.operator_name(), Some("op"));
        let p = MetricKey::Pe(2, "bytes".into());
        assert_eq!(p.metric_name(), "bytes");
        assert_eq!(p.operator_name(), None);
        let q = MetricKey::OperatorPort("op".into(), 1, "q".into());
        assert_eq!(q.operator_name(), Some("op"));
    }

    #[test]
    fn snapshot_is_deterministic_and_complete() {
        let mut m = MetricStore::new();
        m.op_add("b", "m", 2);
        m.op_add("a", "m", 1);
        m.pe_add(0, "bytes", 10);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 3);
        // BTreeMap ordering: Operator(a) < Operator(b) < Pe(0).
        assert_eq!(snap[0].0.operator_name(), Some("a"));
        assert_eq!(snap[1].0.operator_name(), Some("b"));
        assert!(matches!(snap[2].0.as_ref(), MetricKey::Pe(0, _)));
    }

    #[test]
    fn convenience_helpers() {
        let mut m = MetricStore::new();
        m.op_set("op", "custom", 42);
        assert_eq!(m.op_get("op", "custom"), Some(42));
        assert_eq!(m.op_get("op", "other"), None);
        assert!(!m.is_empty());
        assert_eq!(m.iter().count(), 1);
    }
}
