//! Binary tuple codec for inter-PE transport.
//!
//! PEs are separate operating-system processes in System S, so tuples
//! crossing a PE boundary are serialized. The simulated runtime preserves
//! this: crossing a PE boundary costs an encode/decode round-trip (measured
//! by the `tuple_codec` bench and the fusion ablation).
//!
//! Wire format (little-endian):
//! ```text
//! u8  item tag: 0 = tuple, 1 = window punct, 2 = final punct, 3 = batch
//! u16 attr count                      (tuple only)
//! per attr:
//!   u16 name len, name bytes
//!   u8  value tag, payload
//! batch frame (tag 3): u32 tuple count, then that many tuple frames
//! ```
//!
//! The preferred entry point is [`TupleCodec`], which owns a reusable
//! scratch buffer so hot paths (transport, checkpoint writers) amortize
//! allocations without threading a `BytesMut` by hand. The free functions
//! below remain as thin wrappers over the same frame writers.

use crate::error::EngineError;
use crate::op::{Punct, StreamItem, TupleBatch};
use crate::tuple::Tuple;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sps_model::Value;

const TAG_TUPLE: u8 = 0;
const TAG_WINDOW_PUNCT: u8 = 1;
const TAG_FINAL_PUNCT: u8 = 2;
const TAG_BATCH: u8 = 3;

const VTAG_INT: u8 = 0;
const VTAG_FLOAT: u8 = 1;
const VTAG_STR: u8 = 2;
const VTAG_BOOL: u8 = 3;
const VTAG_TIMESTAMP: u8 = 4;
const VTAG_LIST: u8 = 5;

/// Encodes a stream item into a standalone buffer.
pub fn encode(item: &StreamItem) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_into(item, &mut buf);
    buf.freeze()
}

/// Appends the wire encoding of `item` to `buf` — the reusable-buffer
/// variant of [`encode`] for hot paths that amortize one scratch buffer
/// across many encodes (checkpoint writers, benchmarks).
pub fn encode_into(item: &StreamItem, buf: &mut BytesMut) {
    match item {
        StreamItem::Tuple(t) => encode_tuple_item(t, buf),
        StreamItem::Punct(Punct::Window) => buf.put_u8(TAG_WINDOW_PUNCT),
        StreamItem::Punct(Punct::Final) => buf.put_u8(TAG_FINAL_PUNCT),
    }
}

/// Appends the full stream-item encoding (tag + body) of a borrowed tuple.
/// Byte-identical to `encode(&StreamItem::Tuple(t.clone()))` without the
/// tuple clone — the checkpoint path serializes window contents through
/// this, so snapshots never deep-copy tuples just to encode them.
pub fn encode_tuple_item(t: &Tuple, buf: &mut BytesMut) {
    buf.put_u8(TAG_TUPLE);
    encode_tuple(t, buf);
}

/// Appends a batch frame — `TAG_BATCH`, a tuple count, then each tuple's
/// ordinary item frame — so a whole per-quantum run of tuples crosses a PE
/// boundary as one payload instead of one payload per tuple.
pub fn encode_batch_into(tuples: &[Tuple], buf: &mut BytesMut) {
    buf.put_u8(TAG_BATCH);
    buf.put_u32_le(tuples.len() as u32);
    for t in tuples {
        encode_tuple_item(t, buf);
    }
}

/// A decoded transport frame: either a single stream item or a batch of
/// consecutive tuples (one input-port run from one quantum).
#[derive(Clone, Debug, PartialEq)]
pub enum Decoded {
    Item(StreamItem),
    Batch(TupleBatch),
}

/// A stateful codec owning its scratch buffer. This is the primary encode
/// API: one instance per transport/checkpoint call site amortizes a single
/// allocation across every encode it performs, replacing the hand-threaded
/// `BytesMut` scratch the free functions require.
#[derive(Debug, Default)]
pub struct TupleCodec {
    scratch: BytesMut,
}

impl TupleCodec {
    pub fn new() -> Self {
        TupleCodec {
            scratch: BytesMut::with_capacity(256),
        }
    }

    /// Encodes one stream item into a standalone payload.
    pub fn encode_item(&mut self, item: &StreamItem) -> Bytes {
        self.scratch.clear();
        encode_into(item, &mut self.scratch);
        Bytes::from(&self.scratch[..])
    }

    /// Encodes a run of tuples into a standalone batch payload.
    pub fn encode_batch(&mut self, tuples: &[Tuple]) -> Bytes {
        self.encode_tuple_run(tuples.len(), tuples.iter())
    }

    /// Batch-payload variant over borrowed tuples scattered in another
    /// structure (the PE's emission list), avoiding an intermediate `Vec`.
    /// `count` must equal the iterator's length.
    pub fn encode_tuple_run<'a>(
        &mut self,
        count: usize,
        tuples: impl Iterator<Item = &'a Tuple>,
    ) -> Bytes {
        self.scratch.clear();
        self.scratch.put_u8(TAG_BATCH);
        self.scratch.put_u32_le(count as u32);
        let mut written = 0usize;
        for t in tuples {
            encode_tuple_item(t, &mut self.scratch);
            written += 1;
        }
        debug_assert_eq!(written, count, "encode_tuple_run count mismatch");
        Bytes::from(&self.scratch[..])
    }

    /// Encodes a borrowed tuple's item frame and returns it as a borrowed
    /// slice, valid until the next call. Callers that need to length-prefix
    /// or embed the frame (checkpoint writers) copy from this slice instead
    /// of managing their own scratch.
    pub fn tuple_frame(&mut self, t: &Tuple) -> &[u8] {
        self.scratch.clear();
        encode_tuple_item(t, &mut self.scratch);
        &self.scratch
    }
}

fn encode_tuple(t: &Tuple, buf: &mut BytesMut) {
    buf.put_u16_le(t.len() as u16);
    for (name, value) in t.attrs() {
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        encode_value(value, buf);
    }
}

fn encode_value(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Int(v) => {
            buf.put_u8(VTAG_INT);
            buf.put_i64_le(*v);
        }
        Value::Float(v) => {
            buf.put_u8(VTAG_FLOAT);
            buf.put_f64_le(*v);
        }
        Value::Str(s) => {
            buf.put_u8(VTAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(VTAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Timestamp(t) => {
            buf.put_u8(VTAG_TIMESTAMP);
            buf.put_u64_le(*t);
        }
        Value::List(items) => {
            buf.put_u8(VTAG_LIST);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                encode_value(item, buf);
            }
        }
    }
}

/// Drops the first `skip` tuples of a batch payload and re-encodes the
/// remainder as a fresh batch frame. Upstream backup uses this when a
/// replayed run straddles a channel's high-water mark — re-execution after
/// restore batches the same tuple sequence at different boundaries, so the
/// payload's prefix duplicates traffic already delivered while its tail is
/// new. `skip` must be less than the batch length.
pub fn split_batch_payload(payload: Bytes, skip: usize) -> Result<Bytes, EngineError> {
    let batch = decode_batch(payload)?;
    if skip >= batch.len() {
        return Err(EngineError::Codec(format!(
            "split skip {skip} covers whole batch of {}",
            batch.len()
        )));
    }
    let rest: Vec<Tuple> = batch.into_iter().skip(skip).collect();
    let mut buf = BytesMut::with_capacity(64 * rest.len());
    encode_batch_into(&rest, &mut buf);
    Ok(buf.freeze())
}

/// Decodes a stream item from a buffer produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<StreamItem, EngineError> {
    if buf.remaining() < 1 {
        return Err(EngineError::Codec("empty buffer".into()));
    }
    match buf.get_u8() {
        TAG_TUPLE => {
            let t = decode_tuple(&mut buf)?;
            if buf.has_remaining() {
                return Err(EngineError::Codec("trailing bytes after tuple".into()));
            }
            Ok(StreamItem::Tuple(t))
        }
        TAG_WINDOW_PUNCT => Ok(StreamItem::Punct(Punct::Window)),
        TAG_FINAL_PUNCT => Ok(StreamItem::Punct(Punct::Final)),
        tag => Err(EngineError::Codec(format!("unknown item tag {tag}"))),
    }
}

/// Decodes a batch frame produced by [`encode_batch_into`].
pub fn decode_batch(mut buf: Bytes) -> Result<TupleBatch, EngineError> {
    if buf.remaining() < 1 || buf.get_u8() != TAG_BATCH {
        return Err(EngineError::Codec("not a batch frame".into()));
    }
    let batch = decode_batch_body(&mut buf)?;
    if buf.has_remaining() {
        return Err(EngineError::Codec("trailing bytes after batch".into()));
    }
    Ok(batch)
}

fn decode_batch_body(buf: &mut Bytes) -> Result<TupleBatch, EngineError> {
    if buf.remaining() < 4 {
        return Err(EngineError::Codec("truncated batch header".into()));
    }
    let count = buf.get_u32_le() as usize;
    if count > buf.remaining() {
        return Err(EngineError::Codec("batch count exceeds buffer".into()));
    }
    let mut batch = TupleBatch::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 1 || buf.get_u8() != TAG_TUPLE {
            return Err(EngineError::Codec("batch frame holds a non-tuple".into()));
        }
        batch.push(decode_tuple(buf)?);
    }
    Ok(batch)
}

/// Decodes a transport payload that may be either a single item frame or a
/// batch frame — what [`crate::pe::PeRuntime::receive`] sees on the wire.
pub fn decode_frame(buf: Bytes) -> Result<Decoded, EngineError> {
    match buf.first() {
        Some(&TAG_BATCH) => Ok(Decoded::Batch(decode_batch(buf)?)),
        _ => Ok(Decoded::Item(decode(buf)?)),
    }
}

/// Serializes one input-port queue as a single blob: runs of consecutive
/// tuples become batch frames, punctuation stays as bare item frames. This
/// is the checkpoint-v2 queue capture at batch granularity.
pub fn encode_queue<'a>(items: impl IntoIterator<Item = &'a StreamItem>) -> Bytes {
    let mut buf = BytesMut::new();
    let mut run: Vec<&Tuple> = Vec::new();
    let flush = |run: &mut Vec<&Tuple>, buf: &mut BytesMut| {
        if run.is_empty() {
            return;
        }
        buf.put_u8(TAG_BATCH);
        buf.put_u32_le(run.len() as u32);
        for t in run.drain(..) {
            encode_tuple_item(t, buf);
        }
    };
    for item in items {
        match item {
            StreamItem::Tuple(t) => run.push(t),
            punct => {
                flush(&mut run, &mut buf);
                encode_into(punct, &mut buf);
            }
        }
    }
    flush(&mut run, &mut buf);
    buf.freeze()
}

/// Decodes a queue blob written by [`encode_queue`] back into its item
/// sequence (batch frames are flattened in order).
pub fn decode_queue(mut buf: Bytes) -> Result<Vec<StreamItem>, EngineError> {
    let mut items = Vec::new();
    while buf.has_remaining() {
        match buf.get_u8() {
            TAG_TUPLE => items.push(StreamItem::Tuple(decode_tuple(&mut buf)?)),
            TAG_WINDOW_PUNCT => items.push(StreamItem::Punct(Punct::Window)),
            TAG_FINAL_PUNCT => items.push(StreamItem::Punct(Punct::Final)),
            TAG_BATCH => {
                let batch = decode_batch_body(&mut buf)?;
                items.extend(batch.into_iter().map(StreamItem::Tuple));
            }
            tag => return Err(EngineError::Codec(format!("unknown queue tag {tag}"))),
        }
    }
    Ok(items)
}

fn decode_tuple(buf: &mut Bytes) -> Result<Tuple, EngineError> {
    let need = |buf: &Bytes, n: usize| -> Result<(), EngineError> {
        if buf.remaining() < n {
            Err(EngineError::Codec(format!(
                "truncated: need {n} bytes, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(buf, 2)?;
    let count = buf.get_u16_le() as usize;
    let mut tuple = Tuple::new();
    for _ in 0..count {
        need(buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(buf, name_len)?;
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| EngineError::Codec("attribute name is not utf-8".into()))?
            .to_string();
        let value = decode_value(buf)?;
        tuple.set(&name, value);
    }
    Ok(tuple)
}

fn decode_value(buf: &mut Bytes) -> Result<Value, EngineError> {
    let need = |buf: &Bytes, n: usize| -> Result<(), EngineError> {
        if buf.remaining() < n {
            Err(EngineError::Codec("truncated value".into()))
        } else {
            Ok(())
        }
    };
    need(buf, 1)?;
    match buf.get_u8() {
        VTAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        VTAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        VTAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes)
                .map_err(|_| EngineError::Codec("string value is not utf-8".into()))?;
            Ok(Value::Str(s.to_string()))
        }
        VTAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        VTAG_TIMESTAMP => {
            need(buf, 8)?;
            Ok(Value::Timestamp(buf.get_u64_le()))
        }
        VTAG_LIST => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            // Cap pathological lengths so corrupt buffers fail fast instead
            // of attempting huge allocations.
            if len > buf.remaining() {
                return Err(EngineError::Codec("list length exceeds buffer".into()));
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_value(buf)?);
            }
            Ok(Value::List(items))
        }
        tag => Err(EngineError::Codec(format!("unknown value tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(item: StreamItem) {
        let encoded = encode(&item);
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded, item);
    }

    #[test]
    fn roundtrip_tuple_all_types() {
        roundtrip(StreamItem::Tuple(
            Tuple::new()
                .with("i", -7i64)
                .with("f", 2.75)
                .with("s", "hello — utf8 ✓")
                .with("b", true)
                .with("ts", Value::Timestamp(123456789))
                .with(
                    "l",
                    Value::List(vec![
                        Value::Int(1),
                        Value::List(vec![Value::Str("nested".into())]),
                    ]),
                ),
        ));
    }

    #[test]
    fn roundtrip_empty_tuple_and_puncts() {
        roundtrip(StreamItem::Tuple(Tuple::new()));
        roundtrip(StreamItem::Punct(Punct::Window));
        roundtrip(StreamItem::Punct(Punct::Final));
    }

    #[test]
    fn decode_rejects_empty() {
        assert!(decode(Bytes::new()).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(decode(Bytes::from_static(&[9])).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let full = encode(&StreamItem::Tuple(
            Tuple::new().with("abc", 1i64).with("s", "world"),
        ));
        // Every strict prefix must fail, not panic.
        for cut in 1..full.len() {
            let prefix = full.slice(0..cut);
            assert!(decode(prefix).is_err(), "prefix of len {cut} decoded");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode(&StreamItem::Tuple(Tuple::new())).to_vec();
        bytes.push(0xFF);
        assert!(decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_oversized_list_len() {
        // tag=tuple, 1 attr, name "l", list with claimed 2^31 items.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_TUPLE);
        buf.put_u16_le(1);
        buf.put_u16_le(1);
        buf.put_slice(b"l");
        buf.put_u8(VTAG_LIST);
        buf.put_u32_le(u32::MAX);
        assert!(decode(buf.freeze()).is_err());
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let items = [
            StreamItem::Tuple(Tuple::new().with("a", 1i64).with("s", "hello")),
            StreamItem::Punct(Punct::Window),
            StreamItem::Tuple(Tuple::new()),
            StreamItem::Punct(Punct::Final),
        ];
        let mut scratch = BytesMut::new();
        for item in &items {
            scratch.clear();
            encode_into(item, &mut scratch);
            assert_eq!(&scratch[..], &encode(item)[..]);
        }
        // The borrowed-tuple variant is byte-identical to the owned path.
        let t = Tuple::new().with("x", 9i64);
        scratch.clear();
        encode_tuple_item(&t, &mut scratch);
        assert_eq!(&scratch[..], &encode(&StreamItem::Tuple(t))[..]);
    }

    #[test]
    fn batch_roundtrips_and_matches_item_frames() {
        let tuples = vec![
            Tuple::new().with("a", 1i64),
            Tuple::new().with("b", "two"),
            Tuple::new(),
        ];
        let mut buf = BytesMut::new();
        encode_batch_into(&tuples, &mut buf);
        let payload = buf.freeze();
        let back = decode_batch(payload.clone()).unwrap();
        assert_eq!(back.as_slice(), &tuples[..]);
        // The batch body is exactly the concatenated single-item frames.
        let concat: Vec<u8> = tuples
            .iter()
            .flat_map(|t| encode(&StreamItem::Tuple(t.clone())).to_vec())
            .collect();
        assert_eq!(&payload[5..], &concat[..]);
        // decode_frame dispatches on the leading tag.
        assert_eq!(
            decode_frame(payload).unwrap(),
            Decoded::Batch(tuples.clone().into())
        );
        assert_eq!(
            decode_frame(encode(&StreamItem::Punct(Punct::Final))).unwrap(),
            Decoded::Item(StreamItem::Punct(Punct::Final))
        );
    }

    #[test]
    fn batch_decode_rejects_corruption() {
        let tuples = vec![Tuple::new().with("a", 1i64), Tuple::new().with("b", 2i64)];
        let mut buf = BytesMut::new();
        encode_batch_into(&tuples, &mut buf);
        let full = buf.freeze();
        for cut in 1..full.len() {
            assert!(decode_batch(full.slice(0..cut)).is_err());
        }
        let mut trailing = full.to_vec();
        trailing.push(0xAB);
        assert!(decode_batch(Bytes::from(trailing)).is_err());
        // A single-item frame is not a batch.
        assert!(decode_batch(encode(&StreamItem::Tuple(Tuple::new()))).is_err());
        // A claimed count far beyond the buffer fails fast.
        let mut bogus = BytesMut::new();
        bogus.put_u8(3);
        bogus.put_u32_le(u32::MAX);
        assert!(decode_batch(bogus.freeze()).is_err());
    }

    #[test]
    fn queue_blob_roundtrips_mixed_items() {
        let items = vec![
            StreamItem::Tuple(Tuple::new().with("a", 1i64)),
            StreamItem::Tuple(Tuple::new().with("b", 2i64)),
            StreamItem::Punct(Punct::Window),
            StreamItem::Tuple(Tuple::new().with("c", 3i64)),
            StreamItem::Punct(Punct::Final),
        ];
        let blob = encode_queue(&items);
        assert_eq!(decode_queue(blob).unwrap(), items);
        // Degenerate queues.
        assert!(decode_queue(encode_queue(&[])).unwrap().is_empty());
        let puncts_only = vec![StreamItem::Punct(Punct::Window); 3];
        assert_eq!(
            decode_queue(encode_queue(&puncts_only)).unwrap(),
            puncts_only
        );
    }

    #[test]
    fn tuple_codec_matches_free_functions() {
        let mut codec = TupleCodec::new();
        let item = StreamItem::Tuple(Tuple::new().with("x", 9i64).with("s", "str"));
        assert_eq!(codec.encode_item(&item), encode(&item));
        let t = Tuple::new().with("y", 4i64);
        let mut scratch = BytesMut::new();
        encode_tuple_item(&t, &mut scratch);
        assert_eq!(codec.tuple_frame(&t), &scratch[..]);
        let tuples = vec![Tuple::new().with("a", 1i64), Tuple::new().with("b", 2i64)];
        let mut buf = BytesMut::new();
        encode_batch_into(&tuples, &mut buf);
        assert_eq!(codec.encode_batch(&tuples), buf.freeze());
    }

    #[test]
    fn encoded_size_tracks_content() {
        let small = encode(&StreamItem::Tuple(Tuple::new().with("a", 1i64)));
        let big = encode(&StreamItem::Tuple(
            Tuple::new()
                .with("a", 1i64)
                .with("blob", "x".repeat(1000).as_str()),
        ));
        assert!(big.len() > small.len() + 900);
    }
}
