//! Binary tuple codec for inter-PE transport.
//!
//! PEs are separate operating-system processes in System S, so tuples
//! crossing a PE boundary are serialized. The simulated runtime preserves
//! this: crossing a PE boundary costs an encode/decode round-trip (measured
//! by the `tuple_codec` bench and the fusion ablation).
//!
//! Wire format (little-endian):
//! ```text
//! u8  item tag: 0 = tuple, 1 = window punct, 2 = final punct
//! u16 attr count                      (tuple only)
//! per attr:
//!   u16 name len, name bytes
//!   u8  value tag, payload
//! ```

use crate::error::EngineError;
use crate::op::{Punct, StreamItem};
use crate::tuple::Tuple;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sps_model::Value;

const TAG_TUPLE: u8 = 0;
const TAG_WINDOW_PUNCT: u8 = 1;
const TAG_FINAL_PUNCT: u8 = 2;

const VTAG_INT: u8 = 0;
const VTAG_FLOAT: u8 = 1;
const VTAG_STR: u8 = 2;
const VTAG_BOOL: u8 = 3;
const VTAG_TIMESTAMP: u8 = 4;
const VTAG_LIST: u8 = 5;

/// Encodes a stream item into a standalone buffer.
pub fn encode(item: &StreamItem) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_into(item, &mut buf);
    buf.freeze()
}

/// Appends the wire encoding of `item` to `buf` — the reusable-buffer
/// variant of [`encode`] for hot paths that amortize one scratch buffer
/// across many encodes (checkpoint writers, benchmarks).
pub fn encode_into(item: &StreamItem, buf: &mut BytesMut) {
    match item {
        StreamItem::Tuple(t) => encode_tuple_item(t, buf),
        StreamItem::Punct(Punct::Window) => buf.put_u8(TAG_WINDOW_PUNCT),
        StreamItem::Punct(Punct::Final) => buf.put_u8(TAG_FINAL_PUNCT),
    }
}

/// Appends the full stream-item encoding (tag + body) of a borrowed tuple.
/// Byte-identical to `encode(&StreamItem::Tuple(t.clone()))` without the
/// tuple clone — the checkpoint path serializes window contents through
/// this, so snapshots never deep-copy tuples just to encode them.
pub fn encode_tuple_item(t: &Tuple, buf: &mut BytesMut) {
    buf.put_u8(TAG_TUPLE);
    encode_tuple(t, buf);
}

fn encode_tuple(t: &Tuple, buf: &mut BytesMut) {
    buf.put_u16_le(t.len() as u16);
    for (name, value) in t.attrs() {
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        encode_value(value, buf);
    }
}

fn encode_value(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Int(v) => {
            buf.put_u8(VTAG_INT);
            buf.put_i64_le(*v);
        }
        Value::Float(v) => {
            buf.put_u8(VTAG_FLOAT);
            buf.put_f64_le(*v);
        }
        Value::Str(s) => {
            buf.put_u8(VTAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(VTAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Timestamp(t) => {
            buf.put_u8(VTAG_TIMESTAMP);
            buf.put_u64_le(*t);
        }
        Value::List(items) => {
            buf.put_u8(VTAG_LIST);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                encode_value(item, buf);
            }
        }
    }
}

/// Decodes a stream item from a buffer produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<StreamItem, EngineError> {
    if buf.remaining() < 1 {
        return Err(EngineError::Codec("empty buffer".into()));
    }
    match buf.get_u8() {
        TAG_TUPLE => {
            let t = decode_tuple(&mut buf)?;
            if buf.has_remaining() {
                return Err(EngineError::Codec("trailing bytes after tuple".into()));
            }
            Ok(StreamItem::Tuple(t))
        }
        TAG_WINDOW_PUNCT => Ok(StreamItem::Punct(Punct::Window)),
        TAG_FINAL_PUNCT => Ok(StreamItem::Punct(Punct::Final)),
        tag => Err(EngineError::Codec(format!("unknown item tag {tag}"))),
    }
}

fn decode_tuple(buf: &mut Bytes) -> Result<Tuple, EngineError> {
    let need = |buf: &Bytes, n: usize| -> Result<(), EngineError> {
        if buf.remaining() < n {
            Err(EngineError::Codec(format!(
                "truncated: need {n} bytes, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };
    need(buf, 2)?;
    let count = buf.get_u16_le() as usize;
    let mut tuple = Tuple::new();
    for _ in 0..count {
        need(buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(buf, name_len)?;
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| EngineError::Codec("attribute name is not utf-8".into()))?
            .to_string();
        let value = decode_value(buf)?;
        tuple.set(&name, value);
    }
    Ok(tuple)
}

fn decode_value(buf: &mut Bytes) -> Result<Value, EngineError> {
    let need = |buf: &Bytes, n: usize| -> Result<(), EngineError> {
        if buf.remaining() < n {
            Err(EngineError::Codec("truncated value".into()))
        } else {
            Ok(())
        }
    };
    need(buf, 1)?;
    match buf.get_u8() {
        VTAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        VTAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        VTAG_STR => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes)
                .map_err(|_| EngineError::Codec("string value is not utf-8".into()))?;
            Ok(Value::Str(s.to_string()))
        }
        VTAG_BOOL => {
            need(buf, 1)?;
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        VTAG_TIMESTAMP => {
            need(buf, 8)?;
            Ok(Value::Timestamp(buf.get_u64_le()))
        }
        VTAG_LIST => {
            need(buf, 4)?;
            let len = buf.get_u32_le() as usize;
            // Cap pathological lengths so corrupt buffers fail fast instead
            // of attempting huge allocations.
            if len > buf.remaining() {
                return Err(EngineError::Codec("list length exceeds buffer".into()));
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_value(buf)?);
            }
            Ok(Value::List(items))
        }
        tag => Err(EngineError::Codec(format!("unknown value tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(item: StreamItem) {
        let encoded = encode(&item);
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded, item);
    }

    #[test]
    fn roundtrip_tuple_all_types() {
        roundtrip(StreamItem::Tuple(
            Tuple::new()
                .with("i", -7i64)
                .with("f", 2.75)
                .with("s", "hello — utf8 ✓")
                .with("b", true)
                .with("ts", Value::Timestamp(123456789))
                .with(
                    "l",
                    Value::List(vec![
                        Value::Int(1),
                        Value::List(vec![Value::Str("nested".into())]),
                    ]),
                ),
        ));
    }

    #[test]
    fn roundtrip_empty_tuple_and_puncts() {
        roundtrip(StreamItem::Tuple(Tuple::new()));
        roundtrip(StreamItem::Punct(Punct::Window));
        roundtrip(StreamItem::Punct(Punct::Final));
    }

    #[test]
    fn decode_rejects_empty() {
        assert!(decode(Bytes::new()).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(decode(Bytes::from_static(&[9])).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let full = encode(&StreamItem::Tuple(
            Tuple::new().with("abc", 1i64).with("s", "world"),
        ));
        // Every strict prefix must fail, not panic.
        for cut in 1..full.len() {
            let prefix = full.slice(0..cut);
            assert!(decode(prefix).is_err(), "prefix of len {cut} decoded");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode(&StreamItem::Tuple(Tuple::new())).to_vec();
        bytes.push(0xFF);
        assert!(decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_oversized_list_len() {
        // tag=tuple, 1 attr, name "l", list with claimed 2^31 items.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_TUPLE);
        buf.put_u16_le(1);
        buf.put_u16_le(1);
        buf.put_slice(b"l");
        buf.put_u8(VTAG_LIST);
        buf.put_u32_le(u32::MAX);
        assert!(decode(buf.freeze()).is_err());
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let items = [
            StreamItem::Tuple(Tuple::new().with("a", 1i64).with("s", "hello")),
            StreamItem::Punct(Punct::Window),
            StreamItem::Tuple(Tuple::new()),
            StreamItem::Punct(Punct::Final),
        ];
        let mut scratch = BytesMut::new();
        for item in &items {
            scratch.clear();
            encode_into(item, &mut scratch);
            assert_eq!(&scratch[..], &encode(item)[..]);
        }
        // The borrowed-tuple variant is byte-identical to the owned path.
        let t = Tuple::new().with("x", 9i64);
        scratch.clear();
        encode_tuple_item(&t, &mut scratch);
        assert_eq!(&scratch[..], &encode(&StreamItem::Tuple(t))[..]);
    }

    #[test]
    fn encoded_size_tracks_content() {
        let small = encode(&StreamItem::Tuple(Tuple::new().with("a", 1i64)));
        let big = encode(&StreamItem::Tuple(
            Tuple::new()
                .with("a", 1i64)
                .with("blob", "x".repeat(1000).as_str()),
        ));
        assert!(big.len() > small.len() + 900);
    }
}
