//! Operator-state checkpointing.
//!
//! The paper's Trend Calculator deliberately runs *without* checkpointing
//! (§5.2) and pays for it with a window-refill gap after every PE restart.
//! This module supplies the missing mechanism: stateful operators serialize
//! their state into a [`StateBlob`] through [`Operator::checkpoint`], and a
//! whole PE container snapshots into a versioned, digest-protected
//! [`PeCheckpoint`] the runtime's checkpoint store can persist and later
//! replay through [`crate::pe::PeRuntime::restore`].
//!
//! Blobs use a tiny self-delimiting binary format written via
//! [`StateWriter`] and read back via [`StateReader`]; tuples reuse the
//! inter-PE wire codec so there is exactly one serialization of a tuple in
//! the system. Encoding is canonical (no maps with unstable order, no
//! wall-clock input), which is what makes restore *verifiable*: restoring a
//! checkpoint into a fresh container and re-checkpointing it must reproduce
//! the identical digest.
//!
//! [`Operator::checkpoint`]: crate::op::Operator::checkpoint

use crate::error::EngineError;
use crate::metrics::MetricKey;
use crate::tuple::Tuple;
use crate::{codec, op::StreamItem};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sps_sim::{fnv1a, SimDuration, SimRng, SimTime, FNV_OFFSET};
use std::sync::Arc;

/// Checkpoint wire-format version; bumped on incompatible layout changes.
/// [`crate::pe::PeRuntime::restore`] rejects any other version, which the
/// runtime treats as "fall back to fresh state".
///
/// v2: snapshots capture per-port input queues (encoded stream items), so a
/// restore revives in-flight tuples instead of dropping them.
pub const CKPT_FORMAT_VERSION: u32 = 2;

/// Opaque serialized operator state, tagged with a content digest computed
/// once at [`StateWriter::finish`] time. The digest gives the checkpoint
/// store an O(1) dirty check when building incremental (delta) snapshots:
/// an operator whose blob digest is unchanged since the previous snapshot
/// need not be re-stored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateBlob {
    bytes: Bytes,
    digest: u64,
}

impl Default for StateBlob {
    fn default() -> Self {
        StateBlob::from_bytes(Bytes::new())
    }
}

impl StateBlob {
    fn from_bytes(bytes: Bytes) -> Self {
        let digest = fnv1a(FNV_OFFSET, &bytes);
        StateBlob { bytes, digest }
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// FNV-1a over the serialized bytes, fixed at construction.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Canonical little-endian writer for operator state.
#[derive(Default)]
pub struct StateWriter {
    buf: BytesMut,
    /// Owned tuple codec: its internal scratch is reused across tuples, so a
    /// snapshot of a window with thousands of tuples allocates the encode
    /// buffer once instead of once per tuple.
    codec: codec::TupleCodec,
}

impl StateWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn finish(self) -> StateBlob {
        StateBlob::from_bytes(self.buf.freeze())
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    pub fn put_str(&mut self, s: &str) {
        self.buf.put_u32_le(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_millis());
    }

    /// Serializes a deterministic RNG so a restored operator continues the
    /// exact same random stream.
    pub fn put_rng(&mut self, rng: &SimRng) {
        for s in rng.state() {
            self.put_u64(s);
        }
    }

    pub fn put_duration(&mut self, d: SimDuration) {
        self.put_u64(d.as_millis());
    }

    /// `Option<T>` via a presence byte.
    pub fn put_opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.put_bool(false),
            Some(inner) => {
                self.put_bool(true);
                f(self, inner);
            }
        }
    }

    /// Serializes a tuple with the inter-PE wire codec.
    pub fn put_tuple(&mut self, t: &Tuple) {
        // Reuse the full stream-item encoding (tag + tuple body) so blobs
        // and transport share one definition of a tuple's bytes — borrowed,
        // through the codec's own scratch: no tuple clone, no per-call
        // buffer threading.
        let frame = self.codec.tuple_frame(t);
        self.buf.put_u32_le(frame.len() as u32);
        self.buf.put_slice(frame);
    }
}

/// Reader mirroring [`StateWriter`]; every accessor fails cleanly on
/// truncated or malformed input (a bad blob must never panic the runtime).
pub struct StateReader {
    buf: Bytes,
}

impl StateReader {
    pub fn new(blob: &StateBlob) -> Self {
        StateReader {
            buf: blob.bytes.clone(),
        }
    }

    fn need(&self, n: usize) -> Result<(), EngineError> {
        if self.buf.remaining() < n {
            Err(EngineError::Checkpoint(format!(
                "truncated state blob: need {n} bytes, have {}",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// True once every byte has been consumed (restore sanity check).
    pub fn is_exhausted(&self) -> bool {
        !self.buf.has_remaining()
    }

    pub fn get_u8(&mut self) -> Result<u8, EngineError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    pub fn get_u32(&mut self) -> Result<u32, EngineError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn get_u64(&mut self) -> Result<u64, EngineError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn get_i64(&mut self) -> Result<i64, EngineError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    pub fn get_f64(&mut self) -> Result<f64, EngineError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    pub fn get_bool(&mut self) -> Result<bool, EngineError> {
        Ok(self.get_u8()? != 0)
    }

    pub fn get_str(&mut self) -> Result<String, EngineError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EngineError::Checkpoint("state string is not utf-8".into()))
    }

    pub fn get_time(&mut self) -> Result<SimTime, EngineError> {
        Ok(SimTime::from_millis(self.get_u64()?))
    }

    /// Reads back a generator written by [`StateWriter::put_rng`].
    pub fn get_rng(&mut self) -> Result<SimRng, EngineError> {
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = self.get_u64()?;
        }
        Ok(SimRng::from_state(s))
    }

    pub fn get_duration(&mut self) -> Result<SimDuration, EngineError> {
        Ok(SimDuration::from_millis(self.get_u64()?))
    }

    pub fn get_opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, EngineError>,
    ) -> Result<Option<T>, EngineError> {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    pub fn get_tuple(&mut self) -> Result<Tuple, EngineError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let bytes = self.buf.copy_to_bytes(len);
        match codec::decode(bytes)? {
            StreamItem::Tuple(t) => Ok(t),
            other => Err(EngineError::Checkpoint(format!(
                "expected tuple in state blob, found {other:?}"
            ))),
        }
    }
}

/// Checkpoint of one operator slot inside a PE container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpCheckpoint {
    /// Operator instance name (ADL identity; restore matches on it).
    pub name: String,
    /// Operator kind (a kind change means the blob is meaningless).
    pub kind: String,
    /// Container-side per-input-port final-punctuation tracking.
    pub finals_seen: Vec<bool>,
    /// Serialized operator state; `None` for stateless operators.
    pub blob: Option<StateBlob>,
}

/// A complete, versioned snapshot of one PE's recoverable state: every
/// operator slot (in container order), the per-port input queues, and the
/// PE's metric store. Since format v2 the queues *are* captured (encoded
/// with the inter-PE wire codec), so a restore revives in-flight tuples
/// that were queued at snapshot time; tuples delivered *after* the snapshot
/// are the upstream-backup replay buffer's job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeCheckpoint {
    pub format_version: u32,
    /// ADL PE index this snapshot belongs to.
    pub pe_index: usize,
    /// Simulation time the snapshot was taken.
    pub taken_at: SimTime,
    pub ops: Vec<OpCheckpoint>,
    /// Input queues at snapshot time: `[op slot][input port]` → one blob per
    /// port in wire encoding at batch granularity (runs of consecutive
    /// tuples coalesced into batch frames, punctuation as bare item frames —
    /// see [`crate::codec::encode_queue`]). Outer arity mirrors `ops`.
    pub queues: Vec<Vec<Bytes>>,
    /// Metric snapshot, restored wholesale so monotone counters
    /// (`nTuplesProcessed`, custom metrics) stay continuous across restarts.
    /// Keys are the store's interned `Arc`s — snapshotting bumps refcounts
    /// instead of cloning every name string.
    pub metrics: Vec<(Arc<MetricKey>, i64)>,
}

impl PeCheckpoint {
    /// Content digest over everything *except* `taken_at`, so that
    /// checkpoint → restore → re-checkpoint reproduces the same digest even
    /// though the re-checkpoint happens later. The runtime uses this to
    /// self-verify every restore.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.format_version.to_le_bytes());
        h = fnv1a(h, &(self.pe_index as u64).to_le_bytes());
        for op in &self.ops {
            h = fnv1a(h, op.name.as_bytes());
            h = fnv1a(h, op.kind.as_bytes());
            for &seen in &op.finals_seen {
                h = fnv1a(h, &[seen as u8]);
            }
            match &op.blob {
                None => h = fnv1a(h, &[0]),
                Some(blob) => {
                    h = fnv1a(h, &[1]);
                    h = fnv1a(h, &(blob.len() as u64).to_le_bytes());
                    h = fnv1a(h, blob.bytes());
                }
            }
        }
        for op_queues in &self.queues {
            h = fnv1a(h, &(op_queues.len() as u64).to_le_bytes());
            for blob in op_queues {
                h = fnv1a(h, &(blob.len() as u64).to_le_bytes());
                h = fnv1a(h, blob);
            }
        }
        for (key, value) in &self.metrics {
            // Hash the key's components directly: no per-entry allocation,
            // and the digest stays independent of Debug formatting.
            match key.as_ref() {
                MetricKey::Operator(op, m) => {
                    h = fnv1a(h, &[0]);
                    h = fnv1a(h, op.as_bytes());
                    h = fnv1a(h, &[0xFF]);
                    h = fnv1a(h, m.as_bytes());
                }
                MetricKey::OperatorPort(op, port, m) => {
                    h = fnv1a(h, &[1]);
                    h = fnv1a(h, op.as_bytes());
                    h = fnv1a(h, &(*port as u64).to_le_bytes());
                    h = fnv1a(h, m.as_bytes());
                }
                MetricKey::Pe(pe, m) => {
                    h = fnv1a(h, &[2]);
                    h = fnv1a(h, &(*pe as u64).to_le_bytes());
                    h = fnv1a(h, m.as_bytes());
                }
            }
            h = fnv1a(h, &value.to_le_bytes());
        }
        h
    }

    /// Total serialized state bytes across all operators plus the captured
    /// input queues (observability).
    pub fn state_bytes(&self) -> usize {
        let blobs: usize = self
            .ops
            .iter()
            .filter_map(|o| o.blob.as_ref().map(StateBlob::len))
            .sum();
        blobs + self.queue_bytes()
    }

    /// Serialized bytes held in the captured input queues.
    pub fn queue_bytes(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|op| op.iter())
            .map(Bytes::len)
            .sum()
    }

    /// Number of operators that contributed a state blob.
    pub fn stateful_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.blob.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_all_types() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_u32(1234);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(2.75);
        w.put_bool(true);
        w.put_str("hello ✓");
        w.put_time(SimTime::from_millis(500));
        w.put_duration(SimDuration::from_secs(3));
        w.put_opt(&Some(9i64), |w, v| w.put_i64(*v));
        w.put_opt(&None::<i64>, |w, v| w.put_i64(*v));
        w.put_tuple(&Tuple::new().with("a", 1i64).with("s", "x"));
        let blob = w.finish();

        let mut r = StateReader::new(&blob);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 1234);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 2.75);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hello ✓");
        assert_eq!(r.get_time().unwrap(), SimTime::from_millis(500));
        assert_eq!(r.get_duration().unwrap(), SimDuration::from_secs(3));
        assert_eq!(r.get_opt(|r| r.get_i64()).unwrap(), Some(9));
        assert_eq!(r.get_opt(|r| r.get_i64()).unwrap(), None);
        let t = r.get_tuple().unwrap();
        assert_eq!(t.get_int("a"), Some(1));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_blob_errors_cleanly() {
        let mut w = StateWriter::new();
        w.put_str("abcdef");
        let blob = w.finish();
        // Cut the blob short: every accessor must error, never panic.
        let cut = StateBlob::from_bytes(blob.bytes.slice(0..blob.len() - 2));
        let mut r = StateReader::new(&cut);
        assert!(r.get_str().is_err());
        let mut r2 = StateReader::new(&StateBlob::default());
        assert!(r2.get_u64().is_err());
    }

    fn sample_ckpt() -> PeCheckpoint {
        let mut w = StateWriter::new();
        w.put_i64(5);
        PeCheckpoint {
            format_version: CKPT_FORMAT_VERSION,
            pe_index: 2,
            taken_at: SimTime::from_secs(9),
            ops: vec![
                OpCheckpoint {
                    name: "src".into(),
                    kind: "Beacon".into(),
                    finals_seen: vec![false],
                    blob: Some(w.finish()),
                },
                OpCheckpoint {
                    name: "flt".into(),
                    kind: "Filter".into(),
                    finals_seen: vec![true],
                    blob: None,
                },
            ],
            queues: vec![vec![Bytes::new()], vec![Bytes::from_static(b"abcd")]],
            metrics: vec![(Arc::new(MetricKey::Operator("src".into(), "n".into())), 3)],
        }
    }

    #[test]
    fn digest_ignores_taken_at_but_covers_content() {
        let a = sample_ckpt();
        let mut b = a.clone();
        b.taken_at = SimTime::from_secs(99);
        assert_eq!(a.digest(), b.digest(), "taken_at must not affect digest");

        let mut c = a.clone();
        c.ops[0].blob = None; // a lossy restore drops exactly this
        assert_ne!(a.digest(), c.digest(), "dropped blob must change digest");

        let mut d = a.clone();
        d.metrics[0].1 += 1;
        assert_ne!(a.digest(), d.digest());

        let mut e = a.clone();
        e.ops[1].finals_seen[0] = false;
        assert_ne!(a.digest(), e.digest());

        let mut f = a.clone();
        f.queues[1][0] = Bytes::new(); // dropped in-flight tuples must change digest
        assert_ne!(a.digest(), f.digest());
    }

    #[test]
    fn state_accounting() {
        let c = sample_ckpt();
        assert_eq!(c.stateful_ops(), 1);
        assert_eq!(c.queue_bytes(), 4);
        assert_eq!(c.state_bytes(), 12);
    }

    #[test]
    fn blob_digest_tracks_content() {
        let mut w = StateWriter::new();
        w.put_i64(5);
        let a = w.finish();
        let mut w = StateWriter::new();
        w.put_i64(5);
        let b = w.finish();
        assert_eq!(a.digest(), b.digest());
        let mut w = StateWriter::new();
        w.put_i64(6);
        assert_ne!(a.digest(), w.finish().digest());
        assert_eq!(StateBlob::default().digest(), FNV_OFFSET);
    }
}
