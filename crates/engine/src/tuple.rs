//! Stream tuples: ordered named attribute lists.
//!
//! Attribute counts are small (a handful per stream), so lookup is a linear
//! scan over an inline vector — faster in practice than hashing for these
//! sizes and trivially deterministic.

use sps_model::Value;
use std::fmt;

/// A stream data item: ordered `(name, value)` attributes.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Tuple {
    attrs: Vec<(String, Value)>,
}

impl Tuple {
    pub fn new() -> Self {
        Tuple { attrs: Vec::new() }
    }

    /// Builder-style attribute addition; replaces an existing attribute with
    /// the same name.
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name.to_string(), value));
        }
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.attrs.iter().position(|(n, _)| n == name)?;
        Some(self.attrs.remove(idx).1)
    }

    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    pub fn attrs(&self) -> &[(String, Value)] {
        &self.attrs
    }

    /// Approximate wire size in bytes — drives the `nTupleBytesProcessed`
    /// built-in PE metric.
    pub fn approx_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|(n, v)| {
                n.len()
                    + 3
                    + match v {
                        Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
                        Value::Bool(_) => 1,
                        Value::Str(s) => s.len() + 4,
                        Value::List(l) => 4 + l.len() * 9,
                    }
            })
            .sum::<usize>()
            + 2
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={}", v.render())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Tuple {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Tuple {
            attrs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_get_set() {
        let t = Tuple::new()
            .with("sym", "IBM")
            .with("price", 101.5)
            .with("vol", 300i64);
        assert_eq!(t.get_str("sym"), Some("IBM"));
        assert_eq!(t.get_f64("price"), Some(101.5));
        assert_eq!(t.get_int("vol"), Some(300));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn with_replaces_existing() {
        let t = Tuple::new().with("x", 1i64).with("x", 2i64);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_int("x"), Some(2));
    }

    #[test]
    fn remove_attr() {
        let mut t = Tuple::new().with("a", 1i64).with("b", 2i64);
        assert_eq!(t.remove("a"), Some(Value::Int(1)));
        assert_eq!(t.remove("a"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn numeric_coercion() {
        let t = Tuple::new().with("i", 4i64);
        assert_eq!(t.get_f64("i"), Some(4.0));
    }

    #[test]
    fn display_and_bytes() {
        let t = Tuple::new().with("a", 1i64).with("s", "xy");
        let s = t.to_string();
        assert!(s.contains("a=i:1"));
        assert!(s.contains("s=s:xy"));
        assert!(t.approx_bytes() > 10);
        assert!(Tuple::new().approx_bytes() >= 2);
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Bool(true)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.get_bool("b"), Some(true));
        assert!(!t.is_empty());
    }
}
