//! Stream operator runtime for the System S reproduction.
//!
//! Provides what the paper assumes of the SPL runtime (§2.1):
//!
//! - typed [`tuple::Tuple`]s flowing over stream connections,
//! - an [`op::Operator`] trait plus a library of built-in operators
//!   ([`ops`]), instantiated from ADL descriptions via a [`registry`],
//! - *built-in and custom metrics* ([`metrics`]) — counters the SRM collects
//!   and the orchestrator subscribes to,
//! - window and **final punctuation** ([`op::Punct`]) propagation — final
//!   punctuation drives the §5.3 dynamic-composition use case,
//! - sliding/tumbling [`window`]s (the §5.2 Trend Calculator state),
//! - a binary tuple [`codec`] for inter-PE transport,
//! - [`pe::PeRuntime`]: the per-process container executing fused operators
//!   with bounded per-quantum budgets (so queues grow under overload and
//!   `queueSize` metrics are meaningful).

pub mod ckpt;
pub mod codec;
pub mod error;
pub mod expr;
pub mod metrics;
pub mod op;
pub mod ops;
pub mod pe;
pub mod registry;
pub mod tuple;
pub mod window;

pub use ckpt::{OpCheckpoint, PeCheckpoint, StateBlob, StateReader, StateWriter};
pub use error::EngineError;
pub use metrics::{MetricKey, MetricStore};
pub use op::{OpCtx, Operator, Punct, StreamItem};
pub use pe::{PeOutput, PeRuntime, RemoteDelivery};
pub use registry::OperatorRegistry;
pub use tuple::Tuple;
