//! Operator factory registry: instantiates operators from ADL invocations.
//!
//! SPL compiles each operator invocation into generated C++; here the
//! runtime looks the operator *kind* up in a registry. Applications register
//! their own kinds (e.g. the sentiment classifier of §5.1) next to the
//! built-ins before submitting jobs.

use crate::error::EngineError;
use crate::op::Operator;
use crate::ops;
use sps_model::adl::AdlOperator;
use std::collections::BTreeMap;

/// Factory signature: given the ADL invocation, build a fresh operator
/// instance. Called at job start and on every PE restart — instances start
/// with empty state (the §5.2 behavior); when checkpointing is enabled the
/// runtime then feeds a recovered blob back through `Operator::restore`.
pub type OperatorFactory = Box<dyn Fn(&AdlOperator) -> Result<Box<dyn Operator>, EngineError>>;

/// Maps operator kinds to factories.
pub struct OperatorRegistry {
    factories: BTreeMap<String, OperatorFactory>,
}

impl Default for OperatorRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl OperatorRegistry {
    /// An empty registry (no kinds).
    pub fn empty() -> Self {
        OperatorRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with the built-in operator library.
    pub fn with_builtins() -> Self {
        let mut r = OperatorRegistry::empty();
        r.register("Beacon", |op| {
            Ok(Box::new(ops::Beacon::from_params(&op.name, &op.params)?))
        });
        r.register("Filter", |op| {
            Ok(Box::new(ops::Filter::from_params(&op.name, &op.params)?))
        });
        r.register("Functor", |op| {
            Ok(Box::new(ops::Functor::from_params(&op.name, &op.params)?))
        });
        r.register("Split", |op| {
            Ok(Box::new(ops::Split::from_params(&op.name, &op.params)?))
        });
        r.register("Merge", |op| Ok(Box::new(ops::Merge::new(op.inputs))));
        r.register("Aggregate", |op| {
            Ok(Box::new(ops::Aggregate::from_params(&op.name, &op.params)?))
        });
        r.register("Join", |op| {
            Ok(Box::new(ops::Join::from_params(&op.name, &op.params)?))
        });
        r.register("Throttle", |op| {
            Ok(Box::new(ops::Throttle::from_params(&op.name, &op.params)?))
        });
        r.register("Work", |op| {
            Ok(Box::new(ops::Work::from_params(&op.name, &op.params)?))
        });
        r.register("DeDup", |op| {
            Ok(Box::new(ops::DeDup::from_params(&op.name, &op.params)?))
        });
        r.register("Sink", |op| {
            Ok(Box::new(ops::Sink::from_params(&op.name, &op.params)?))
        });
        r.register("FaultInject", |op| {
            Ok(Box::new(ops::FaultInject::from_params(
                &op.name, &op.params,
            )?))
        });
        r.register("PassThrough", |_| Ok(Box::new(ops::PassThrough)));
        r.register("Export", |_| Ok(Box::new(ops::PassThrough)));
        r.register("Import", |_| Ok(Box::new(ops::Import)));
        r
    }

    /// Registers (or replaces) a factory for an operator kind.
    pub fn register(
        &mut self,
        kind: &str,
        factory: impl Fn(&AdlOperator) -> Result<Box<dyn Operator>, EngineError> + 'static,
    ) {
        self.factories.insert(kind.to_string(), Box::new(factory));
    }

    pub fn has_kind(&self, kind: &str) -> bool {
        self.factories.contains_key(kind)
    }

    /// Registered kinds, in sorted order (the map is a `BTreeMap`).
    pub fn kinds(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Builds a fresh operator instance for an ADL invocation.
    pub fn instantiate(&self, op: &AdlOperator) -> Result<Box<dyn Operator>, EngineError> {
        let factory = self
            .factories
            .get(&op.kind)
            .ok_or_else(|| EngineError::UnknownOperatorKind(op.kind.clone()))?;
        factory(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_model::value::ParamMap;
    use sps_model::Value;

    fn adl_op(kind: &str, params: ParamMap) -> AdlOperator {
        AdlOperator {
            name: "x".into(),
            kind: kind.into(),
            composite_path: vec![],
            params,
            inputs: 2,
            outputs: 1,
            custom_metrics: vec![],
            pe: 0,
            restartable: true,
            checkpointable: true,
        }
    }

    #[test]
    fn builtins_cover_library() {
        let r = OperatorRegistry::with_builtins();
        for kind in [
            "Beacon",
            "Filter",
            "Functor",
            "Split",
            "Merge",
            "Aggregate",
            "Join",
            "Throttle",
            "Work",
            "DeDup",
            "Sink",
            "FaultInject",
            "PassThrough",
            "Export",
            "Import",
        ] {
            assert!(r.has_kind(kind), "missing builtin {kind}");
        }
        assert!(!r.has_kind("Zap"));
        assert_eq!(r.kinds().len(), 15);
    }

    #[test]
    fn instantiate_builds_and_propagates_param_errors() {
        let r = OperatorRegistry::with_builtins();
        assert!(r.instantiate(&adl_op("Merge", ParamMap::new())).is_ok());
        // Filter without predicate → BadParam.
        let err = r
            .instantiate(&adl_op("Filter", ParamMap::new()))
            .err()
            .expect("expected BadParam");
        assert!(matches!(err, EngineError::BadParam { .. }));
        // Unknown kind.
        let err = r
            .instantiate(&adl_op("Zap", ParamMap::new()))
            .err()
            .expect("expected UnknownOperatorKind");
        assert!(matches!(err, EngineError::UnknownOperatorKind(_)));
    }

    #[test]
    fn custom_registration_and_override() {
        struct Nop;
        impl crate::op::Operator for Nop {
            fn on_tuple(&mut self, _p: usize, _t: crate::Tuple, _c: &mut crate::OpCtx) {}
        }
        let mut r = OperatorRegistry::empty();
        assert!(!r.has_kind("MyOp"));
        r.register("MyOp", |_| Ok(Box::new(Nop)));
        assert!(r.has_kind("MyOp"));
        assert!(r.instantiate(&adl_op("MyOp", ParamMap::new())).is_ok());
        // Replacing an existing kind is allowed.
        r.register("MyOp", |_| {
            Err(EngineError::BadParam {
                op: "x".into(),
                message: "always fails".into(),
            })
        });
        assert!(r.instantiate(&adl_op("MyOp", ParamMap::new())).is_err());
    }

    #[test]
    fn merge_factory_uses_input_arity() {
        let r = OperatorRegistry::with_builtins();
        let mut op = r.instantiate(&adl_op("Merge", ParamMap::new())).unwrap();
        // With 2 inputs, one final is not enough to forward.
        let mut metrics = crate::metrics::MetricStore::new();
        let mut rng = sps_sim::SimRng::new(1);
        let mut ctx = crate::op::OpCtx::new(
            sps_sim::SimTime::ZERO,
            sps_sim::SimDuration::from_millis(100),
            "m",
            1,
            &mut metrics,
            &mut rng,
        );
        op.on_punct(0, crate::op::Punct::Final, &mut ctx);
        assert!(ctx.take_emitted().is_empty());
        op.on_punct(1, crate::op::Punct::Final, &mut ctx);
        assert_eq!(ctx.take_emitted().len(), 1);
    }

    #[test]
    fn beacon_param_passthrough() {
        let r = OperatorRegistry::with_builtins();
        let params: ParamMap = [("rate".to_string(), Value::Float(-5.0))]
            .into_iter()
            .collect();
        assert!(r.instantiate(&adl_op("Beacon", params)).is_err());
    }
}
