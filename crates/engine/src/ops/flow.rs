//! Flow-control and plumbing operators: Throttle, Work, FaultInject,
//! PassThrough (Export), Import.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::op::{OpCtx, Operator, TupleBatch};
use crate::ops::{opt_i64, req_f64};
use crate::tuple::Tuple;
use crate::EngineError;
use sps_model::value::ParamMap;
use sps_sim::SimTime;

/// Drops tuples above a maximum rate (simple load shedder). Dropped tuples
/// increment the built-in `nTuplesDropped` metric.
///
/// Parameters: `max_rate` (float, required): tuples per second.
pub struct Throttle {
    max_rate: f64,
    window_start: Option<SimTime>,
    forwarded_in_window: f64,
}

impl Throttle {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let max_rate = req_f64(params, op, "max_rate")?;
        if max_rate <= 0.0 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "max_rate must be positive".into(),
            });
        }
        Ok(Throttle {
            max_rate,
            window_start: None,
            forwarded_in_window: 0.0,
        })
    }
}

impl Operator for Throttle {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        // One-second accounting windows.
        let now = ctx.now();
        let reset = match self.window_start {
            None => true,
            Some(start) => now.since(start).as_millis() >= 1000,
        };
        if reset {
            self.window_start = Some(now);
            self.forwarded_in_window = 0.0;
        }
        if self.forwarded_in_window + 1.0 <= self.max_rate {
            self.forwarded_in_window += 1.0;
            ctx.submit(0, tuple);
        } else {
            ctx.metric_add(crate::metrics::builtin::N_TUPLES_DROPPED, 1);
        }
    }

    // Batched shedding: the window-reset decision is made once per batch
    // (`ctx.now()` is constant within the callback, so the per-tuple loop
    // could only reset on its first iteration anyway) and drops are counted
    // into the metric store once instead of once per dropped tuple.
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        let now = ctx.now();
        let reset = match self.window_start {
            None => true,
            Some(start) => now.since(start).as_millis() >= 1000,
        };
        if reset {
            self.window_start = Some(now);
            self.forwarded_in_window = 0.0;
        }
        let mut dropped = 0i64;
        for tuple in batch {
            if self.forwarded_in_window + 1.0 <= self.max_rate {
                self.forwarded_in_window += 1.0;
                ctx.submit(0, tuple);
            } else {
                dropped += 1;
            }
        }
        if dropped > 0 {
            ctx.metric_add(crate::metrics::builtin::N_TUPLES_DROPPED, dropped);
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_opt(&self.window_start, |w, t| w.put_time(*t));
        w.put_f64(self.forwarded_in_window);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.window_start = r.get_opt(|r| r.get_time())?;
        self.forwarded_in_window = r.get_f64()?;
        Ok(())
    }
}

/// Pass-through that charges extra processing budget per tuple, modelling a
/// CPU-heavy analytic. Used by overload scenarios so `queueSize` grows.
///
/// Parameters: `cost` (int, default 1): budget units per tuple.
pub struct Work {
    cost: u32,
}

impl Work {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let cost = opt_i64(params, op, "cost")?.unwrap_or(1);
        if cost < 1 || cost > u32::MAX as i64 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "cost must be in [1, 2^32)".into(),
            });
        }
        Ok(Work { cost: cost as u32 })
    }
}

impl Operator for Work {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        ctx.submit(0, tuple);
    }

    fn cost_per_tuple(&self) -> u32 {
        self.cost
    }
}

/// Forwards tuples until the n-th, then raises a fatal operator fault —
/// crashing its PE. Drives the §5.2 failure-injection experiments.
///
/// Parameters: `fault_after` (int, optional): fault on the n-th tuple
/// (1-based). Absent = never fault (pure pass-through).
pub struct FaultInject {
    fault_after: Option<i64>,
    processed: i64,
}

impl FaultInject {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        Ok(FaultInject {
            fault_after: opt_i64(params, op, "fault_after")?,
            processed: 0,
        })
    }
}

impl Operator for FaultInject {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        self.processed += 1;
        if let Some(n) = self.fault_after {
            if self.processed >= n {
                ctx.raise_fault(format!("injected fault after {n} tuples"));
                return;
            }
        }
        ctx.submit(0, tuple);
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_i64(self.processed);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        self.processed = StateReader::new(blob).get_i64()?;
        Ok(())
    }
}

/// Identity operator; the conventional kind for operators whose output port
/// carries an export spec.
pub struct PassThrough;

impl Operator for PassThrough {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        ctx.submit(0, tuple);
    }
}

/// Import pseudo-source: has zero declared inputs (no static stream may
/// connect), but the runtime's import/export broker injects matched tuples
/// from other jobs, which it forwards downstream.
pub struct Import;

impl Operator for Import {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        ctx.submit(0, tuple);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::builtin;
    use crate::ops::testutil::Harness;
    use sps_model::Value;
    use sps_sim::SimDuration;

    fn fparams(pairs: &[(&str, f64)]) -> ParamMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Float(*v)))
            .collect()
    }

    #[test]
    fn throttle_enforces_rate_per_second() {
        let mut t = Throttle::from_params("t", &fparams(&[("max_rate", 3.0)])).unwrap();
        let mut h = Harness::new(1);
        let mut forwarded = 0;
        for i in 0..10 {
            forwarded += h.tuple(&mut t, 0, Tuple::new().with("i", i as i64)).len();
        }
        assert_eq!(forwarded, 3);
        assert_eq!(
            h.metrics.op_get("test_op", builtin::N_TUPLES_DROPPED),
            Some(7)
        );
        // New window after a second.
        h.advance(SimDuration::from_secs(1));
        assert_eq!(h.tuple(&mut t, 0, Tuple::new()).len(), 1);
    }

    #[test]
    fn throttle_rejects_bad_rate() {
        assert!(Throttle::from_params("t", &fparams(&[("max_rate", 0.0)])).is_err());
        assert!(Throttle::from_params("t", &ParamMap::new()).is_err());
    }

    #[test]
    fn work_forwards_with_cost() {
        let params: ParamMap = [("cost".to_string(), Value::Int(25))].into_iter().collect();
        let mut w = Work::from_params("w", &params).unwrap();
        assert_eq!(w.cost_per_tuple(), 25);
        let mut h = Harness::new(1);
        assert_eq!(h.tuple(&mut w, 0, Tuple::new()).len(), 1);
        let default = Work::from_params("w", &ParamMap::new()).unwrap();
        assert_eq!(default.cost_per_tuple(), 1);
    }

    #[test]
    fn work_rejects_bad_cost() {
        let params: ParamMap = [("cost".to_string(), Value::Int(0))].into_iter().collect();
        assert!(Work::from_params("w", &params).is_err());
    }

    #[test]
    fn fault_inject_faults_on_nth_tuple() {
        let params: ParamMap = [("fault_after".to_string(), Value::Int(3))]
            .into_iter()
            .collect();
        let mut f = FaultInject::from_params("f", &params).unwrap();
        let mut metrics = crate::metrics::MetricStore::new();
        let mut rng = sps_sim::SimRng::new(1);
        for i in 1..=3 {
            let mut ctx = crate::op::OpCtx::new(
                SimTime::ZERO,
                SimDuration::from_millis(100),
                "f",
                1,
                &mut metrics,
                &mut rng,
            );
            f.on_tuple(0, Tuple::new(), &mut ctx);
            let fault = ctx.take_fault();
            if i < 3 {
                assert!(fault.is_none());
                assert_eq!(ctx.take_emitted().len(), 1);
            } else {
                assert!(fault.is_some());
                assert!(ctx.take_emitted().is_empty());
            }
        }
    }

    #[test]
    fn fault_inject_without_param_is_passthrough() {
        let mut f = FaultInject::from_params("f", &ParamMap::new()).unwrap();
        let mut h = Harness::new(1);
        for _ in 0..100 {
            assert_eq!(h.tuple(&mut f, 0, Tuple::new()).len(), 1);
        }
    }

    #[test]
    fn passthrough_and_import_forward() {
        let mut h = Harness::new(1);
        assert_eq!(h.tuple(&mut PassThrough, 0, Tuple::new()).len(), 1);
        assert_eq!(h.tuple(&mut Import, 0, Tuple::new()).len(), 1);
    }
}
