//! Windowed stream join.
//!
//! Equi-join between two input ports over sliding time windows — the SPL
//! standard-toolkit Join the paper's applications compose with (e.g.
//! correlating tweets with causes, §5.1's op5). Each arriving tuple probes
//! the opposite window and emits one merged tuple per match.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::op::{FinalPunctTracker, OpCtx, Operator, Punct};
use crate::ops::{req_f64, req_str};
use crate::tuple::Tuple;
use crate::window::SlidingTimeWindow;
use crate::EngineError;
use sps_model::value::ParamMap;
use sps_sim::SimDuration;

/// Two-way windowed equi-join.
///
/// Parameters:
/// - `key` (str, required): join attribute, present on both inputs,
/// - `window_secs` (float, required): per-side sliding window span,
/// - `prefix_left`/`prefix_right` (str, default `"l_"`/`"r_"`): attribute
///   prefixes applied on name collisions (the key keeps its name).
pub struct Join {
    key: String,
    span: SimDuration,
    prefix: [String; 2],
    windows: [SlidingTimeWindow<Tuple>; 2],
    finals: FinalPunctTracker,
}

impl Join {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let window_secs = req_f64(params, op, "window_secs")?;
        if window_secs <= 0.0 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "window_secs must be positive".into(),
            });
        }
        let span = SimDuration::from_millis((window_secs * 1000.0) as u64);
        let pl = params
            .get("prefix_left")
            .and_then(sps_model::Value::as_str)
            .unwrap_or("l_")
            .to_string();
        let pr = params
            .get("prefix_right")
            .and_then(sps_model::Value::as_str)
            .unwrap_or("r_")
            .to_string();
        Ok(Join {
            key: req_str(params, op, "key")?.to_string(),
            span,
            prefix: [pl, pr],
            windows: [SlidingTimeWindow::new(span), SlidingTimeWindow::new(span)],
            finals: FinalPunctTracker::new(2),
        })
    }

    /// Merges `probe` (from side `probe_side`) with `stored` from the other
    /// side into one output tuple.
    fn merge(&self, probe: &Tuple, probe_side: usize, stored: &Tuple) -> Tuple {
        let (left, right) = if probe_side == 0 {
            (probe, stored)
        } else {
            (stored, probe)
        };
        let mut out = Tuple::new();
        for (name, value) in left.attrs() {
            out.set(name, value.clone());
        }
        for (name, value) in right.attrs() {
            if name == &self.key {
                continue; // equal by definition
            }
            if out.get(name).is_some() {
                // Collision: re-house both sides under their prefixes.
                let l = out.remove(name).expect("collision present");
                out.set(&format!("{}{name}", self.prefix[0]), l);
                out.set(&format!("{}{name}", self.prefix[1]), value.clone());
            } else {
                out.set(name, value.clone());
            }
        }
        out
    }
}

impl Operator for Join {
    fn on_tuple(&mut self, port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        let side = port.min(1);
        let Some(key_value) = tuple.get(&self.key).cloned() else {
            ctx.raise_fault(format!("join key '{}' missing on port {port}", self.key));
            return;
        };
        let now = ctx.now();
        // Probe the opposite window, emitting one output per match.
        let other = 1 - side;
        self.windows[other].evict(now);
        let matches: Vec<Tuple> = self.windows[other]
            .iter()
            .filter(|(_, t)| t.get(&self.key) == Some(&key_value))
            .map(|(_, t)| t.clone())
            .collect();
        for m in matches {
            ctx.submit(0, self.merge(&tuple, side, &m));
        }
        self.windows[side].push(now, tuple);
    }

    fn on_punct(&mut self, port: usize, punct: Punct, ctx: &mut OpCtx) {
        match punct {
            Punct::Window => ctx.submit_punct(0, Punct::Window),
            Punct::Final => {
                if self.finals.mark(port.min(1)) {
                    ctx.submit_punct(0, Punct::Final);
                }
            }
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        self.finals.encode(&mut w);
        for window in &self.windows {
            w.put_u32(window.len() as u32);
            for (at, t) in window.iter() {
                w.put_time(*at);
                w.put_tuple(t);
            }
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.finals = FinalPunctTracker::decode(&mut r)?;
        for window in &mut self.windows {
            *window = SlidingTimeWindow::new(self.span);
            for _ in 0..r.get_u32()? {
                let at = r.get_time()?;
                let t = r.get_tuple()?;
                window.push(at, t);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamItem;
    use crate::ops::testutil::Harness;
    use sps_model::Value;

    fn join(window_secs: f64) -> Join {
        let params: ParamMap = [
            ("key".to_string(), Value::Str("sym".into())),
            ("window_secs".to_string(), Value::Float(window_secs)),
        ]
        .into_iter()
        .collect();
        Join::from_params("j", &params).unwrap()
    }

    #[test]
    fn matches_across_sides_within_window() {
        let mut j = join(100.0);
        let mut h = Harness::new(1);
        // Left side: a quote for IBM.
        assert!(h
            .tuple(&mut j, 0, Tuple::new().with("sym", "IBM").with("bid", 10.0))
            .is_empty());
        // Right side: a trade for IBM → joins with the stored quote.
        let out = Harness::tuples_only(h.tuple(
            &mut j,
            1,
            Tuple::new().with("sym", "IBM").with("qty", 5i64),
        ));
        assert_eq!(out.len(), 1);
        let t = &out[0].1;
        assert_eq!(t.get_str("sym"), Some("IBM"));
        assert_eq!(t.get_f64("bid"), Some(10.0));
        assert_eq!(t.get_int("qty"), Some(5));
        // Non-matching key joins nothing.
        assert!(h
            .tuple(
                &mut j,
                1,
                Tuple::new().with("sym", "AAPL").with("qty", 1i64)
            )
            .is_empty());
    }

    #[test]
    fn window_expiry_prevents_stale_joins() {
        let mut j = join(1.0);
        let mut h = Harness::new(1);
        h.tuple(&mut j, 0, Tuple::new().with("sym", "X").with("v", 1i64));
        h.advance(sps_sim::SimDuration::from_secs(5));
        // The stored left tuple expired.
        let out = h.tuple(&mut j, 1, Tuple::new().with("sym", "X").with("w", 2i64));
        assert!(out.is_empty());
    }

    #[test]
    fn one_probe_can_match_many() {
        let mut j = join(100.0);
        let mut h = Harness::new(1);
        for i in 0..3i64 {
            h.tuple(&mut j, 0, Tuple::new().with("sym", "X").with("i", i));
        }
        let out = Harness::tuples_only(h.tuple(
            &mut j,
            1,
            Tuple::new().with("sym", "X").with("probe", true),
        ));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn collision_attributes_get_prefixes() {
        let mut j = join(100.0);
        let mut h = Harness::new(1);
        h.tuple(&mut j, 0, Tuple::new().with("sym", "X").with("ts", 1i64));
        let out = Harness::tuples_only(h.tuple(
            &mut j,
            1,
            Tuple::new().with("sym", "X").with("ts", 2i64),
        ));
        let t = &out[0].1;
        assert_eq!(t.get("ts"), None);
        assert_eq!(t.get_int("l_ts"), Some(1));
        assert_eq!(t.get_int("r_ts"), Some(2));
        assert_eq!(t.get_str("sym"), Some("X"));
    }

    #[test]
    fn final_punct_waits_for_both_sides() {
        let mut j = join(10.0);
        let mut h = Harness::new(1);
        assert!(h.punct(&mut j, 0, Punct::Final).is_empty());
        let out = h.punct(&mut j, 1, Punct::Final);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, StreamItem::Punct(Punct::Final)));
    }

    #[test]
    fn missing_key_faults() {
        let mut j = join(10.0);
        let mut metrics = crate::metrics::MetricStore::new();
        let mut rng = sps_sim::SimRng::new(1);
        let mut ctx = crate::op::OpCtx::new(
            sps_sim::SimTime::ZERO,
            sps_sim::SimDuration::from_millis(100),
            "j",
            1,
            &mut metrics,
            &mut rng,
        );
        j.on_tuple(0, Tuple::new().with("other", 1i64), &mut ctx);
        assert!(ctx.take_fault().is_some());
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Join::from_params("j", &ParamMap::new()).is_err());
        let params: ParamMap = [
            ("key".to_string(), Value::Str("k".into())),
            ("window_secs".to_string(), Value::Float(0.0)),
        ]
        .into_iter()
        .collect();
        assert!(Join::from_params("j", &params).is_err());
    }
}
