//! Beacon: a rate-controlled synthetic source.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::op::{OpCtx, Operator, Punct};
use crate::ops::{opt_f64, opt_i64, opt_str};
use crate::tuple::Tuple;
use crate::EngineError;
use sps_model::value::ParamMap;
use sps_model::Value;

/// Produces `rate` tuples per second of the form
/// `{seq: int, ts: timestamp [, payload: str]}`, emitting a final
/// punctuation after `limit` tuples (if set).
///
/// Parameters:
/// - `rate` (float, default 1.0): tuples per second,
/// - `limit` (int, optional): stop after this many tuples,
/// - `payload` (str, optional): constant attribute added to every tuple.
pub struct Beacon {
    rate: f64,
    limit: Option<i64>,
    payload: Option<String>,
    seq: i64,
    /// Fractional tuple accumulator (rate × quantum may be < 1).
    credit: f64,
    done: bool,
}

impl Beacon {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let rate = opt_f64(params, op, "rate")?.unwrap_or(1.0);
        if rate < 0.0 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "rate must be non-negative".into(),
            });
        }
        Ok(Beacon {
            rate,
            limit: opt_i64(params, op, "limit")?,
            payload: opt_str(params, "payload").map(str::to_string),
            seq: 0,
            credit: 0.0,
            done: false,
        })
    }
}

impl Operator for Beacon {
    fn on_tuple(&mut self, _port: usize, _tuple: Tuple, _ctx: &mut OpCtx) {
        // Sources have no inputs; ignore stray injections.
    }

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        if self.done {
            return;
        }
        self.credit += self.rate * ctx.quantum().as_secs_f64();
        while self.credit >= 1.0 - 1e-9 {
            if let Some(limit) = self.limit {
                if self.seq >= limit {
                    self.done = true;
                    ctx.submit_punct(0, Punct::Final);
                    return;
                }
            }
            self.credit -= 1.0;
            let mut t = Tuple::new()
                .with("seq", self.seq)
                .with("ts", Value::Timestamp(ctx.now().as_millis()));
            if let Some(p) = &self.payload {
                t.set("payload", p.as_str());
            }
            ctx.submit(0, t);
            self.seq += 1;
        }
        if let Some(limit) = self.limit {
            if self.seq >= limit {
                self.done = true;
                ctx.submit_punct(0, Punct::Final);
            }
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_i64(self.seq);
        w.put_f64(self.credit);
        w.put_bool(self.done);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.seq = r.get_i64()?;
        self.credit = r.get_f64()?;
        self.done = r.get_bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamItem;
    use crate::ops::testutil::Harness;
    use sps_sim::SimDuration;

    fn params(pairs: &[(&str, Value)]) -> ParamMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn produces_at_rate() {
        // 50 tuples/sec at 100 ms quantum = 5 tuples per tick.
        let mut b = Beacon::from_params("b", &params(&[("rate", Value::Float(50.0))])).unwrap();
        let mut h = Harness::new(1);
        let out = Harness::tuples_only(h.tick(&mut b));
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].1.get_int("seq"), Some(0));
        assert_eq!(out[4].1.get_int("seq"), Some(4));
    }

    #[test]
    fn fractional_rate_accumulates() {
        // 2 tuples/sec at 100 ms quantum = 0.2 per tick: one tuple every 5 ticks.
        let mut b = Beacon::from_params("b", &params(&[("rate", Value::Float(2.0))])).unwrap();
        let mut h = Harness::new(1);
        let mut total = 0;
        for _ in 0..10 {
            total += Harness::tuples_only(h.tick(&mut b)).len();
            h.advance(SimDuration::from_millis(100));
        }
        assert_eq!(total, 2);
    }

    #[test]
    fn limit_emits_final_once() {
        let mut b = Beacon::from_params(
            "b",
            &params(&[("rate", Value::Float(100.0)), ("limit", Value::Int(3))]),
        )
        .unwrap();
        let mut h = Harness::new(1);
        let out = h.tick(&mut b);
        let tuples = out
            .iter()
            .filter(|(_, i)| matches!(i, StreamItem::Tuple(_)))
            .count();
        let finals = out
            .iter()
            .filter(|(_, i)| matches!(i, StreamItem::Punct(Punct::Final)))
            .count();
        assert_eq!(tuples, 3);
        assert_eq!(finals, 1);
        // Subsequent ticks stay silent.
        assert!(h.tick(&mut b).is_empty());
    }

    #[test]
    fn payload_attribute() {
        let mut b = Beacon::from_params(
            "b",
            &params(&[
                ("rate", Value::Float(10.0)),
                ("payload", Value::Str("x".into())),
            ]),
        )
        .unwrap();
        let mut h = Harness::new(1);
        let out = Harness::tuples_only(h.tick(&mut b));
        assert_eq!(out[0].1.get_str("payload"), Some("x"));
        assert!(out[0].1.get("ts").is_some());
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Beacon::from_params("b", &params(&[("rate", Value::Float(-1.0))])).is_err());
        assert!(Beacon::from_params("b", &params(&[("rate", Value::Str("fast".into()))])).is_err());
        assert!(Beacon::from_params("b", &params(&[("limit", Value::Float(1.5))])).is_err());
    }

    #[test]
    fn default_rate_is_one_per_second() {
        let mut b = Beacon::from_params("b", &ParamMap::new()).unwrap();
        let mut h = Harness::new(1);
        let mut total = 0;
        for _ in 0..10 {
            total += Harness::tuples_only(h.tick(&mut b)).len();
            h.advance(SimDuration::from_millis(100));
        }
        assert_eq!(total, 1);
    }
}
