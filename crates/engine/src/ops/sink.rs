//! Sink: terminal operator collecting recent output for observation.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::op::{OpCtx, Operator, Punct, TupleBatch};
use crate::ops::opt_i64;
use crate::tuple::Tuple;
use crate::EngineError;
use sps_model::value::ParamMap;
use std::collections::VecDeque;

/// Retains the most recent `keep` tuples (default 256). The PE container
/// exposes sink contents via [`crate::pe::PeRuntime::tap`], which the
/// experiment harnesses and the GUI-replacement status boards read.
///
/// Parameters: `keep` (int, default 256).
pub struct Sink {
    keep: usize,
    recent: VecDeque<Tuple>,
    total: u64,
    finals: u64,
}

impl Sink {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let keep = opt_i64(params, op, "keep")?.unwrap_or(256);
        if keep <= 0 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "keep must be positive".into(),
            });
        }
        Ok(Sink {
            keep: keep as usize,
            recent: VecDeque::new(),
            total: 0,
            finals: 0,
        })
    }

    /// Total tuples ever received.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Final punctuations received.
    pub fn finals(&self) -> u64 {
        self.finals
    }
}

impl Operator for Sink {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, _ctx: &mut OpCtx) {
        self.total += 1;
        if self.recent.len() == self.keep {
            self.recent.pop_front();
        }
        self.recent.push_back(tuple);
    }

    // Batched ring insert: tuples that the rest of the batch would evict
    // anyway never enter the deque, and existing survivors are evicted in
    // one drain instead of one pop per arrival.
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, _ctx: &mut OpCtx) {
        self.total += batch.len() as u64;
        let skip = batch.len().saturating_sub(self.keep);
        let evict = (self.recent.len() + batch.len() - skip).saturating_sub(self.keep);
        self.recent.drain(..evict);
        self.recent.extend(batch.into_iter().skip(skip));
    }

    fn on_punct(&mut self, _port: usize, punct: Punct, _ctx: &mut OpCtx) {
        if punct == Punct::Final {
            self.finals += 1;
        }
        // Terminal: nothing to forward.
    }

    fn tap(&self) -> Option<Vec<Tuple>> {
        Some(self.recent.iter().cloned().collect())
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_u64(self.total);
        w.put_u64(self.finals);
        w.put_u32(self.recent.len() as u32);
        for t in &self.recent {
            w.put_tuple(t);
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.total = r.get_u64()?;
        self.finals = r.get_u64()?;
        let n = r.get_u32()? as usize;
        self.recent.clear();
        for _ in 0..n {
            self.recent.push_back(r.get_tuple()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::Harness;
    use sps_model::Value;

    #[test]
    fn collects_recent_with_ring_semantics() {
        let params: ParamMap = [("keep".to_string(), Value::Int(3))].into_iter().collect();
        let mut s = Sink::from_params("s", &params).unwrap();
        let mut h = Harness::new(0);
        for i in 0..5i64 {
            h.tuple(&mut s, 0, Tuple::new().with("i", i));
        }
        assert_eq!(s.total(), 5);
        let tap = s.tap().unwrap();
        let seen: Vec<i64> = tap.iter().map(|t| t.get_int("i").unwrap()).collect();
        assert_eq!(seen, vec![2, 3, 4]);
    }

    #[test]
    fn counts_finals_without_forwarding() {
        let mut s = Sink::from_params("s", &ParamMap::new()).unwrap();
        let mut h = Harness::new(0);
        assert!(h.punct(&mut s, 0, Punct::Final).is_empty());
        assert!(h.punct(&mut s, 0, Punct::Window).is_empty());
        assert_eq!(s.finals(), 1);
    }

    #[test]
    fn rejects_bad_keep() {
        let params: ParamMap = [("keep".to_string(), Value::Int(0))].into_iter().collect();
        assert!(Sink::from_params("s", &params).is_err());
    }
}
