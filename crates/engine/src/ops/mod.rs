//! Built-in operator library.
//!
//! Mirrors the SPL standard toolkit subset the paper's applications need:
//! sources (Beacon), relational ops (Filter/Functor/Split/Merge/DeDup),
//! windowed aggregation, flow control (Throttle/Work), sinks, import/export
//! pass-throughs, and a fault-injection operator for the failure experiments.

mod aggregate;
mod flow;
mod join;
mod relational;
mod sink;
mod source;

pub use aggregate::Aggregate;
pub use flow::{FaultInject, Import, PassThrough, Throttle, Work};
pub use join::Join;
pub use relational::{DeDup, Filter, Functor, Merge, Split};
pub use sink::Sink;
pub use source::Beacon;

use crate::error::EngineError;
use sps_model::value::ParamMap;
use sps_model::Value;

/// Parameter access helpers shared by operator constructors.
pub(crate) fn req_str<'p>(
    params: &'p ParamMap,
    op: &str,
    key: &str,
) -> Result<&'p str, EngineError> {
    params
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| EngineError::BadParam {
            op: op.to_string(),
            message: format!("missing string param '{key}'"),
        })
}

pub(crate) fn opt_str<'p>(params: &'p ParamMap, key: &str) -> Option<&'p str> {
    params.get(key).and_then(Value::as_str)
}

pub(crate) fn opt_i64(params: &ParamMap, op: &str, key: &str) -> Result<Option<i64>, EngineError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v.as_int().map(Some).ok_or_else(|| EngineError::BadParam {
            op: op.to_string(),
            message: format!("param '{key}' must be an int"),
        }),
    }
}

pub(crate) fn opt_f64(params: &ParamMap, op: &str, key: &str) -> Result<Option<f64>, EngineError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| EngineError::BadParam {
            op: op.to_string(),
            message: format!("param '{key}' must be numeric"),
        }),
    }
}

pub(crate) fn req_f64(params: &ParamMap, op: &str, key: &str) -> Result<f64, EngineError> {
    opt_f64(params, op, key)?.ok_or_else(|| EngineError::BadParam {
        op: op.to_string(),
        message: format!("missing numeric param '{key}'"),
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::metrics::MetricStore;
    use crate::op::{OpCtx, Operator, Punct, StreamItem};
    use crate::tuple::Tuple;
    use sps_sim::{SimDuration, SimRng, SimTime};

    /// Drives a single operator directly, without a PE container.
    pub struct Harness {
        pub metrics: MetricStore,
        pub rng: SimRng,
        pub now: SimTime,
        pub quantum: SimDuration,
        pub op_name: String,
        pub num_outputs: usize,
    }

    impl Harness {
        pub fn new(num_outputs: usize) -> Self {
            Harness {
                metrics: MetricStore::new(),
                rng: SimRng::new(7),
                now: SimTime::ZERO,
                quantum: SimDuration::from_millis(100),
                op_name: "test_op".into(),
                num_outputs,
            }
        }

        fn ctx(&mut self) -> OpCtx<'_> {
            OpCtx::new(
                self.now,
                self.quantum,
                &self.op_name,
                self.num_outputs,
                &mut self.metrics,
                &mut self.rng,
            )
        }

        pub fn tuple(
            &mut self,
            op: &mut dyn Operator,
            port: usize,
            t: Tuple,
        ) -> Vec<(usize, StreamItem)> {
            let mut ctx = self.ctx();
            op.on_tuple(port, t, &mut ctx);
            ctx.take_emitted()
        }

        pub fn punct(
            &mut self,
            op: &mut dyn Operator,
            port: usize,
            p: Punct,
        ) -> Vec<(usize, StreamItem)> {
            let mut ctx = self.ctx();
            op.on_punct(port, p, &mut ctx);
            ctx.take_emitted()
        }

        pub fn tick(&mut self, op: &mut dyn Operator) -> Vec<(usize, StreamItem)> {
            let mut ctx = self.ctx();
            op.on_tick(&mut ctx);
            ctx.take_emitted()
        }

        pub fn advance(&mut self, d: SimDuration) {
            self.now += d;
        }

        pub fn tuples_only(emitted: Vec<(usize, StreamItem)>) -> Vec<(usize, Tuple)> {
            emitted
                .into_iter()
                .filter_map(|(p, i)| match i {
                    StreamItem::Tuple(t) => Some((p, t)),
                    StreamItem::Punct(_) => None,
                })
                .collect()
        }
    }
}
