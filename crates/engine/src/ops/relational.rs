//! Relational-style operators: Filter, Functor, Split, Merge, DeDup.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::expr::Expr;
use crate::op::{FinalPunctTracker, OpCtx, Operator, Punct, TupleBatch};
use crate::ops::{opt_i64, opt_str, req_str};
use crate::tuple::Tuple;
use crate::EngineError;
use sps_model::value::ParamMap;
use sps_model::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// Forwards tuples matching a predicate; maintains the custom metric
/// `nDiscarded` (the paper's example of an operator-specific custom metric,
/// §2.1).
///
/// Parameters: `predicate` (str expression, required).
pub struct Filter {
    predicate: Expr,
}

impl Filter {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let src = req_str(params, op, "predicate")?;
        Ok(Filter {
            predicate: Expr::parse(src)?,
        })
    }
}

impl Operator for Filter {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        match self.predicate.eval_bool(&tuple) {
            Ok(true) => ctx.submit(0, tuple),
            Ok(false) => ctx.metric_add("nDiscarded", 1),
            Err(e) => ctx.raise_fault(format!("predicate failed: {e}")),
        }
    }
}

/// Per-tuple transformation: evaluates assignment expressions and optionally
/// projects a subset of attributes.
///
/// Parameters:
/// - `set:<attr>` (str expression): assign `<attr>` = expression result,
/// - `project` (str, optional): comma-separated attributes to keep (applied
///   after assignments).
pub struct Functor {
    assignments: Vec<(String, Expr)>,
    project: Option<Vec<String>>,
}

impl Functor {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let mut assignments = Vec::new();
        for (key, value) in params {
            if let Some(attr) = key.strip_prefix("set:") {
                let src = value.as_str().ok_or_else(|| EngineError::BadParam {
                    op: op.to_string(),
                    message: format!("assignment '{key}' must be a string expression"),
                })?;
                assignments.push((attr.to_string(), Expr::parse(src)?));
            }
        }
        let project = opt_str(params, "project").map(|s| {
            s.split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect()
        });
        Ok(Functor {
            assignments,
            project,
        })
    }
}

impl Operator for Functor {
    fn on_tuple(&mut self, _port: usize, mut tuple: Tuple, ctx: &mut OpCtx) {
        for (attr, expr) in &self.assignments {
            match expr.eval(&tuple) {
                Ok(v) => tuple.set(attr, v),
                Err(e) => {
                    ctx.raise_fault(format!("assignment to '{attr}' failed: {e}"));
                    return;
                }
            }
        }
        let out = match &self.project {
            None => tuple,
            Some(keep) => keep
                .iter()
                .filter_map(|k| tuple.get(k).map(|v| (k.clone(), v.clone())))
                .collect(),
        };
        ctx.submit(0, out);
    }
}

/// Routes tuples across all output ports, round-robin or by key hash.
///
/// Parameters:
/// - `mode` (str, default "roundrobin"): `roundrobin` or `hash`,
/// - `key` (str, required for hash mode): attribute to hash.
pub struct Split {
    mode: SplitMode,
    next: usize,
}

enum SplitMode {
    RoundRobin,
    Hash(String),
}

impl Split {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let mode = match opt_str(params, "mode").unwrap_or("roundrobin") {
            "roundrobin" => SplitMode::RoundRobin,
            "hash" => SplitMode::Hash(req_str(params, op, "key")?.to_string()),
            other => {
                return Err(EngineError::BadParam {
                    op: op.to_string(),
                    message: format!("unknown split mode '{other}'"),
                })
            }
        };
        Ok(Split { mode, next: 0 })
    }
}

impl Operator for Split {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        let n = ctx.num_outputs().max(1);
        let port = match &self.mode {
            SplitMode::RoundRobin => {
                let p = self.next % n;
                self.next = self.next.wrapping_add(1);
                p
            }
            SplitMode::Hash(key) => {
                let mut hasher = DefaultHasher::new();
                match tuple.get(key) {
                    Some(Value::Str(s)) => s.hash(&mut hasher),
                    Some(Value::Int(i)) => i.hash(&mut hasher),
                    Some(Value::Timestamp(t)) => t.hash(&mut hasher),
                    Some(Value::Bool(b)) => b.hash(&mut hasher),
                    Some(Value::Float(f)) => f.to_bits().hash(&mut hasher),
                    Some(Value::List(_)) | None => {
                        ctx.raise_fault(format!("split key '{key}' missing or unhashable"));
                        return;
                    }
                }
                (hasher.finish() % n as u64) as usize
            }
        };
        ctx.submit(port, tuple);
    }

    // Batched routing hoists the mode dispatch and port-count read out of
    // the per-tuple loop. Hash mode stops at the first unhashable tuple,
    // exactly where the per-tuple fallback would crash the PE.
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        let n = ctx.num_outputs().max(1);
        match &self.mode {
            SplitMode::RoundRobin => {
                for tuple in batch {
                    let p = self.next % n;
                    self.next = self.next.wrapping_add(1);
                    ctx.submit(p, tuple);
                }
            }
            SplitMode::Hash(key) => {
                for tuple in batch {
                    let mut hasher = DefaultHasher::new();
                    match tuple.get(key) {
                        Some(Value::Str(s)) => s.hash(&mut hasher),
                        Some(Value::Int(i)) => i.hash(&mut hasher),
                        Some(Value::Timestamp(t)) => t.hash(&mut hasher),
                        Some(Value::Bool(b)) => b.hash(&mut hasher),
                        Some(Value::Float(f)) => f.to_bits().hash(&mut hasher),
                        Some(Value::List(_)) | None => {
                            ctx.raise_fault(format!("split key '{key}' missing or unhashable"));
                            return;
                        }
                    }
                    ctx.submit((hasher.finish() % n as u64) as usize, tuple);
                }
            }
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_u64(self.next as u64);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        self.next = StateReader::new(blob).get_u64()? as usize;
        Ok(())
    }
}

/// Merges all input ports onto output port 0, forwarding a final
/// punctuation only after every input has delivered its own.
pub struct Merge {
    finals: FinalPunctTracker,
}

impl Merge {
    pub fn new(num_inputs: usize) -> Self {
        Merge {
            finals: FinalPunctTracker::new(num_inputs),
        }
    }
}

impl Operator for Merge {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        ctx.submit(0, tuple);
    }

    // Merge is pure forwarding, so a whole run moves as one bulk append.
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        ctx.submit_batch(0, batch);
    }

    fn on_punct(&mut self, port: usize, punct: Punct, ctx: &mut OpCtx) {
        match punct {
            Punct::Window => ctx.submit_punct(0, Punct::Window),
            Punct::Final => {
                if self.finals.mark(port) {
                    ctx.submit_punct(0, Punct::Final);
                }
            }
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        self.finals.encode(&mut w);
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        self.finals = FinalPunctTracker::decode(&mut StateReader::new(blob))?;
        Ok(())
    }
}

/// Suppresses tuples whose key was seen among the last `window` distinct
/// keys.
///
/// Parameters:
/// - `key` (str, required): attribute to deduplicate on,
/// - `window` (int, default 1024): number of recent keys remembered.
pub struct DeDup {
    key: String,
    window: usize,
    seen: HashSet<String>,
    order: VecDeque<String>,
}

impl DeDup {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let window = opt_i64(params, op, "window")?.unwrap_or(1024);
        if window <= 0 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "window must be positive".into(),
            });
        }
        Ok(DeDup {
            key: req_str(params, op, "key")?.to_string(),
            window: window as usize,
            seen: HashSet::new(),
            order: VecDeque::new(),
        })
    }
}

impl Operator for DeDup {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        let Some(v) = tuple.get(&self.key) else {
            ctx.raise_fault(format!("dedup key '{}' missing", self.key));
            return;
        };
        let rendered = v.render();
        if self.seen.contains(&rendered) {
            ctx.metric_add("nDuplicates", 1);
            return;
        }
        self.seen.insert(rendered.clone());
        self.order.push_back(rendered);
        if self.order.len() > self.window {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        ctx.submit(0, tuple);
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_u32(self.order.len() as u32);
        for key in &self.order {
            w.put_str(key);
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        let n = r.get_u32()? as usize;
        self.order.clear();
        self.seen.clear();
        for _ in 0..n {
            let key = r.get_str()?;
            self.seen.insert(key.clone());
            self.order.push_back(key);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamItem;
    use crate::ops::testutil::Harness;

    fn params(pairs: &[(&str, &str)]) -> ParamMap {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Str(v.to_string())))
            .collect()
    }

    #[test]
    fn filter_forwards_and_counts_discards() {
        let mut f = Filter::from_params("f", &params(&[("predicate", "x > 5")])).unwrap();
        let mut h = Harness::new(1);
        assert_eq!(h.tuple(&mut f, 0, Tuple::new().with("x", 10i64)).len(), 1);
        assert_eq!(h.tuple(&mut f, 0, Tuple::new().with("x", 3i64)).len(), 0);
        assert_eq!(h.tuple(&mut f, 0, Tuple::new().with("x", 1i64)).len(), 0);
        assert_eq!(h.metrics.op_get("test_op", "nDiscarded"), Some(2));
    }

    #[test]
    fn filter_requires_predicate() {
        assert!(Filter::from_params("f", &ParamMap::new()).is_err());
        assert!(Filter::from_params("f", &params(&[("predicate", "x +")])).is_err());
    }

    #[test]
    fn filter_faults_on_eval_error() {
        let mut f = Filter::from_params("f", &params(&[("predicate", "ghost > 1")])).unwrap();
        let mut h = Harness::new(1);
        // Direct harness doesn't intercept faults; simulate via ctx.
        let mut ctx_metrics = std::mem::take(&mut h.metrics);
        let mut rng = sps_sim::SimRng::new(1);
        let mut ctx = crate::op::OpCtx::new(h.now, h.quantum, "f", 1, &mut ctx_metrics, &mut rng);
        f.on_tuple(0, Tuple::new().with("x", 1i64), &mut ctx);
        assert!(ctx.take_fault().is_some());
    }

    #[test]
    fn functor_assigns_and_projects() {
        let mut params = ParamMap::new();
        params.insert("set:double".into(), Value::Str("x * 2".into()));
        params.insert("set:label".into(), Value::Str("\"v\" + name".into()));
        params.insert("project".into(), Value::Str("double, label".into()));
        let mut f = Functor::from_params("f", &params).unwrap();
        let mut h = Harness::new(1);
        let out = Harness::tuples_only(h.tuple(
            &mut f,
            0,
            Tuple::new().with("x", 21i64).with("name", "a"),
        ));
        let t = &out[0].1;
        assert_eq!(t.get_int("double"), Some(42));
        assert_eq!(t.get_str("label"), Some("va"));
        assert_eq!(t.len(), 2); // x and name projected away
    }

    #[test]
    fn functor_rejects_non_string_assignment() {
        let mut params = ParamMap::new();
        params.insert("set:y".into(), Value::Int(5));
        assert!(Functor::from_params("f", &params).is_err());
    }

    #[test]
    fn functor_no_params_is_identity() {
        let mut f = Functor::from_params("f", &ParamMap::new()).unwrap();
        let mut h = Harness::new(1);
        let input = Tuple::new().with("a", 1i64);
        let out = Harness::tuples_only(h.tuple(&mut f, 0, input.clone()));
        assert_eq!(out[0].1, input);
    }

    #[test]
    fn split_round_robin_cycles_ports() {
        let mut s = Split::from_params("s", &ParamMap::new()).unwrap();
        let mut h = Harness::new(3);
        let mut ports = Vec::new();
        for i in 0..6 {
            let out = h.tuple(&mut s, 0, Tuple::new().with("i", i as i64));
            ports.push(out[0].0);
        }
        assert_eq!(ports, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn split_hash_is_stable_per_key() {
        let mut s = Split::from_params("s", &params(&[("mode", "hash"), ("key", "sym")])).unwrap();
        let mut h = Harness::new(4);
        let p1 = h.tuple(&mut s, 0, Tuple::new().with("sym", "IBM"))[0].0;
        for _ in 0..10 {
            let p = h.tuple(&mut s, 0, Tuple::new().with("sym", "IBM"))[0].0;
            assert_eq!(p, p1);
        }
    }

    #[test]
    fn split_rejects_unknown_mode_and_missing_key() {
        assert!(Split::from_params("s", &params(&[("mode", "magic")])).is_err());
        assert!(Split::from_params("s", &params(&[("mode", "hash")])).is_err());
    }

    #[test]
    fn merge_forwards_and_coalesces_finals() {
        let mut m = Merge::new(2);
        let mut h = Harness::new(1);
        assert_eq!(h.tuple(&mut m, 1, Tuple::new().with("a", 1i64))[0].0, 0);
        // First final: swallowed.
        assert!(h.punct(&mut m, 0, Punct::Final).is_empty());
        // Window puncts pass through.
        assert_eq!(h.punct(&mut m, 0, Punct::Window).len(), 1);
        // Second final: emitted once.
        let out = h.punct(&mut m, 1, Punct::Final);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, StreamItem::Punct(Punct::Final)));
        // No further finals.
        assert!(h.punct(&mut m, 1, Punct::Final).is_empty());
    }

    #[test]
    fn dedup_suppresses_recent_keys() {
        let mut d = DeDup::from_params(
            "d",
            &[
                ("key".to_string(), Value::Str("id".into())),
                ("window".to_string(), Value::Int(2)),
            ]
            .into_iter()
            .collect(),
        )
        .unwrap();
        let mut h = Harness::new(1);
        let t = |id: &str| Tuple::new().with("id", id);
        assert_eq!(h.tuple(&mut d, 0, t("a")).len(), 1);
        assert_eq!(h.tuple(&mut d, 0, t("a")).len(), 0);
        assert_eq!(h.tuple(&mut d, 0, t("b")).len(), 1);
        // Window of 2: "a" and "b" remembered; "c" evicts "a".
        assert_eq!(h.tuple(&mut d, 0, t("c")).len(), 1);
        assert_eq!(h.tuple(&mut d, 0, t("a")).len(), 1);
        assert_eq!(h.metrics.op_get("test_op", "nDuplicates"), Some(1));
    }

    #[test]
    fn dedup_rejects_bad_window() {
        let mut p = ParamMap::new();
        p.insert("key".into(), Value::Str("id".into()));
        p.insert("window".into(), Value::Int(0));
        assert!(DeDup::from_params("d", &p).is_err());
    }
}
