//! Windowed aggregation over a numeric attribute, optionally grouped.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::op::{OpCtx, Operator, Punct, TupleBatch};
use crate::ops::{opt_str, req_f64, req_str};
use crate::tuple::Tuple;
use crate::window::SlidingTimeWindow;
use crate::EngineError;
use sps_model::value::ParamMap;
use sps_model::Value;
use sps_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Maintains a sliding time window per group and periodically emits
/// `{group, count, min, max, avg, stddev, upper, lower, full, ts}` — the
/// financial-calculation shape of the Trend Calculator (§5.2): min/max/avg
/// plus Bollinger Bands (`avg ± bollinger_k · stddev`).
///
/// Parameters:
/// - `value` (str, required): numeric attribute to aggregate,
/// - `window_secs` (float, required): sliding window span,
/// - `period_secs` (float, required): emission period,
/// - `group_by` (str, optional): grouping attribute (default: single group),
/// - `bollinger_k` (float, default 2.0): band width multiplier.
pub struct Aggregate {
    value_attr: String,
    group_by: Option<String>,
    window: SimDuration,
    period: SimDuration,
    bollinger_k: f64,
    groups: BTreeMap<String, SlidingTimeWindow<f64>>,
    last_emit: Option<SimTime>,
    got_final: bool,
}

impl Aggregate {
    pub fn from_params(op: &str, params: &ParamMap) -> Result<Self, EngineError> {
        let window_secs = req_f64(params, op, "window_secs")?;
        let period_secs = req_f64(params, op, "period_secs")?;
        if window_secs <= 0.0 || period_secs <= 0.0 {
            return Err(EngineError::BadParam {
                op: op.to_string(),
                message: "window_secs and period_secs must be positive".into(),
            });
        }
        Ok(Aggregate {
            value_attr: req_str(params, op, "value")?.to_string(),
            group_by: opt_str(params, "group_by").map(str::to_string),
            window: SimDuration::from_millis((window_secs * 1000.0) as u64),
            period: SimDuration::from_millis((period_secs * 1000.0) as u64),
            bollinger_k: params
                .get("bollinger_k")
                .and_then(Value::as_f64)
                .unwrap_or(2.0),
            groups: BTreeMap::new(),
            last_emit: None,
            got_final: false,
        })
    }

    fn emit_all(&mut self, ctx: &mut OpCtx) {
        let now = ctx.now();
        for (group, window) in &mut self.groups {
            window.evict(now);
            let Some(a) = window.aggregates() else {
                continue;
            };
            let t = Tuple::new()
                .with("group", group.as_str())
                .with("count", a.count as i64)
                .with("min", a.min)
                .with("max", a.max)
                .with("avg", a.avg)
                .with("stddev", a.stddev)
                .with("upper", a.avg + self.bollinger_k * a.stddev)
                .with("lower", a.avg - self.bollinger_k * a.stddev)
                .with("full", window.is_full(now))
                .with("ts", Value::Timestamp(now.as_millis()));
            ctx.submit(0, t);
        }
    }
}

impl Operator for Aggregate {
    fn on_tuple(&mut self, _port: usize, tuple: Tuple, ctx: &mut OpCtx) {
        let Some(v) = tuple.get_f64(&self.value_attr) else {
            ctx.raise_fault(format!(
                "aggregate value attribute '{}' missing or non-numeric",
                self.value_attr
            ));
            return;
        };
        let group = match &self.group_by {
            None => String::new(),
            Some(attr) => match tuple.get(attr) {
                Some(val) => val.render(),
                None => {
                    ctx.raise_fault(format!("group_by attribute '{attr}' missing"));
                    return;
                }
            },
        };
        let window_span = self.window;
        self.groups
            .entry(group)
            .or_insert_with(|| SlidingTimeWindow::new(window_span))
            .push(ctx.now(), v);
    }

    // Batched ingest. Ungrouped aggregation resolves the group window once
    // for the whole run instead of one BTreeMap probe per tuple; grouped
    // aggregation keeps per-tuple probes (keys vary within a run) but
    // hoists the timestamp and mode dispatch. Faults stop consumption at
    // the faulting tuple, matching the per-tuple fallback.
    fn on_batch(&mut self, _port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        let now = ctx.now();
        let span = self.window;
        match &self.group_by {
            None => {
                let window = self
                    .groups
                    .entry(String::new())
                    .or_insert_with(|| SlidingTimeWindow::new(span));
                for tuple in batch {
                    let Some(v) = tuple.get_f64(&self.value_attr) else {
                        ctx.raise_fault(format!(
                            "aggregate value attribute '{}' missing or non-numeric",
                            self.value_attr
                        ));
                        return;
                    };
                    window.push(now, v);
                }
            }
            Some(attr) => {
                for tuple in batch {
                    let Some(v) = tuple.get_f64(&self.value_attr) else {
                        ctx.raise_fault(format!(
                            "aggregate value attribute '{}' missing or non-numeric",
                            self.value_attr
                        ));
                        return;
                    };
                    let group = match tuple.get(attr) {
                        Some(val) => val.render(),
                        None => {
                            ctx.raise_fault(format!("group_by attribute '{attr}' missing"));
                            return;
                        }
                    };
                    self.groups
                        .entry(group)
                        .or_insert_with(|| SlidingTimeWindow::new(span))
                        .push(now, v);
                }
            }
        }
    }

    fn on_punct(&mut self, _port: usize, punct: Punct, ctx: &mut OpCtx) {
        if punct == Punct::Final && !self.got_final {
            self.got_final = true;
            // Flush one last aggregate so downstream sees the final state.
            self.emit_all(ctx);
            ctx.submit_punct(0, Punct::Final);
        }
    }

    fn on_tick(&mut self, ctx: &mut OpCtx) {
        if self.got_final {
            return;
        }
        let due = match self.last_emit {
            None => true,
            Some(last) => ctx.now().since(last) >= self.period,
        };
        if due {
            self.last_emit = Some(ctx.now());
            self.emit_all(ctx);
        }
    }

    fn checkpoint(&self) -> Option<StateBlob> {
        let mut w = StateWriter::new();
        w.put_opt(&self.last_emit, |w, t| w.put_time(*t));
        w.put_bool(self.got_final);
        w.put_u32(self.groups.len() as u32);
        for (group, window) in &self.groups {
            w.put_str(group);
            w.put_u32(window.len() as u32);
            for (at, v) in window.iter() {
                w.put_time(*at);
                w.put_f64(*v);
            }
        }
        Some(w.finish())
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let mut r = StateReader::new(blob);
        self.last_emit = r.get_opt(|r| r.get_time())?;
        self.got_final = r.get_bool()?;
        let groups = r.get_u32()? as usize;
        self.groups.clear();
        for _ in 0..groups {
            let group = r.get_str()?;
            let mut window = SlidingTimeWindow::new(self.window);
            for _ in 0..r.get_u32()? {
                let at = r.get_time()?;
                let v = r.get_f64()?;
                window.push(at, v);
            }
            self.groups.insert(group, window);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::StreamItem;
    use crate::ops::testutil::Harness;

    fn agg(pairs: &[(&str, Value)]) -> Aggregate {
        let params: ParamMap = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        Aggregate::from_params("agg", &params).unwrap()
    }

    fn base_params() -> Vec<(&'static str, Value)> {
        vec![
            ("value", Value::Str("price".into())),
            ("window_secs", Value::Float(600.0)),
            ("period_secs", Value::Float(1.0)),
        ]
    }

    #[test]
    fn aggregates_single_group() {
        let mut a = agg(&base_params());
        let mut h = Harness::new(1);
        for p in [10.0, 20.0, 30.0] {
            h.tuple(&mut a, 0, Tuple::new().with("price", p));
        }
        let out = Harness::tuples_only(h.tick(&mut a));
        assert_eq!(out.len(), 1);
        let t = &out[0].1;
        assert_eq!(t.get_int("count"), Some(3));
        assert_eq!(t.get_f64("min"), Some(10.0));
        assert_eq!(t.get_f64("max"), Some(30.0));
        assert_eq!(t.get_f64("avg"), Some(20.0));
        // Bollinger bands: avg ± 2σ, σ = sqrt(200/3).
        let sigma = (200.0f64 / 3.0).sqrt();
        assert!((t.get_f64("upper").unwrap() - (20.0 + 2.0 * sigma)).abs() < 1e-9);
        assert!((t.get_f64("lower").unwrap() - (20.0 - 2.0 * sigma)).abs() < 1e-9);
        assert_eq!(t.get_bool("full"), Some(false)); // window not yet covered
    }

    #[test]
    fn groups_are_independent() {
        let mut params = base_params();
        params.push(("group_by", Value::Str("sym".into())));
        let mut a = agg(&params);
        let mut h = Harness::new(1);
        h.tuple(&mut a, 0, Tuple::new().with("sym", "A").with("price", 1.0));
        h.tuple(
            &mut a,
            0,
            Tuple::new().with("sym", "B").with("price", 100.0),
        );
        let out = Harness::tuples_only(h.tick(&mut a));
        assert_eq!(out.len(), 2);
        // BTreeMap ordering makes emission deterministic: s:A before s:B.
        assert_eq!(out[0].1.get_str("group"), Some("s:A"));
        assert_eq!(out[0].1.get_f64("avg"), Some(1.0));
        assert_eq!(out[1].1.get_f64("avg"), Some(100.0));
    }

    #[test]
    fn emission_respects_period() {
        let mut params = base_params();
        params[2] = ("period_secs", Value::Float(1.0));
        let mut a = agg(&params);
        let mut h = Harness::new(1);
        h.tuple(&mut a, 0, Tuple::new().with("price", 5.0));
        assert_eq!(h.tick(&mut a).len(), 1); // first tick emits
        h.advance(SimDuration::from_millis(100));
        assert_eq!(h.tick(&mut a).len(), 0); // only 100 ms elapsed
        h.advance(SimDuration::from_millis(900));
        assert_eq!(h.tick(&mut a).len(), 1); // period reached
    }

    #[test]
    fn final_punct_flushes_and_forwards() {
        let mut a = agg(&base_params());
        let mut h = Harness::new(1);
        h.tuple(&mut a, 0, Tuple::new().with("price", 5.0));
        let out = h.punct(&mut a, 0, Punct::Final);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].1, StreamItem::Tuple(_)));
        assert!(matches!(out[1].1, StreamItem::Punct(Punct::Final)));
        // After final: ticks are silent, repeat finals swallowed.
        assert!(h.tick(&mut a).is_empty());
        assert!(h.punct(&mut a, 0, Punct::Final).is_empty());
    }

    #[test]
    fn missing_value_attr_faults() {
        let mut a = agg(&base_params());
        let mut metrics = crate::metrics::MetricStore::new();
        let mut rng = sps_sim::SimRng::new(1);
        let mut ctx = crate::op::OpCtx::new(
            SimTime::ZERO,
            SimDuration::from_millis(100),
            "agg",
            1,
            &mut metrics,
            &mut rng,
        );
        a.on_tuple(0, Tuple::new().with("other", 1i64), &mut ctx);
        assert!(ctx.take_fault().is_some());
    }

    #[test]
    fn rejects_bad_params() {
        let params: ParamMap = [
            ("value".to_string(), Value::Str("p".into())),
            ("window_secs".to_string(), Value::Float(0.0)),
            ("period_secs".to_string(), Value::Float(1.0)),
        ]
        .into_iter()
        .collect();
        assert!(Aggregate::from_params("a", &params).is_err());
        assert!(Aggregate::from_params("a", &ParamMap::new()).is_err());
    }

    #[test]
    fn window_fullness_flag_turns_true() {
        let mut params = base_params();
        params[1] = ("window_secs", Value::Float(1.0));
        let mut a = agg(&params);
        let mut h = Harness::new(1);
        h.tuple(&mut a, 0, Tuple::new().with("price", 1.0));
        h.advance(SimDuration::from_millis(1500));
        h.tuple(&mut a, 0, Tuple::new().with("price", 2.0));
        let out = Harness::tuples_only(h.tick(&mut a));
        // Oldest surviving sample is 1.5 s old > 1 s span... it was evicted;
        // the remaining sample alone doesn't cover the span.
        assert_eq!(out[0].1.get_bool("full"), Some(false));
        h.advance(SimDuration::from_millis(1000));
        h.tuple(&mut a, 0, Tuple::new().with("price", 3.0));
        let out = Harness::tuples_only(h.tick(&mut a));
        assert_eq!(out[0].1.get_bool("full"), Some(true));
    }
}
