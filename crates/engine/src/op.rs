//! The operator abstraction and its execution context.

use crate::ckpt::{StateBlob, StateReader, StateWriter};
use crate::error::EngineError;
use crate::metrics::MetricStore;
use crate::tuple::Tuple;
use sps_sim::{SimDuration, SimRng, SimTime};

/// Stream punctuation marks (§2.1/§5.3). `Final` indicates an operator will
/// never produce tuples again; its generation and forwarding is managed by
/// the runtime and drives the dynamic-composition use case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Punct {
    Window,
    Final,
}

/// What flows on a stream: tuples interleaved with punctuation.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamItem {
    Tuple(Tuple),
    Punct(Punct),
}

/// A run of consecutive tuples delivered to one input port within a single
/// scheduling quantum. Batch boundaries never cross punctuation or quantum
/// boundaries, so batching is invisible to determinism: an operator sees
/// exactly the tuples, in exactly the order, that per-tuple delivery would
/// have produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TupleBatch {
    items: Vec<Tuple>,
}

impl TupleBatch {
    pub fn new() -> Self {
        TupleBatch { items: Vec::new() }
    }

    pub fn with_capacity(n: usize) -> Self {
        TupleBatch {
            items: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, t: Tuple) {
        self.items.push(t);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.items.iter()
    }

    /// Sum of the per-tuple size estimates, used for byte-level metrics.
    pub fn approx_bytes(&self) -> usize {
        self.items.iter().map(|t| t.approx_bytes()).sum()
    }

    pub fn as_slice(&self) -> &[Tuple] {
        &self.items
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(items: Vec<Tuple>) -> Self {
        TupleBatch { items }
    }
}

impl IntoIterator for TupleBatch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Execution context handed to operator callbacks.
///
/// Collects submissions (routed by the PE container after the callback
/// returns), exposes custom-metric updates, deterministic randomness, the
/// simulation clock, and a fault channel: an operator raising a fault
/// crashes its whole PE, modelling the uncaught-exception PE crash of §4.2.
pub struct OpCtx<'a> {
    now: SimTime,
    quantum: SimDuration,
    op_name: &'a str,
    num_outputs: usize,
    metrics: &'a mut MetricStore,
    rng: &'a mut SimRng,
    emitted: Vec<(usize, StreamItem)>,
    fault: Option<String>,
    all_inputs_final: bool,
}

impl<'a> OpCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        quantum: SimDuration,
        op_name: &'a str,
        num_outputs: usize,
        metrics: &'a mut MetricStore,
        rng: &'a mut SimRng,
    ) -> Self {
        OpCtx {
            now,
            quantum,
            op_name,
            num_outputs,
            metrics,
            rng,
            emitted: Vec::new(),
            fault: None,
            all_inputs_final: true,
        }
    }

    /// Set by the PE container before delivering punctuation: whether every
    /// input port of this operator has now received a final punctuation.
    pub(crate) fn set_all_inputs_final(&mut self, v: bool) {
        self.all_inputs_final = v;
    }

    /// True when a final punctuation has arrived on *every* input port of
    /// this operator (the container tracks per-port finals). The default
    /// [`Operator::on_punct`] consults this so multi-input operators do not
    /// finalize downstream as soon as their first input finishes.
    pub fn all_inputs_final(&self) -> bool {
        self.all_inputs_final
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Duration of one scheduling quantum (tick period for sources).
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// This operator's full instance name.
    pub fn op_name(&self) -> &str {
        self.op_name
    }

    /// Number of output ports of this operator.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Submits a tuple on an output port.
    pub fn submit(&mut self, port: usize, tuple: Tuple) {
        debug_assert!(port < self.num_outputs, "submit on nonexistent port");
        self.emitted.push((port, StreamItem::Tuple(tuple)));
    }

    /// Submits every tuple of a batch on one output port, preserving order.
    /// Bulk variant of [`OpCtx::submit`] for batched operator
    /// implementations that forward whole runs (Merge, pass-throughs).
    pub fn submit_batch(&mut self, port: usize, batch: TupleBatch) {
        debug_assert!(port < self.num_outputs, "submit on nonexistent port");
        self.emitted
            .extend(batch.into_iter().map(|t| (port, StreamItem::Tuple(t))));
    }

    /// Submits punctuation on an output port.
    pub fn submit_punct(&mut self, port: usize, punct: Punct) {
        debug_assert!(port < self.num_outputs, "punct on nonexistent port");
        self.emitted.push((port, StreamItem::Punct(punct)));
    }

    /// Adds to (creating if needed) a custom metric of this operator.
    pub fn metric_add(&mut self, metric: &str, delta: i64) {
        self.metrics.op_add(self.op_name, metric, delta);
    }

    /// Sets a custom metric of this operator to an absolute value.
    pub fn metric_set(&mut self, metric: &str, value: i64) {
        self.metrics.op_set(self.op_name, metric, value);
    }

    /// Reads back one of this operator's metrics.
    pub fn metric_get(&self, metric: &str) -> Option<i64> {
        self.metrics.op_get(self.op_name, metric)
    }

    /// Deterministic per-PE random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Raises a fatal operator fault: the containing PE crashes, SAM is
    /// notified, and (if scoped) the orchestrator receives a PE-failure
    /// event.
    pub fn raise_fault(&mut self, message: impl Into<String>) {
        self.fault = Some(message.into());
    }

    /// True once [`OpCtx::raise_fault`] has been called during this callback.
    /// Batched implementations consult this to stop consuming the remainder
    /// of a batch after a tuple faulted — everything after the faulting tuple
    /// is lost with the crashing PE, exactly as per-tuple delivery loses the
    /// cleared input queues.
    pub fn has_fault(&self) -> bool {
        self.fault.is_some()
    }

    pub(crate) fn take_emitted(&mut self) -> Vec<(usize, StreamItem)> {
        std::mem::take(&mut self.emitted)
    }

    pub(crate) fn take_fault(&mut self) -> Option<String> {
        self.fault.take()
    }
}

/// A stream operator. Implementations are instantiated per ADL invocation by
/// the [`crate::registry::OperatorRegistry`].
pub trait Operator {
    /// Called for every tuple arriving on `port`.
    fn on_tuple(&mut self, port: usize, tuple: Tuple, ctx: &mut OpCtx);

    /// Called with a run of consecutive tuples from one input port within a
    /// single quantum. The default loops [`Operator::on_tuple`], stopping
    /// after a tuple raises a fault (the rest of the batch dies with the
    /// PE), so every existing operator behaves identically under batching.
    ///
    /// Overrides must preserve the per-tuple contract: process tuples in
    /// batch order, produce the same submissions the per-tuple loop would,
    /// and stop consuming once [`OpCtx::has_fault`] is set. Punctuation is
    /// never part of a batch — it still arrives via [`Operator::on_punct`],
    /// and a batch never spans a punctuation or quantum boundary.
    fn on_batch(&mut self, port: usize, batch: TupleBatch, ctx: &mut OpCtx) {
        for tuple in batch {
            if ctx.has_fault() {
                break;
            }
            self.on_tuple(port, tuple, ctx);
        }
    }

    /// Called for punctuation arriving on `port`. The default forwards
    /// window punctuation to every output port, and forwards a `Final` only
    /// once *every* input port has delivered its own final (the container
    /// tracks per-port finals and exposes [`OpCtx::all_inputs_final`]) — so
    /// a multi-input operator using the default does not finalize downstream
    /// as soon as its first input finishes. Operators needing custom
    /// finalization (flush-on-final, per-side bookkeeping) still override
    /// this, typically with a [`FinalPunctTracker`].
    fn on_punct(&mut self, port: usize, punct: Punct, ctx: &mut OpCtx) {
        let _ = port;
        if punct == Punct::Final && !ctx.all_inputs_final() {
            return;
        }
        for p in 0..ctx.num_outputs() {
            ctx.submit_punct(p, punct);
        }
    }

    /// Called once per scheduling quantum; sources produce tuples here.
    fn on_tick(&mut self, ctx: &mut OpCtx) {
        let _ = ctx;
    }

    /// Processing-budget units charged per tuple (default 1). CPU-heavy
    /// operators report more, so fused PEs saturate realistically.
    fn cost_per_tuple(&self) -> u32 {
        1
    }

    /// Observable contents for sink-like operators (`None` otherwise). The
    /// PE container surfaces this via [`crate::pe::PeRuntime::tap`].
    fn tap(&self) -> Option<Vec<Tuple>> {
        None
    }

    /// Serializes this operator's recoverable state. The default (`None`)
    /// declares the operator stateless; stateful operators return a
    /// [`StateBlob`] the runtime's checkpoint store persists and feeds back
    /// through [`Operator::restore`] when the PE is recovered after a crash.
    /// Encoding must be canonical: checkpoint → restore → checkpoint has to
    /// reproduce identical bytes, which is how restores self-verify.
    fn checkpoint(&self) -> Option<StateBlob> {
        None
    }

    /// Reconstructs state from a blob produced by [`Operator::checkpoint`].
    /// Only called with blobs this operator kind wrote; the default errors
    /// so an operator that checkpoints without implementing restore fails
    /// loudly instead of silently coming back empty.
    fn restore(&mut self, blob: &StateBlob) -> Result<(), EngineError> {
        let _ = blob;
        Err(EngineError::Checkpoint(
            "operator produced a checkpoint but does not implement restore".into(),
        ))
    }
}

/// Helper for multi-input operators: emits `Final` downstream only after a
/// final punctuation arrived on every input port.
#[derive(Clone, Debug)]
pub struct FinalPunctTracker {
    seen: Vec<bool>,
    fired: bool,
}

impl FinalPunctTracker {
    pub fn new(num_inputs: usize) -> Self {
        FinalPunctTracker {
            seen: vec![false; num_inputs],
            fired: false,
        }
    }

    /// Records a final punct on `port`; returns true exactly once, when all
    /// ports have seen their final.
    pub fn mark(&mut self, port: usize) -> bool {
        if port < self.seen.len() {
            self.seen[port] = true;
        }
        if !self.fired && self.seen.iter().all(|&s| s) {
            self.fired = true;
            true
        } else {
            false
        }
    }

    pub fn is_complete(&self) -> bool {
        self.fired
    }

    /// Serializes the tracker into an operator state blob.
    pub fn encode(&self, w: &mut StateWriter) {
        w.put_u32(self.seen.len() as u32);
        for &s in &self.seen {
            w.put_bool(s);
        }
        w.put_bool(self.fired);
    }

    /// Reads a tracker back from [`FinalPunctTracker::encode`] output.
    pub fn decode(r: &mut StateReader) -> Result<Self, EngineError> {
        let n = r.get_u32()? as usize;
        let mut seen = Vec::with_capacity(n);
        for _ in 0..n {
            seen.push(r.get_bool()?);
        }
        Ok(FinalPunctTracker {
            seen,
            fired: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_ctx<R>(f: impl FnOnce(&mut OpCtx) -> R) -> (R, MetricStore) {
        let mut metrics = MetricStore::new();
        let mut rng = SimRng::new(1);
        let mut ctx = OpCtx::new(
            SimTime::from_secs(1),
            SimDuration::from_millis(100),
            "op1",
            2,
            &mut metrics,
            &mut rng,
        );
        let r = f(&mut ctx);
        (r, metrics)
    }

    #[test]
    fn ctx_accessors() {
        with_ctx(|ctx| {
            assert_eq!(ctx.now(), SimTime::from_secs(1));
            assert_eq!(ctx.quantum(), SimDuration::from_millis(100));
            assert_eq!(ctx.op_name(), "op1");
            assert_eq!(ctx.num_outputs(), 2);
            let _ = ctx.rng().next_f64();
        });
    }

    #[test]
    fn submissions_collected_in_order() {
        let (emitted, _) = with_ctx(|ctx| {
            ctx.submit(0, Tuple::new().with("a", 1i64));
            ctx.submit_punct(1, Punct::Final);
            ctx.submit(1, Tuple::new().with("b", 2i64));
            ctx.take_emitted()
        });
        assert_eq!(emitted.len(), 3);
        assert!(matches!(emitted[0], (0, StreamItem::Tuple(_))));
        assert!(matches!(emitted[1], (1, StreamItem::Punct(Punct::Final))));
        assert!(matches!(emitted[2], (1, StreamItem::Tuple(_))));
    }

    #[test]
    fn metrics_through_ctx() {
        let (_, metrics) = with_ctx(|ctx| {
            ctx.metric_add("nKnown", 3);
            ctx.metric_add("nKnown", 2);
            ctx.metric_set("nUnknown", 7);
            assert_eq!(ctx.metric_get("nKnown"), Some(5));
            assert_eq!(ctx.metric_get("ghost"), None);
        });
        assert_eq!(metrics.op_get("op1", "nKnown"), Some(5));
        assert_eq!(metrics.op_get("op1", "nUnknown"), Some(7));
    }

    #[test]
    fn fault_channel() {
        let (fault, _) = with_ctx(|ctx| {
            assert!(ctx.take_fault().is_none());
            ctx.raise_fault("segfault in model reload");
            ctx.take_fault()
        });
        assert_eq!(fault.as_deref(), Some("segfault in model reload"));
    }

    #[test]
    fn default_punct_forwarding() {
        struct PassThrough;
        impl Operator for PassThrough {
            fn on_tuple(&mut self, _p: usize, t: Tuple, ctx: &mut OpCtx) {
                ctx.submit(0, t);
            }
        }
        let (emitted, _) = with_ctx(|ctx| {
            let mut op = PassThrough;
            op.on_punct(0, Punct::Final, ctx);
            ctx.take_emitted()
        });
        // Forwarded to both output ports.
        assert_eq!(emitted.len(), 2);
        assert!(emitted
            .iter()
            .all(|(_, i)| matches!(i, StreamItem::Punct(Punct::Final))));
    }

    /// Regression for the multi-input early-final bug: when the container
    /// reports that not every input port is final yet, the default
    /// `on_punct` must swallow a `Final` (but still pass `Window` through).
    #[test]
    fn default_punct_waits_for_all_inputs() {
        struct PassThrough;
        impl Operator for PassThrough {
            fn on_tuple(&mut self, _p: usize, t: Tuple, ctx: &mut OpCtx) {
                ctx.submit(0, t);
            }
        }
        let (emitted, _) = with_ctx(|ctx| {
            ctx.set_all_inputs_final(false);
            let mut op = PassThrough;
            op.on_punct(0, Punct::Final, ctx);
            op.on_punct(0, Punct::Window, ctx);
            assert!(!ctx.all_inputs_final());
            ctx.set_all_inputs_final(true);
            op.on_punct(1, Punct::Final, ctx);
            ctx.take_emitted()
        });
        // One swallowed final, one window through (2 ports), then the real
        // final (2 ports).
        assert_eq!(emitted.len(), 4);
        assert!(matches!(emitted[0].1, StreamItem::Punct(Punct::Window)));
        assert!(matches!(emitted[2].1, StreamItem::Punct(Punct::Final)));
    }

    #[test]
    fn default_on_batch_matches_per_tuple_loop() {
        struct Doubler;
        impl Operator for Doubler {
            fn on_tuple(&mut self, _p: usize, t: Tuple, ctx: &mut OpCtx) {
                ctx.submit(0, t.clone());
                ctx.submit(1, t);
            }
        }
        let mk = |i: i64| Tuple::new().with("v", i);
        let (batched, _) = with_ctx(|ctx| {
            let mut op = Doubler;
            op.on_batch(0, vec![mk(1), mk(2), mk(3)].into(), ctx);
            ctx.take_emitted()
        });
        let (looped, _) = with_ctx(|ctx| {
            let mut op = Doubler;
            for i in 1..=3 {
                op.on_tuple(0, mk(i), ctx);
            }
            ctx.take_emitted()
        });
        assert_eq!(batched, looped);
    }

    #[test]
    fn default_on_batch_stops_after_fault() {
        struct FaultOnTwo {
            processed: usize,
        }
        impl Operator for FaultOnTwo {
            fn on_tuple(&mut self, _p: usize, t: Tuple, ctx: &mut OpCtx) {
                self.processed += 1;
                if t.get_int("v") == Some(2) {
                    ctx.raise_fault("bad tuple");
                    return;
                }
                ctx.submit(0, t);
            }
        }
        let mk = |i: i64| Tuple::new().with("v", i);
        let mut op = FaultOnTwo { processed: 0 };
        let ((emitted, fault), _) = with_ctx(|ctx| {
            op.on_batch(0, vec![mk(1), mk(2), mk(3), mk(4)].into(), ctx);
            (ctx.take_emitted(), ctx.take_fault())
        });
        // Tuple 3 and 4 die with the PE: only tuple 1 made it out, and the
        // faulting tuple itself was the last one consumed.
        assert_eq!(op.processed, 2);
        assert_eq!(emitted.len(), 1);
        assert_eq!(fault.as_deref(), Some("bad tuple"));
    }

    #[test]
    fn tuple_batch_accessors() {
        let mut b = TupleBatch::with_capacity(2);
        assert!(b.is_empty());
        b.push(Tuple::new().with("a", 1i64));
        b.push(Tuple::new().with("b", 2i64));
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.approx_bytes(),
            b.iter().map(|t| t.approx_bytes()).sum::<usize>()
        );
        assert_eq!(b.as_slice().len(), 2);
        let names: Vec<String> = (&b)
            .into_iter()
            .flat_map(|t| t.attrs().iter().map(|(n, _)| n.clone()))
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn final_tracker_roundtrips_through_state_blob() {
        let mut t = FinalPunctTracker::new(3);
        t.mark(1);
        let mut w = crate::ckpt::StateWriter::new();
        t.encode(&mut w);
        let blob = w.finish();
        let mut r = crate::ckpt::StateReader::new(&blob);
        let mut back = FinalPunctTracker::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert!(!back.mark(1)); // duplicate final still remembered
        assert!(!back.mark(0));
        assert!(back.mark(2)); // completes exactly as the original would
    }

    #[test]
    fn final_tracker_fires_once_when_all_seen() {
        let mut t = FinalPunctTracker::new(3);
        assert!(!t.mark(0));
        assert!(!t.mark(0)); // duplicate final on same port
        assert!(!t.mark(2));
        assert!(!t.is_complete());
        assert!(t.mark(1));
        assert!(t.is_complete());
        assert!(!t.mark(1)); // never fires twice
    }

    #[test]
    fn final_tracker_ignores_out_of_range_port() {
        let mut t = FinalPunctTracker::new(1);
        assert!(!t.mark(5));
        assert!(t.mark(0));
    }

    #[test]
    fn final_tracker_zero_inputs_fires_immediately() {
        let mut t = FinalPunctTracker::new(0);
        // Degenerate but defined: all (zero) ports have finals.
        assert!(t.mark(0));
    }
}
