//! Memoized fault-free baselines.
//!
//! The `StatePreservation` oracle compares every checkpointed plan against a
//! fault-free run of the same seed. That baseline is a deterministic replay
//! artifact: it depends only on `(scenario name, seed, horizon floor,
//! checkpoint policy)` and on nothing about the faulted plan itself, so it
//! can be memoized by a canonical fingerprint of those inputs — the same way
//! deterministic-execution systems cache replay artifacts by input hash.
//! One [`BaselineCache`] serves all three baseline consumers:
//!
//! 1. phase-1 plan evaluation ([`crate::runner::run_plan`], including the
//!    determinism replay, which hits the entry its primary run populated),
//! 2. the concurrent shrink walk ([`crate::shrink`]), whose candidates keep
//!    the *original* plan's horizon as their floor and therefore hit the
//!    same floor-keyed entry phase 1 created, and
//! 3. the `campaign` binary's `--replay` path.
//!
//! Correctness does not depend on the cache: every entry is a pure function
//! of its key, so hits, misses, and evictions can never change a campaign
//! report — only how often the baseline world is re-simulated. That is what
//! keeps reports byte-identical with the cache enabled or disabled and at
//! any `--jobs` count.

use crate::oracle::BaselineSummary;
use crate::runner::compute_baseline;
use crate::scenario::{Scenario, WorldPolicy};
use sps_runtime::{MetastoreKind, StorageModel};
use sps_sim::{fnv1a, SimTime, FNV_OFFSET};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default entry capacity: comfortably holds every per-plan key of the CI
/// campaigns (one entry per plan seed) while bounding unbounded campaigns.
pub const DEFAULT_BASELINE_CAPACITY: usize = 1024;

/// Canonical identity of one fault-free baseline. Two runs with equal keys
/// produce bit-equal [`BaselineSummary`]s, which is the invariant
/// memoization rests on.
///
/// The scenario is keyed by **name**, standing in for every field
/// [`compute_baseline`] reads from it (warmup, windows, builder fn, taps).
/// That is sound for the scenario registry, where names are injective —
/// but a hand-built `Scenario` variant that reuses a registered name with
/// different timings/builder must NOT share a cache with the original, or
/// lookups would alias the wrong baseline.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BaselineKey {
    /// Scenario name (the builder fn is keyed by it).
    pub scenario: &'static str,
    /// World seed — drives both the workload and the plan stream.
    pub seed: u64,
    /// Horizon floor in simulated millis: the faulted plan's horizon, which
    /// the baseline run must match so both cover the same simulated span.
    /// `None` means the plan never outruns the nominal fault window.
    pub horizon_floor_ms: Option<u64>,
    /// Checkpoint period in quanta (`RunOptions`); part of the key because
    /// snapshotting perturbs execution.
    pub every_quanta: u32,
    /// Lossy-restore demo knob, captured for completeness (it only affects
    /// restores, which a fault-free run never performs).
    pub lossy_restore: bool,
    /// Upstream backup, captured for completeness (buffering and replay only
    /// engage around restarts, which a fault-free run never performs).
    pub upstream_backup: bool,
    /// Full-snapshot period of the incremental checkpoint chain: compaction
    /// cadence changes `state_bytes`, which SRM snapshots carry into the
    /// rendered artifacts a baseline summarizes.
    pub full_every: u32,
    /// Checkpoint storage cost model: write/restore latency defers commits
    /// (shifting when trims and coverage land) and a finite budget changes
    /// sealing/eviction, all of which perturb execution even fault-free.
    pub storage: StorageModel,
    /// Metastore backing, captured for completeness: it is required to be
    /// execution-invisible fault-free (the differential identity gate), so
    /// keying on it is belt-and-braces rather than load-bearing.
    pub metastore: MetastoreKind,
}

impl BaselineKey {
    pub fn new(
        scenario: &Scenario,
        seed: u64,
        policy: WorldPolicy,
        horizon_floor: Option<SimTime>,
    ) -> Self {
        let opts = policy.checkpoint;
        BaselineKey {
            scenario: scenario.name,
            seed,
            horizon_floor_ms: horizon_floor.map(|t| t.as_millis()),
            every_quanta: opts.every_quanta,
            lossy_restore: opts.lossy_restore,
            upstream_backup: opts.upstream_backup,
            full_every: opts.full_every,
            storage: opts.storage,
            metastore: policy.metastore,
        }
    }

    /// Canonical 64-bit FNV-1a fingerprint of the key (logging and
    /// observability; the map itself is keyed on the full struct so hash
    /// collisions can never alias two baselines).
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.scenario.as_bytes());
        h = fnv1a(h, &[0xFF]);
        h = fnv1a(h, &self.seed.to_le_bytes());
        match self.horizon_floor_ms {
            None => h = fnv1a(h, &[0]),
            Some(ms) => {
                h = fnv1a(h, &[1]);
                h = fnv1a(h, &ms.to_le_bytes());
            }
        }
        h = fnv1a(h, &self.every_quanta.to_le_bytes());
        h = fnv1a(h, &[self.lossy_restore as u8]);
        h = fnv1a(h, &[self.upstream_backup as u8]);
        h = fnv1a(h, &self.full_every.to_le_bytes());
        h = fnv1a(h, &self.storage.write_op_ms.to_le_bytes());
        h = fnv1a(h, &self.storage.write_bytes_per_ms.to_le_bytes());
        h = fnv1a(h, &self.storage.restore_op_ms.to_le_bytes());
        h = fnv1a(h, &self.storage.restore_bytes_per_ms.to_le_bytes());
        h = fnv1a(h, &(self.storage.budget_bytes as u64).to_le_bytes());
        fnv1a(h, self.metastore.as_str().as_bytes())
    }
}

/// Hit/miss counters at one point in time (`--timing` surfacing and the
/// bench harness's hit-rate accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from memory; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter delta since an earlier snapshot (per-campaign accounting on a
    /// shared cache).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

struct Entry {
    value: Arc<BaselineSummary>,
    /// Logical access clock for least-recently-used eviction.
    last_used: u64,
}

struct Inner {
    map: HashMap<BaselineKey, Entry>,
    clock: u64,
}

/// Concurrency-safe memo of fault-free baselines keyed by [`BaselineKey`].
///
/// Shared by reference across campaign worker threads; values are `Arc`ed
/// so a hit costs a lock, a map probe, and a refcount bump. Capacity is
/// bounded with least-recently-used eviction so unbounded campaigns cannot
/// grow the memo without limit — an evicted entry is simply recomputed on
/// the next lookup, with no effect on any report. A disabled cache
/// ([`BaselineCache::disabled`]) recomputes at every point of use, which is
/// what the `--baseline-cache off` comparison arm measures.
pub struct BaselineCache {
    /// `None` disables memoization entirely.
    inner: Option<Mutex<Inner>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BaselineCache {
    fn default() -> Self {
        BaselineCache::with_capacity(DEFAULT_BASELINE_CAPACITY)
    }
}

impl BaselineCache {
    /// An enabled cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled cache holding at most `capacity` entries (LRU eviction).
    /// `capacity == 0` is the disabled cache.
    pub fn with_capacity(capacity: usize) -> Self {
        BaselineCache {
            inner: (capacity > 0).then(|| {
                Mutex::new(Inner {
                    map: HashMap::new(),
                    clock: 0,
                })
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache that never stores: every lookup recomputes the baseline.
    pub fn disabled() -> Self {
        BaselineCache::with_capacity(0)
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |m| m.lock().expect("baseline cache poisoned").map.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The fault-free baseline for `(scenario, seed, policy, horizon_floor)`,
    /// memoized. A miss simulates the baseline world via
    /// [`compute_baseline`] *outside* the lock, so a slow baseline never
    /// serializes unrelated workers.
    pub fn get_or_compute(
        &self,
        scenario: &Scenario,
        seed: u64,
        policy: WorldPolicy,
        horizon_floor: Option<SimTime>,
    ) -> Arc<BaselineSummary> {
        self.get_or_insert_with(
            BaselineKey::new(scenario, seed, policy, horizon_floor),
            || compute_baseline(scenario, seed, policy, horizon_floor),
        )
    }

    /// Core memoization: look up `key`, computing and installing on a miss.
    /// Exposed so capacity/eviction semantics are testable without
    /// simulating worlds.
    pub fn get_or_insert_with(
        &self,
        key: BaselineKey,
        compute: impl FnOnce() -> BaselineSummary,
    ) -> Arc<BaselineSummary> {
        if let Some(inner) = &self.inner {
            let mut guard = inner.lock().expect("baseline cache poisoned");
            guard.clock += 1;
            let clock = guard.clock;
            if let Some(entry) = guard.map.get_mut(&key) {
                entry.last_used = clock;
                let value = Arc::clone(&entry.value);
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return value;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        if let Some(inner) = &self.inner {
            let mut guard = inner.lock().expect("baseline cache poisoned");
            guard.clock += 1;
            let clock = guard.clock;
            // Two workers can race to the same missing key; both compute the
            // identical value (the key pins every input), so keeping the
            // first insertion is safe and keeps their Arcs interchangeable.
            guard.map.entry(key).or_insert(Entry {
                value: Arc::clone(&value),
                last_used: clock,
            });
            while guard.map.len() > self.capacity {
                // O(n) LRU scan: capacity is small (~1k) and eviction only
                // runs once the memo is full, so this never shows up next
                // to the cost of simulating even one baseline world.
                let Some(oldest) = guard
                    .map
                    // sslint: allow(unordered-iter, eviction victim choice is perf-only: values are key-pinned, any evictee recomputes bit-identically)
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                guard.map.remove(&oldest);
            }
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> BaselineKey {
        BaselineKey {
            scenario: "trend",
            seed,
            horizon_floor_ms: Some(9_000),
            every_quanta: 10,
            lossy_restore: false,
            upstream_backup: false,
            full_every: 8,
            storage: StorageModel::default(),
            metastore: MetastoreKind::Memory,
        }
    }

    fn summary(mark: i64) -> BaselineSummary {
        let mut s = BaselineSummary::default();
        s.taps
            .insert((sps_runtime::JobId(1), "snk".to_string()), mark);
        s
    }

    #[test]
    fn memoizes_by_key_and_counts_hits() {
        let cache = BaselineCache::new();
        let mut computes = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(key(7), || {
                computes += 1;
                summary(42)
            });
            assert_eq!(v.taps.values().next(), Some(&42));
        }
        assert_eq!(computes, 1, "one compute serves all lookups");
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = BaselineCache::new();
        let a = cache.get_or_insert_with(key(1), || summary(1));
        let b = cache.get_or_insert_with(key(2), || summary(2));
        let mut floor_differs = key(1);
        floor_differs.horizon_floor_ms = None;
        let c = cache.get_or_insert_with(floor_differs, || summary(3));
        assert_ne!(a.taps, b.taps);
        assert_ne!(a.taps, c.taps);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn capacity_bounds_the_memo_with_lru_eviction() {
        let cache = BaselineCache::with_capacity(2);
        cache.get_or_insert_with(key(1), || summary(1));
        cache.get_or_insert_with(key(2), || summary(2));
        // Touch key 1 so key 2 is the least recently used…
        cache.get_or_insert_with(key(1), || unreachable!("must hit"));
        cache.get_or_insert_with(key(3), || summary(3));
        assert_eq!(cache.len(), 2, "capacity is a hard bound");
        // …then key 2 must recompute (evicted) while 1 and 3 still hit.
        let mut recomputed = false;
        cache.get_or_insert_with(key(2), || {
            recomputed = true;
            summary(2)
        });
        assert!(recomputed, "LRU entry was not evicted");
        // Reinserting 2 evicted the then-LRU entry (1); 3 and 2 remain.
        assert_eq!(cache.len(), 2);
        cache.get_or_insert_with(key(3), || unreachable!("3 still resident"));
        cache.get_or_insert_with(key(2), || unreachable!("2 just reinserted"));
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let cache = BaselineCache::disabled();
        assert!(!cache.enabled());
        let mut computes = 0;
        for _ in 0..3 {
            cache.get_or_insert_with(key(7), || {
                computes += 1;
                summary(0)
            });
        }
        assert_eq!(computes, 3);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
    }

    #[test]
    fn fingerprint_separates_every_component() {
        let base = key(7);
        let mut seen = std::collections::BTreeSet::new();
        assert!(seen.insert(base.fingerprint()));
        for variant in [
            BaselineKey {
                scenario: "live",
                ..base.clone()
            },
            BaselineKey {
                seed: 8,
                ..base.clone()
            },
            BaselineKey {
                horizon_floor_ms: Some(9_001),
                ..base.clone()
            },
            BaselineKey {
                horizon_floor_ms: None,
                ..base.clone()
            },
            BaselineKey {
                every_quanta: 11,
                ..base.clone()
            },
            BaselineKey {
                lossy_restore: true,
                ..base.clone()
            },
            BaselineKey {
                upstream_backup: true,
                ..base.clone()
            },
            BaselineKey {
                full_every: 4,
                ..base.clone()
            },
            BaselineKey {
                storage: StorageModel {
                    write_op_ms: 5,
                    ..StorageModel::default()
                },
                ..base.clone()
            },
            BaselineKey {
                storage: StorageModel {
                    write_bytes_per_ms: 64,
                    ..StorageModel::default()
                },
                ..base.clone()
            },
            BaselineKey {
                storage: StorageModel {
                    restore_op_ms: 5,
                    ..StorageModel::default()
                },
                ..base.clone()
            },
            BaselineKey {
                storage: StorageModel {
                    restore_bytes_per_ms: 64,
                    ..StorageModel::default()
                },
                ..base.clone()
            },
            BaselineKey {
                storage: StorageModel {
                    budget_bytes: 16_384,
                    ..StorageModel::default()
                },
                ..base.clone()
            },
            BaselineKey {
                metastore: MetastoreKind::Replicated,
                ..base.clone()
            },
        ] {
            assert!(
                seen.insert(variant.fingerprint()),
                "fingerprint collision for {variant:?}"
            );
        }
    }

    #[test]
    fn stats_deltas_support_shared_caches() {
        let cache = BaselineCache::new();
        cache.get_or_insert_with(key(1), || summary(1));
        let before = cache.stats();
        cache.get_or_insert_with(key(1), || unreachable!());
        cache.get_or_insert_with(key(2), || summary(2));
        let delta = cache.stats().since(before);
        assert_eq!(delta, CacheStats { hits: 1, misses: 1 });
        assert!((delta.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
