//! Invariant oracles checked after every campaign plan.
//!
//! Oracles are pluggable: the runner evaluates each against the settled
//! world and collects violations. The built-in set covers the paper's
//! correctness claims — failed PEs come back (or are cleanly reaped), the
//! adaptation loop reconverges within a bounded number of quanta, and SAM's
//! failure notifications are conserved (none lost, none duplicated). Trace
//! determinism (same seed ⇒ bit-identical `sim::trace`) is enforced by the
//! runner itself, which replays every plan and compares digests.

use orca::OrcaService;
use sps_engine::metrics::builtin;
use sps_runtime::{CheckpointPolicy, FreshReason, JobId, PeStatus, RestoreOutcome, World};
use std::collections::BTreeMap;

/// Stateful artifacts of the fault-free run of the same seed, computed by
/// [`crate::runner::compute_baseline`]. Covers only jobs alive since before
/// the fault window — dynamically composed jobs may legitimately differ.
#[derive(Clone, Debug, Default)]
pub struct BaselineSummary {
    /// `(job, tap op)` → cumulative `nTuplesProcessed` at settle end.
    pub taps: BTreeMap<(JobId, String), i64>,
    /// Application name per baseline job, for identity matching.
    pub apps: BTreeMap<JobId, String>,
}

/// Everything an oracle may inspect after the settle phase.
pub struct OracleCtx<'a> {
    pub world: &'a World,
    /// Controller index of the ORCA service, when the scenario has one.
    pub orca_idx: Option<usize>,
    /// First settle quantum (1-based) at which the system was quiescent,
    /// if it ever was.
    pub quanta_to_quiesce: Option<usize>,
    /// The scenario's convergence budget, in quanta.
    pub convergence_bound: usize,
    /// The checkpoint policy this plan executed under.
    pub opts: CheckpointPolicy,
    /// Fault-free baseline of the same seed (present when checkpointing).
    pub baseline: Option<&'a BaselineSummary>,
    /// Taps whose counts are structurally exact under exactly-once recovery
    /// (see [`crate::scenario::Scenario::exact_taps`]).
    pub exact_taps: &'a [&'static str],
}

impl OracleCtx<'_> {
    fn service(&self) -> Option<&OrcaService> {
        self.world.controller::<OrcaService>(self.orca_idx?)
    }
}

/// One invariant check.
pub trait Oracle {
    fn name(&self) -> &'static str;
    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String>;
}

/// A named oracle violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub oracle: &'static str,
    pub message: String,
}

/// Every killed PE returned to `Up` or was cleanly reaped: after the settle
/// phase, no process anywhere in the cluster is `Crashed`, `Stopped`, or
/// stuck `Starting`, and every running job's PE table points at live
/// processes.
pub struct RecoveryOracle;

impl Oracle for RecoveryOracle {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let kernel = &ctx.world.kernel;
        for host in kernel.cluster.hosts() {
            for proc in host.processes.values() {
                if proc.status != PeStatus::Up {
                    return Err(format!(
                        "PE {} ({:?}) left {:?} on {} after settle",
                        proc.pe_id, proc.job, proc.status, host.name
                    ));
                }
            }
        }
        for job in kernel.sam.running_jobs() {
            let info = kernel.sam.job(job).expect("running job");
            for &pe in &info.pe_ids {
                if kernel.pe_status(pe) != Some(PeStatus::Up) {
                    return Err(format!(
                        "job {job}: PE {pe} is {:?}, not Up",
                        kernel.pe_status(pe)
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The adaptation loop reconverged (no crashed PEs, no undelivered events or
/// notifications) within the scenario's quantum budget after the last fault.
pub struct ConvergenceOracle {
    /// Overrides the scenario bound; `Some(1)` is the intentionally-broken
    /// oracle used to demonstrate schedule shrinking.
    pub bound_override: Option<usize>,
}

impl Oracle for ConvergenceOracle {
    fn name(&self) -> &'static str {
        "convergence"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let bound = self.bound_override.unwrap_or(ctx.convergence_bound);
        match ctx.quanta_to_quiesce {
            Some(q) if q <= bound => Ok(()),
            Some(q) => Err(format!("reconverged after {q} quanta (bound {bound})")),
            None => Err(format!("never reconverged (bound {bound})")),
        }
    }
}

/// SAM notification conservation: every crash of an owned PE produced
/// exactly one notification, nothing was duplicated (a PE id can crash at
/// most once — restarts mint fresh ids), and the orchestrator drained its
/// queue completely.
pub struct NotificationOracle;

impl Oracle for NotificationOracle {
    fn name(&self) -> &'static str {
        "notifications"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let kernel = &ctx.world.kernel;
        let owned_crashes = kernel.crash_log().iter().filter(|c| c.owned).count() as u64;
        let pushed = kernel.sam.total_notifications_pushed();
        if pushed != owned_crashes {
            return Err(format!(
                "{owned_crashes} owned crashes but {pushed} notifications pushed"
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in kernel.crash_log() {
            if !seen.insert(c.pe) {
                return Err(format!("PE {} crashed twice without a restart", c.pe));
            }
        }
        if let Some(service) = ctx.service() {
            let orca = service.orca_id();
            let pending = kernel.sam.notifications_pending(orca);
            if pending != 0 {
                return Err(format!("{pending} notifications never drained"));
            }
            let (p, d) = (
                kernel.sam.notifications_pushed(orca),
                kernel.sam.notifications_drained(orca),
            );
            if p != d {
                return Err(format!("pushed {p} != drained {d}"));
            }
        } else if pushed != 0 {
            return Err(format!(
                "{pushed} notifications pushed with no orchestrator registered"
            ));
        }
        Ok(())
    }
}

/// Stateful-PE recovery preservation (active when checkpointing is on):
///
/// 1. **Faithful restores** — every checkpoint restore self-verified
///    (re-checkpointing the revived container reproduced the stored
///    digest), so no operator's state was dropped or corrupted on the way
///    back in. This is what catches a deliberately lossy restore.
/// 2. **Restore coverage** — no restart of a checkpointable PE silently
///    rejected an existing snapshot as incompatible, and with the policy
///    enabled, snapshots were actually being taken (every checkpointable
///    `Up` PE of a running job holds one at settle end).
/// 3. **Metric continuity** — monotone per-operator counters
///    (`nTuplesProcessed`) recorded in each restored checkpoint never run
///    backwards afterwards: recovered state persists instead of being
///    quietly re-zeroed.
/// 4. **Fault-free comparison** — against the baseline run of the same
///    seed: every stable job's tap that produced output without faults
///    still holds state (nonzero counter) in the faulted run, and never
///    *exceeds* the fault-free throughput beyond a small restart-timing
///    slack (restores must not fabricate or duplicate history). With
///    upstream backup enabled the bar rises to *equality* on the
///    scenario's structurally-exact taps of fully checkpointable jobs:
///    checkpoint + replayed in-flight gap means recovery is exactly-once,
///    so any deviation — loss or duplication — is a bug.
pub struct StatePreservationOracle;

impl Oracle for StatePreservationOracle {
    fn name(&self) -> &'static str {
        "state"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        if !ctx.opts.enabled() {
            return Ok(());
        }
        let kernel = &ctx.world.kernel;

        // 1 + 2a: every restart either restored faithfully or had a
        // legitimate reason to come back fresh.
        for rec in kernel.restart_log() {
            match &rec.restore {
                RestoreOutcome::Restored {
                    verified: false, ..
                } => {
                    return Err(format!(
                        "PE {} (job {}, slot {}) was restored unfaithfully: \
                         re-checkpoint digest differs (operator state lost)",
                        rec.new_pe, rec.job, rec.adl_index
                    ));
                }
                RestoreOutcome::Fresh {
                    reason: FreshReason::Incompatible,
                } => {
                    return Err(format!(
                        "PE {} (job {}, slot {}) rejected its checkpoint as \
                         incompatible although the ADL never changed",
                        rec.new_pe, rec.job, rec.adl_index
                    ));
                }
                // `FreshReason::Evicted` is deliberately NOT a violation:
                // losing a dead PE's chain to a finite storage budget is
                // legitimate (modelled) behavior, not a recovery bug.
                _ => {}
            }
        }

        // 2b: the policy is live — snapshots exist for every checkpointable
        // Up PE of a running job. Jobs composed in the final moments of the
        // run (dynamic C3 launches) may not have crossed a snapshot
        // boundary yet, so allow two checkpoint periods of grace.
        if kernel.ckpt.saved() == 0 {
            return Err("checkpointing enabled but no snapshot was ever taken".into());
        }
        let ckpt_period = sps_sim::SimDuration::from_millis(
            kernel.config.quantum.as_millis() * 2 * ctx.opts.every_quanta as u64,
        );
        for job in kernel.sam.running_jobs() {
            let Some(info) = kernel.sam.job(job) else {
                continue;
            };
            if kernel.now().since(info.submitted_at) < ckpt_period {
                continue;
            }
            for (adl_index, &pe) in info.pe_ids.iter().enumerate() {
                // A write still in flight counts as coverage: under a slow
                // storage model the commit may land after settle, which is
                // latency, not a hole in the snapshot cadence.
                if kernel.pe_status(pe) == Some(PeStatus::Up)
                    && kernel.pe_checkpointable(job, adl_index)
                    && kernel.ckpt.latest(job, adl_index).is_none()
                    && !kernel.ckpt.write_in_flight(job, adl_index)
                {
                    return Err(format!(
                        "job {job} slot {adl_index} is Up and checkpointable \
                         but holds no snapshot after settle"
                    ));
                }
            }
        }

        // 3: restored monotone counters never go backwards.
        for rec in kernel.restart_log() {
            if !rec.restore.restored() || kernel.sam.job(rec.job).is_none() {
                continue;
            }
            for (op, at_ckpt) in &rec.restored_op_counts {
                let now = kernel
                    .op_metric(rec.job, op, builtin::N_TUPLES_PROCESSED)
                    .unwrap_or(0);
                if now < *at_ckpt {
                    return Err(format!(
                        "operator {op} of job {} went backwards after restore: \
                         {now} < {at_ckpt} recorded in the checkpoint",
                        rec.job
                    ));
                }
            }
        }

        // 4: compare recovered taps against the fault-free run.
        let Some(baseline) = ctx.baseline else {
            return Ok(());
        };
        for ((job, tap), &base_count) in &baseline.taps {
            let Some(info) = kernel.sam.job(*job) else {
                continue; // job gone (e.g. cancelled mid-plan): nothing to hold
            };
            if baseline.apps.get(job) != Some(&info.app_name) {
                continue; // different job under a recycled id
            }
            let faulted = kernel
                .op_metric(*job, tap, builtin::N_TUPLES_PROCESSED)
                .unwrap_or(0);
            if base_count > 0 && faulted == 0 {
                return Err(format!(
                    "stateful tap {job}.{tap} lost all state under faults \
                     (fault-free run processed {base_count} tuples)"
                ));
            }
            // Exactly-once: with upstream backup on, a fully checkpointable
            // job's structurally-exact taps must match the fault-free count
            // bit for bit — the replayed gap closes the loss window and the
            // high-water marks suppress every duplicate.
            let exact = ctx.opts.upstream_backup
                && ctx.exact_taps.contains(&tap.as_str())
                && kernel.job_checkpointable(*job);
            if exact {
                if faulted != base_count {
                    return Err(format!(
                        "exactly-once violated: tap {job}.{tap} processed \
                         {faulted} tuples under faults vs. {base_count} \
                         fault-free (upstream backup promised equality)"
                    ));
                }
                continue;
            }
            // Restart-timing slack: a restored periodic operator may emit
            // once immediately on revival, and a restored *exporter* of
            // another job can rewind and re-deliver a sliver of stream to
            // this tap — bound both per restart, across the whole world
            // (cross-job import/export means any restart can touch any tap).
            let restarts = kernel.restart_log().len() as i64;
            let slack = 2 * restarts + 8;
            if faulted > base_count + slack {
                return Err(format!(
                    "tap {job}.{tap} processed {faulted} tuples under faults, \
                     exceeding the fault-free {base_count} (+{slack} slack): \
                     restores are fabricating history"
                ));
            }
        }
        Ok(())
    }
}

/// Control-plane recovery (active when the campaign injects control faults):
/// after the settle phase every injected control-plane outage must be fully
/// healed and must not have corrupted kernel metadata.
///
/// 1. **SAM availability** — the restart window closed; the manager answers
///    drains again.
/// 2. **Orchestrator liveness** — no registered ORCA is still inside a
///    crash-recovery window.
/// 3. **No false death declarations** — injected SAM↔HC partitions are
///    always shorter than the liveness deadline, so a host declared dead on
///    heartbeat staleness is an oracle violation, not modelled behavior.
/// 4. **Metastore integrity** — replaying the durable op log reproduces the
///    live tables bit for bit (trivially true for the in-memory store).
pub struct ControlPlaneOracle;

impl Oracle for ControlPlaneOracle {
    fn name(&self) -> &'static str {
        "control-plane"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let kernel = &ctx.world.kernel;
        if !kernel.sam.is_available() {
            return Err("SAM still unavailable after settle".into());
        }
        for orca in kernel.sam.orchestrators() {
            if kernel.orca_is_down(orca) {
                return Err(format!("orchestrator {orca} still down after settle"));
            }
        }
        let stats = kernel.control_stats();
        if stats.false_declarations != 0 {
            return Err(format!(
                "{} host(s) falsely declared dead: every injected partition \
                 is shorter than the liveness deadline",
                stats.false_declarations
            ));
        }
        if !kernel.sam.metastore_verify() {
            return Err("metastore log replay does not reproduce the live tables".into());
        }
        Ok(())
    }
}

/// The standard oracle set; `broken_convergence` swaps in the deliberately
/// broken 1-quantum convergence bound (shrinking demo), `state_preservation`
/// adds the checkpoint-recovery oracle (meaningful only when runs execute
/// with checkpointing enabled), and `control_plane` adds the control-plane
/// recovery oracle (meaningful when campaigns inject control faults).
pub fn default_oracles(
    broken_convergence: bool,
    state_preservation: bool,
    control_plane: bool,
) -> Vec<Box<dyn Oracle>> {
    let mut oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(RecoveryOracle),
        Box::new(ConvergenceOracle {
            bound_override: broken_convergence.then_some(1),
        }),
        Box::new(NotificationOracle),
    ];
    if state_preservation {
        oracles.push(Box::new(StatePreservationOracle));
    }
    if control_plane {
        oracles.push(Box::new(ControlPlaneOracle));
    }
    oracles
}
