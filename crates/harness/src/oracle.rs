//! Invariant oracles checked after every campaign plan.
//!
//! Oracles are pluggable: the runner evaluates each against the settled
//! world and collects violations. The built-in set covers the paper's
//! correctness claims — failed PEs come back (or are cleanly reaped), the
//! adaptation loop reconverges within a bounded number of quanta, and SAM's
//! failure notifications are conserved (none lost, none duplicated). Trace
//! determinism (same seed ⇒ bit-identical `sim::trace`) is enforced by the
//! runner itself, which replays every plan and compares digests.

use orca::OrcaService;
use sps_runtime::{PeStatus, World};

/// Everything an oracle may inspect after the settle phase.
pub struct OracleCtx<'a> {
    pub world: &'a World,
    /// Controller index of the ORCA service, when the scenario has one.
    pub orca_idx: Option<usize>,
    /// First settle quantum (1-based) at which the system was quiescent,
    /// if it ever was.
    pub quanta_to_quiesce: Option<usize>,
    /// The scenario's convergence budget, in quanta.
    pub convergence_bound: usize,
}

impl OracleCtx<'_> {
    fn service(&self) -> Option<&OrcaService> {
        self.world.controller::<OrcaService>(self.orca_idx?)
    }
}

/// One invariant check.
pub trait Oracle {
    fn name(&self) -> &'static str;
    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String>;
}

/// A named oracle violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub oracle: &'static str,
    pub message: String,
}

/// Every killed PE returned to `Up` or was cleanly reaped: after the settle
/// phase, no process anywhere in the cluster is `Crashed`, `Stopped`, or
/// stuck `Starting`, and every running job's PE table points at live
/// processes.
pub struct RecoveryOracle;

impl Oracle for RecoveryOracle {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let kernel = &ctx.world.kernel;
        for host in kernel.cluster.hosts() {
            for proc in host.processes.values() {
                if proc.status != PeStatus::Up {
                    return Err(format!(
                        "PE {} ({:?}) left {:?} on {} after settle",
                        proc.pe_id, proc.job, proc.status, host.name
                    ));
                }
            }
        }
        for job in kernel.sam.running_jobs() {
            let info = kernel.sam.job(job).expect("running job");
            for &pe in &info.pe_ids {
                if kernel.pe_status(pe) != Some(PeStatus::Up) {
                    return Err(format!(
                        "job {job}: PE {pe} is {:?}, not Up",
                        kernel.pe_status(pe)
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The adaptation loop reconverged (no crashed PEs, no undelivered events or
/// notifications) within the scenario's quantum budget after the last fault.
pub struct ConvergenceOracle {
    /// Overrides the scenario bound; `Some(1)` is the intentionally-broken
    /// oracle used to demonstrate schedule shrinking.
    pub bound_override: Option<usize>,
}

impl Oracle for ConvergenceOracle {
    fn name(&self) -> &'static str {
        "convergence"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let bound = self.bound_override.unwrap_or(ctx.convergence_bound);
        match ctx.quanta_to_quiesce {
            Some(q) if q <= bound => Ok(()),
            Some(q) => Err(format!("reconverged after {q} quanta (bound {bound})")),
            None => Err(format!("never reconverged (bound {bound})")),
        }
    }
}

/// SAM notification conservation: every crash of an owned PE produced
/// exactly one notification, nothing was duplicated (a PE id can crash at
/// most once — restarts mint fresh ids), and the orchestrator drained its
/// queue completely.
pub struct NotificationOracle;

impl Oracle for NotificationOracle {
    fn name(&self) -> &'static str {
        "notifications"
    }

    fn check(&self, ctx: &OracleCtx<'_>) -> Result<(), String> {
        let kernel = &ctx.world.kernel;
        let owned_crashes = kernel.crash_log().iter().filter(|c| c.owned).count() as u64;
        let pushed = kernel.sam.total_notifications_pushed();
        if pushed != owned_crashes {
            return Err(format!(
                "{owned_crashes} owned crashes but {pushed} notifications pushed"
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in kernel.crash_log() {
            if !seen.insert(c.pe) {
                return Err(format!("PE {} crashed twice without a restart", c.pe));
            }
        }
        if let Some(service) = ctx.service() {
            let orca = service.orca_id();
            let pending = kernel.sam.notifications_pending(orca);
            if pending != 0 {
                return Err(format!("{pending} notifications never drained"));
            }
            let (p, d) = (
                kernel.sam.notifications_pushed(orca),
                kernel.sam.notifications_drained(orca),
            );
            if p != d {
                return Err(format!("pushed {p} != drained {d}"));
            }
        } else if pushed != 0 {
            return Err(format!(
                "{pushed} notifications pushed with no orchestrator registered"
            ));
        }
        Ok(())
    }
}

/// The standard oracle set; `broken_convergence` swaps in the deliberately
/// broken 1-quantum convergence bound (shrinking demo).
pub fn default_oracles(broken_convergence: bool) -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(RecoveryOracle),
        Box::new(ConvergenceOracle {
            bound_override: broken_convergence.then_some(1),
        }),
        Box::new(NotificationOracle),
    ]
}
