//! Greedy fault-schedule shrinking.
//!
//! Given a failing plan, repeatedly try dropping one event at a time; keep
//! any candidate that still violates an oracle. The result is 1-minimal:
//! removing any single remaining event makes the plan pass. Plans are small
//! (≤ ~10 events), so the O(n²) re-execution cost is negligible next to one
//! campaign.

use crate::oracle::{BaselineSummary, Oracle};
use crate::plan::FaultPlan;
use crate::runner::evaluate;
use crate::scenario::Scenario;
use sps_runtime::CheckpointPolicy;

/// Minimizes `plan` while it keeps failing under the given oracle set.
pub fn shrink(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    oracles: &[Box<dyn Oracle>],
    check_determinism: bool,
    opts: CheckpointPolicy,
    baseline: Option<&BaselineSummary>,
) -> FaultPlan {
    let still_fails = |candidate: &FaultPlan| -> bool {
        !evaluate(
            scenario,
            seed,
            candidate,
            oracles,
            check_determinism,
            opts,
            baseline,
        )
        .1
        .is_empty()
    };
    let mut current = plan.clone();
    loop {
        let mut reduced = false;
        for i in 0..current.events.len() {
            let candidate = current.without(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}
