//! Greedy fault-schedule shrinking.
//!
//! Given a failing plan, repeatedly try dropping one event at a time; keep
//! any candidate that still violates an oracle. The result is 1-minimal:
//! removing any single remaining event makes the plan pass. Plans are small
//! (≤ ~10 events), so the O(n²) re-execution cost is negligible next to one
//! campaign.

use crate::cache::BaselineCache;
use crate::oracle::{default_oracles, Oracle};
use crate::plan::FaultPlan;
use crate::pool::indexed_pool;
use crate::runner::{
    evaluate, reproducer_line, BaselineSource, CampaignConfig, CampaignFailure, PlanEval,
};
use crate::scenario::{Scenario, WorldPolicy};

/// Minimizes `plan` while it keeps failing under the given oracle set.
///
/// `baseline.floor` must be the horizon of the *original* failing plan:
/// candidates only ever run shorter (the oracle bounds tolerate that), and
/// keeping the original floor means every candidate's baseline lookup hits
/// the same floor-keyed [`BaselineCache`] entry the first evaluation
/// populated, instead of re-simulating a fault-free world per candidate.
pub fn shrink(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    oracles: &[Box<dyn Oracle>],
    check_determinism: bool,
    policy: WorldPolicy,
    baseline: BaselineSource<'_>,
) -> FaultPlan {
    let still_fails = |candidate: &FaultPlan| -> bool {
        !evaluate(
            scenario,
            seed,
            candidate,
            oracles,
            check_determinism,
            policy,
            baseline,
        )
        .1
        .is_empty()
    };
    let mut current = plan.clone();
    loop {
        let mut reduced = false;
        for i in 0..current.events.len() {
            let candidate = current.without(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

/// Shrinks a batch of failing plans into [`CampaignFailure`]s, preserving
/// input (plan-index) order. Each individual shrink stays a sequential
/// greedy walk — candidate elimination is inherently ordered — but distinct
/// failures shrink concurrently across `cfg.jobs` workers, since every
/// failure owns an independent seed, plan, and baseline.
pub(crate) fn shrink_failures(
    scenario: &Scenario,
    cfg: &CampaignConfig,
    failing: Vec<PlanEval>,
    cache: &BaselineCache,
) -> Vec<CampaignFailure> {
    let policy = cfg.policy();
    indexed_pool(failing.len(), cfg.jobs, |i| {
        let eval = &failing[i];
        let oracles = default_oracles(
            cfg.broken_convergence,
            policy.checkpoint.enabled(),
            cfg.control_faults,
        );
        // The determinism replay doubles every shrink candidate's cost;
        // only pay for it when the failure actually is a divergence.
        let det_shrink =
            cfg.check_determinism && eval.violations.iter().any(|v| v.oracle == "determinism");
        let shrunk = shrink(
            scenario,
            eval.plan_seed,
            &eval.plan,
            &oracles,
            det_shrink,
            policy,
            // Original plan's horizon: every candidate hits the same
            // floor-keyed baseline entry phase 1 computed.
            BaselineSource::new(cache, eval.plan.horizon()),
        );
        let reproducer = reproducer_line(
            scenario,
            eval.plan_seed,
            &shrunk,
            policy,
            cfg.control_faults,
        );
        CampaignFailure {
            plan_seed: eval.plan_seed,
            original: eval.plan.clone(),
            shrunk,
            violations: eval.violations.clone(),
            reproducer,
        }
    })
}
