//! Fault plans: seeded, symbolic kill/revive schedules.
//!
//! A plan is a time-ordered list of *symbolic* fault actions. Actions name
//! jobs, PEs, and hosts by **slot** — an index resolved modulo the live
//! population at fire time — rather than by concrete id, because PE ids
//! change on every restart and job sets change under dynamic composition.
//! The same plan therefore stays meaningful across apps and across the very
//! perturbations it causes, and a plan round-trips through a compact string
//! encoding (`HARNESS_PLAN=…`) for one-line reproducers.

use sps_sim::{SimDuration, SimRng, SimTime};
use std::fmt;

/// One symbolic fault action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the PE at `pe_slot` (mod the job's PE count) of the running job
    /// at `job_slot` (mod the number of running jobs).
    KillPe { job_slot: u8, pe_slot: u8 },
    /// Take down the host at `host_slot` (mod the cluster size).
    KillHost { host_slot: u8 },
    /// Bring the host at `host_slot` back up.
    ReviveHost { host_slot: u8 },
    /// Control plane: crash every registered ORCA service mid-adaptation.
    /// Each skips its quanta until recovery, then replays its durably
    /// queued notification backlog.
    CrashOrchestrator,
    /// Control plane: restart SAM. Drains go unavailable for the restart
    /// window; recovery rebuilds the tables from the metastore log.
    RestartSam,
    /// Control plane: SAM stops seeing host heartbeats for `duration_ms`.
    /// Generated durations are bounded below the liveness deadline, so a
    /// correct SAM declares no host dead.
    PartitionSamHc { duration_ms: u32 },
}

/// A fault action bound to an absolute simulation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub action: FaultAction,
}

/// A complete fault schedule, ordered by time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

/// Bounds for plan generation, derived from the scenario under test.
#[derive(Clone, Copy, Debug)]
pub struct PlanSpec {
    /// Cluster size (host slots are drawn in `0..hosts`).
    pub hosts: usize,
    /// Faults are injected within `[window.0, window.1)`.
    pub window: (SimTime, SimTime),
    /// Maximum number of sampled incidents (an incident may expand to
    /// several events: cascades, kill-during-restart, kill+revive pairs).
    pub max_incidents: usize,
    /// Cap on hosts that may be down simultaneously, so generated plans
    /// never exhaust placement capacity by construction.
    pub max_hosts_down: usize,
    /// The runtime's PE spawn latency — used to aim kills into the restart
    /// gap.
    pub restart_delay: SimDuration,
    /// When true, every host kill is paired with a revive inside the
    /// window (needed by scenarios whose adaptation logic never retries a
    /// failed placement).
    pub revive_all: bool,
    /// When true, the incident mix includes control-plane faults (ORCA
    /// crash, SAM restart, SAM/HC partition). Off by default: the draw
    /// sequence with this off is byte-identical to pre-control-fault plans.
    pub control_faults: bool,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::KillPe { job_slot, pe_slot } => write!(f, "kp:{job_slot}:{pe_slot}"),
            FaultAction::KillHost { host_slot } => write!(f, "kh:{host_slot}"),
            FaultAction::ReviveHost { host_slot } => write!(f, "rh:{host_slot}"),
            FaultAction::CrashOrchestrator => write!(f, "co"),
            FaultAction::RestartSam => write!(f, "rs"),
            FaultAction::PartitionSamHc { duration_ms } => write!(f, "ps:{duration_ms}"),
        }
    }
}

/// Hosts down at instant `t` according to the events generated so far.
fn hosts_down_at(events: &[FaultEvent], t: SimTime) -> Vec<u8> {
    let mut down: Vec<u8> = Vec::new();
    let mut ordered: Vec<&FaultEvent> = events.iter().collect();
    ordered.sort_by_key(|e| e.at);
    for e in ordered {
        if e.at > t {
            break;
        }
        match e.action {
            FaultAction::KillHost { host_slot } if !down.contains(&host_slot) => {
                down.push(host_slot);
            }
            FaultAction::ReviveHost { host_slot } => down.retain(|&h| h != host_slot),
            _ => {}
        }
    }
    down
}

/// Slot draw ranges — wide enough to reach every member of the largest
/// populations the scenarios produce (social peaks at 8 running jobs,
/// sentiment at 6 PEs per job); slots resolve modulo the live population at
/// fire time, so oversized draws still land on real targets.
const JOB_SLOTS: u64 = 8;
const PE_SLOTS: u64 = 6;

impl FaultPlan {
    /// Samples a plan from `rng` under `spec`. Incident mix: plain PE
    /// kills, host kill (+revive), simultaneous-kill cascades, and kills
    /// aimed into the restart gap of a just-killed PE.
    pub fn generate(rng: &mut SimRng, spec: &PlanSpec) -> FaultPlan {
        let (start, end) = (spec.window.0.as_millis(), spec.window.1.as_millis());
        assert!(start < end, "empty fault window");
        let n = rng.gen_range(1, spec.max_incidents as u64 + 1) as usize;
        let mut times: Vec<u64> = (0..n).map(|_| rng.gen_range(start, end)).collect();
        times.sort_unstable();

        let mut events: Vec<FaultEvent> = Vec::new();
        let kill_pe = |rng: &mut SimRng, events: &mut Vec<FaultEvent>, t: u64| {
            events.push(FaultEvent {
                at: SimTime::from_millis(t),
                action: FaultAction::KillPe {
                    job_slot: rng.gen_range(0, JOB_SLOTS) as u8,
                    pe_slot: rng.gen_range(0, PE_SLOTS) as u8,
                },
            });
        };
        // With control faults off, the weight vector (and therefore the
        // whole draw sequence) is byte-identical to pre-control-fault plans.
        let weights: &[f64] = if spec.control_faults {
            &[40.0, 25.0, 15.0, 20.0, 10.0, 8.0, 7.0]
        } else {
            &[40.0, 25.0, 15.0, 20.0]
        };
        for t in times {
            match rng.pick_weighted(weights) {
                // Plain PE kill.
                0 => kill_pe(rng, &mut events, t),
                // Host kill, usually paired with a revive.
                1 => {
                    let at = SimTime::from_millis(t);
                    let down = hosts_down_at(&events, at);
                    let up: Vec<u8> = (0..spec.hosts as u8)
                        .filter(|h| !down.contains(h))
                        .collect();
                    if down.len() >= spec.max_hosts_down || up.is_empty() {
                        // Concurrency budget exhausted: degrade to a PE kill
                        // so the incident count is preserved.
                        kill_pe(rng, &mut events, t);
                        continue;
                    }
                    let host_slot = up[rng.gen_range(0, up.len() as u64) as usize];
                    events.push(FaultEvent {
                        at,
                        action: FaultAction::KillHost { host_slot },
                    });
                    if spec.revive_all || rng.gen_bool(0.7) {
                        let lo = spec.restart_delay.as_millis().max(100);
                        let revive_at = (t + lo + rng.gen_range(0, lo + 1))
                            .min(end - 1)
                            .max(t + 100);
                        events.push(FaultEvent {
                            at: SimTime::from_millis(revive_at),
                            action: FaultAction::ReviveHost { host_slot },
                        });
                    }
                }
                // Cascade: several PEs die in the same instant (one physical
                // event as seen by the failure-epoch correlator).
                2 => {
                    for _ in 0..rng.gen_range(2, 4) {
                        kill_pe(rng, &mut events, t);
                    }
                }
                // Kill-during-restart: the same slot dies again mid-spawn.
                3 => {
                    let (job_slot, pe_slot) = (
                        rng.gen_range(0, JOB_SLOTS) as u8,
                        rng.gen_range(0, PE_SLOTS) as u8,
                    );
                    for dt in [0, spec.restart_delay.as_millis() / 2] {
                        events.push(FaultEvent {
                            at: SimTime::from_millis(t + dt),
                            action: FaultAction::KillPe { job_slot, pe_slot },
                        });
                    }
                }
                // Control plane: ORCA crash / SAM restart / SAM–HC
                // partition (reached only when `spec.control_faults`).
                4 => events.push(FaultEvent {
                    at: SimTime::from_millis(t),
                    action: FaultAction::CrashOrchestrator,
                }),
                5 => events.push(FaultEvent {
                    at: SimTime::from_millis(t),
                    action: FaultAction::RestartSam,
                }),
                _ => events.push(FaultEvent {
                    at: SimTime::from_millis(t),
                    // Bounded well below the 6 s liveness deadline so the
                    // partition never triggers a false host declaration.
                    action: FaultAction::PartitionSamHc {
                        duration_ms: rng.gen_range(500, 4001) as u32,
                    },
                }),
            }
        }
        // Stable sort: simultaneous events keep their generation order.
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Time the plan's last effect lands: the last event time, extended to
    /// the end of any partition window still open then.
    pub fn horizon(&self) -> Option<SimTime> {
        self.events
            .iter()
            .map(|e| match e.action {
                FaultAction::PartitionSamHc { duration_ms } => {
                    e.at + SimDuration::from_millis(duration_ms as u64)
                }
                _ => e.at,
            })
            .max()
    }

    /// Compact, shell-safe encoding: `millis:action[,millis:action…]`; the
    /// empty plan encodes as `-`.
    pub fn encode(&self) -> String {
        if self.events.is_empty() {
            return "-".to_string();
        }
        self.events
            .iter()
            .map(|e| format!("{}:{}", e.at.as_millis(), e.action))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses [`FaultPlan::encode`] output.
    pub fn decode(s: &str) -> Result<FaultPlan, String> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(FaultPlan::default());
        }
        let mut events = Vec::new();
        for part in s.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            let err = |what: &str| format!("bad plan event `{part}`: {what}");
            let ms: u64 = fields
                .first()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| err("missing/invalid time"))?;
            let num = |i: usize| -> Result<u8, String> {
                fields
                    .get(i)
                    .and_then(|f| f.parse().ok())
                    .ok_or_else(|| err("missing/invalid slot"))
            };
            let action = match (fields.get(1).copied(), fields.len()) {
                (Some("kp"), 4) => FaultAction::KillPe {
                    job_slot: num(2)?,
                    pe_slot: num(3)?,
                },
                (Some("kh"), 3) => FaultAction::KillHost { host_slot: num(2)? },
                (Some("rh"), 3) => FaultAction::ReviveHost { host_slot: num(2)? },
                (Some("co"), 2) => FaultAction::CrashOrchestrator,
                (Some("rs"), 2) => FaultAction::RestartSam,
                (Some("ps"), 3) => FaultAction::PartitionSamHc {
                    duration_ms: fields
                        .get(2)
                        .and_then(|f| f.parse().ok())
                        .ok_or_else(|| err("missing/invalid duration"))?,
                },
                _ => return Err(err("unknown action")),
            };
            events.push(FaultEvent {
                at: SimTime::from_millis(ms),
                action,
            });
        }
        events.sort_by_key(|e| e.at);
        Ok(FaultPlan { events })
    }

    /// The plan without the event at `index` (shrinking candidate).
    pub fn without(&self, index: usize) -> FaultPlan {
        let mut events = self.events.clone();
        events.remove(index);
        FaultPlan { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlanSpec {
        PlanSpec {
            hosts: 4,
            window: (SimTime::from_secs(5), SimTime::from_secs(15)),
            max_incidents: 5,
            max_hosts_down: 1,
            restart_delay: SimDuration::from_secs(2),
            revive_all: true,
            control_faults: false,
        }
    }

    fn control_spec() -> PlanSpec {
        PlanSpec {
            control_faults: true,
            ..spec()
        }
    }

    fn is_control(a: &FaultAction) -> bool {
        matches!(
            a,
            FaultAction::CrashOrchestrator
                | FaultAction::RestartSam
                | FaultAction::PartitionSamHc { .. }
        )
    }

    #[test]
    fn generation_is_deterministic_and_in_window() {
        let a = FaultPlan::generate(&mut SimRng::new(9), &spec());
        let b = FaultPlan::generate(&mut SimRng::new(9), &spec());
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        for e in &a.events {
            assert!(e.at >= SimTime::from_secs(5));
            assert!(e.at < SimTime::from_secs(16), "{e:?}"); // +restart-gap slack
        }
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn host_down_budget_is_respected_and_revives_pair_up() {
        for seed in 0..200u64 {
            let plan = FaultPlan::generate(&mut SimRng::new(seed), &spec());
            let mut down = 0usize;
            let mut kills = 0usize;
            for e in &plan.events {
                match e.action {
                    FaultAction::KillHost { .. } => {
                        down += 1;
                        kills += 1;
                        assert!(down <= 1, "seed {seed}: >1 host down in {plan:?}");
                    }
                    FaultAction::ReviveHost { .. } => down = down.saturating_sub(1),
                    _ => {}
                }
            }
            // revive_all: every kill has its revive.
            let revives = plan
                .events
                .iter()
                .filter(|e| matches!(e.action, FaultAction::ReviveHost { .. }))
                .count();
            assert_eq!(kills, revives, "seed {seed}: {plan:?}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for seed in [1u64, 7, 42, 99] {
            let plan = FaultPlan::generate(&mut SimRng::new(seed), &spec());
            let encoded = plan.encode();
            assert_eq!(FaultPlan::decode(&encoded).unwrap(), plan, "{encoded}");
        }
        assert_eq!(FaultPlan::decode("-").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::default().encode(), "-");
        assert!(FaultPlan::decode("1000:xx:0").is_err());
        assert!(FaultPlan::decode("abc:kp:0:1").is_err());
        assert!(FaultPlan::decode("1000:kp:0").is_err());
        assert!(FaultPlan::decode("1000:ps").is_err());
        assert!(FaultPlan::decode("1000:ps:abc").is_err());
        assert!(FaultPlan::decode("1000:co:1").is_err());
    }

    #[test]
    fn control_actions_encode_and_roundtrip() {
        let plan = FaultPlan::decode("1000:co,2000:rs,3000:ps:1500").unwrap();
        assert_eq!(plan.encode(), "1000:co,2000:rs,3000:ps:1500");
        assert_eq!(plan.events[0].action, FaultAction::CrashOrchestrator);
        assert_eq!(plan.events[1].action, FaultAction::RestartSam);
        assert_eq!(
            plan.events[2].action,
            FaultAction::PartitionSamHc { duration_ms: 1500 }
        );
        // The horizon covers the partition's full window, not just its start.
        assert_eq!(plan.horizon(), Some(SimTime::from_millis(4500)));
    }

    /// With the knob off, no control action is ever generated; with it on,
    /// the mix reaches all three, and every partition stays bounded below
    /// the 6 s liveness deadline.
    #[test]
    fn control_fault_generation_is_gated_and_bounded() {
        let mut saw = [false; 3];
        for seed in 0..200u64 {
            let plain = FaultPlan::generate(&mut SimRng::new(seed), &spec());
            assert!(
                plain.events.iter().all(|e| !is_control(&e.action)),
                "seed {seed}: control action without the knob: {plain:?}"
            );
            let ctrl = FaultPlan::generate(&mut SimRng::new(seed), &control_spec());
            for e in &ctrl.events {
                match e.action {
                    FaultAction::CrashOrchestrator => saw[0] = true,
                    FaultAction::RestartSam => saw[1] = true,
                    FaultAction::PartitionSamHc { duration_ms } => {
                        saw[2] = true;
                        assert!(
                            (500..=4000).contains(&duration_ms),
                            "seed {seed}: {duration_ms}"
                        );
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(saw, [true; 3], "200 seeds must reach every control action");
    }

    #[test]
    fn without_removes_exactly_one_event() {
        let plan = FaultPlan::decode("1000:kp:0:1,2000:kh:1,3000:rh:1").unwrap();
        let smaller = plan.without(1);
        assert_eq!(smaller.events.len(), 2);
        assert!(smaller
            .events
            .iter()
            .all(|e| !matches!(e.action, FaultAction::KillHost { .. })));
        assert_eq!(plan.horizon(), Some(SimTime::from_secs(3)));
    }
}
