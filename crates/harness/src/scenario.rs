//! Campaign scenarios: one per use-case application.
//!
//! A [`Scenario`] bundles everything the [`crate::runner`] needs to put an
//! application under randomized fault load: a world builder (cluster, apps,
//! ORCA service), timing windows, a plan-generation envelope, and the
//! recovery style (orchestrated failover vs. the harness [`Janitor`]
//! baseline).

use crate::plan::PlanSpec;
use orca::{OrcaDescriptor, OrcaService};
use orca_apps::sentiment::{sentiment_app, SentimentOrca, SentimentParams};
use orca_apps::social::{c1_app, c2_app, c3_app, CompositionOrca};
use orca_apps::trend::{trend_app, TrendOrca, TrendParams};
use orca_apps::SharedStores;
use sps_model::compiler::{compile, CompileOptions};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_runtime::{CheckpointPolicy, Cluster, Kernel, MetastoreKind, RuntimeConfig, World};
use sps_sim::{SimDuration, SimTime};

/// Durable-state knobs a campaign threads into every world it builds: the
/// checkpoint policy (data plane) and the metastore backing (control plane).
/// Plain `Copy` data so scenarios stay shareable across campaign workers.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct WorldPolicy {
    pub checkpoint: CheckpointPolicy,
    pub metastore: MetastoreKind,
}

impl WorldPolicy {
    pub fn checkpointed(ckpt: CheckpointPolicy) -> Self {
        WorldPolicy {
            checkpoint: ckpt,
            ..WorldPolicy::default()
        }
    }
}

/// A freshly built world plus the controller index of its ORCA service (if
/// the scenario is orchestrated).
pub struct Built {
    pub world: World,
    /// Index of the [`OrcaService`] controller, for the convergence probe.
    pub orca_idx: Option<usize>,
}

/// One application under campaign test.
#[derive(Clone, Copy)]
pub struct Scenario {
    pub name: &'static str,
    pub hosts: usize,
    /// Steady-state run before the first fault may fire.
    pub warmup: SimDuration,
    /// Faults are injected within `warmup..warmup + fault_window`.
    pub fault_window: SimDuration,
    /// Post-fault run during which the system must reconverge.
    pub settle: SimDuration,
    /// Quanta (within `settle`) by which quiescence must be re-established.
    pub convergence_bound: usize,
    /// Attach the harness [`crate::Janitor`] as the recovery policy.
    pub janitor: bool,
    pub max_incidents: usize,
    /// Builds the world from a campaign seed and the durable-state policy.
    pub build: fn(u64, WorldPolicy) -> Built,
    /// Sink operators to include in determinism artifacts, by name.
    pub taps: &'static [&'static str],
    /// Subset of `taps` whose counts are *structurally exact* under
    /// exactly-once recovery: every input tuple maps to a fixed number of
    /// outputs regardless of arrival timing. With upstream backup enabled the
    /// [`crate::oracle`] asserts tap-count *equality* against the fault-free
    /// baseline for these (not just bounds). Taps whose output cardinality
    /// depends on delivery timing (e.g. windowed aggregates that may emit or
    /// skip an empty pane) stay on the bounded check.
    pub exact_taps: &'static [&'static str],
}

// Scenarios are shared by reference across campaign worker threads
// (`runner::run_campaign` with `jobs > 1`), which holds because every field
// is plain data, a `'static` borrow, or a fn pointer. Keep it that way: a
// field with interior mutability or a non-`Sync` handle would silently
// serialize (or break) the parallel campaign.
const _: () = {
    const fn assert_thread_shareable<T: Send + Sync>() {}
    assert_thread_shareable::<Scenario>();
};

impl Scenario {
    /// Plan-generation envelope derived from this scenario's shape.
    pub fn plan_spec(&self) -> PlanSpec {
        self.plan_spec_with(false)
    }

    /// Like [`Scenario::plan_spec`], with the control-plane fault mix
    /// (orchestrator crash, SAM restart, SAM↔HC partition) switched on.
    pub fn plan_spec_with(&self, control_faults: bool) -> PlanSpec {
        PlanSpec {
            hosts: self.hosts,
            window: (
                SimTime::ZERO + self.warmup,
                SimTime::ZERO + self.warmup + self.fault_window,
            ),
            max_incidents: self.max_incidents,
            // One host down at a time: generated plans never exhaust
            // placement capacity by construction, so a stuck PE is always a
            // runtime/ORCA bug, not a resource shortfall.
            max_hosts_down: 1,
            restart_delay: RuntimeConfig::default().restart_delay,
            revive_all: true,
            control_faults,
        }
    }
}

fn config(seed: u64, policy: WorldPolicy) -> RuntimeConfig {
    RuntimeConfig {
        seed,
        checkpoint: policy.checkpoint,
        metastore: policy.metastore,
        ..RuntimeConfig::default()
    }
}

/// `live`: two unmanaged beacon→filter→sink pipelines (the raw runtime with
/// no orchestrator — the population the `live` tap-streaming module
/// watches). The campaign seed perturbs the source rates so every plan seed
/// also explores a different workload.
fn build_live(seed: u64, policy: WorldPolicy) -> Built {
    let stores = SharedStores::new();
    let mut kernel = Kernel::new(
        Cluster::with_hosts(2),
        orca_apps::registry(&stores),
        config(seed, policy),
    );
    let rate_a = 18.0 + (seed % 5) as f64;
    let rate_b = 27.0 + ((seed >> 3) % 5) as f64;
    for (name, rate) in [("LiveA", rate_a), ("LiveB", rate_b)] {
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "src",
            OperatorInvocation::new("Beacon")
                .source()
                .param("rate", rate),
        );
        m.operator(
            "flt",
            OperatorInvocation::new("Filter").param("predicate", "seq % 2 == 0"),
        );
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("src", "flt");
        m.pipe("flt", "snk");
        let model = AppModelBuilder::new(name)
            .build(m.build().unwrap())
            .unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        kernel.submit_job(adl, None).unwrap();
    }
    Built {
        world: World::new(kernel),
        orca_idx: None,
    }
}

/// `sentiment`: §5.1 drift-adaptation app; the orchestrator reacts to
/// metrics, so PE recovery falls to the janitor.
fn build_sentiment(seed: u64, policy: WorldPolicy) -> Built {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(3),
        orca_apps::registry(&stores),
        config(seed, policy),
    );
    let mut world = World::new(kernel);
    let params = SentimentParams {
        drift_at_secs: 8.0,
        metric_window_secs: 10.0,
        seed,
        ..Default::default()
    };
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("SentimentOrca").app(sentiment_app(params)),
        Box::new(SentimentOrca::new(stores, SimDuration::from_secs(5))),
    );
    let orca_idx = world.add_controller(Box::new(service));
    Built {
        world,
        orca_idx: Some(orca_idx),
    }
}

/// `social`: §5.3 dynamic composition (C1/C2/C3); jobs come and go under
/// the dependency manager while faults land.
fn build_social(seed: u64, policy: WorldPolicy) -> Built {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(4),
        orca_apps::registry(&stores),
        config(seed, policy),
    );
    let mut world = World::new(kernel);
    // Seeded variant of `composition_descriptor`: the campaign seed drives
    // every reader/query workload stream.
    let descriptor = OrcaDescriptor::new("CompositionOrca")
        .app(c1_app("TwitterStreamReader", "twitter", 80.0, seed ^ 21))
        .app(c1_app("MySpaceStreamReader", "myspace", 40.0, seed ^ 22))
        .app(c2_app("TwitterQuery", "twitter", seed ^ 31))
        .app(c2_app("BlogQuery", "blogs", seed ^ 32))
        .app(c2_app("FacebookQuery", "facebook", seed ^ 33))
        .app(c3_app());
    let service = OrcaService::submit(
        &mut world.kernel,
        descriptor,
        Box::new(CompositionOrca::new(40)),
    );
    let orca_idx = world.add_controller(Box::new(service));
    Built {
        world,
        orca_idx: Some(orca_idx),
    }
}

/// `trend`: §5.2 replica failover — the orchestrator itself is the recovery
/// policy (no janitor).
fn build_trend(seed: u64, policy: WorldPolicy) -> Built {
    let stores = SharedStores::new();
    let kernel = Kernel::new(
        Cluster::with_hosts(4),
        orca_apps::registry(&stores),
        config(seed, policy),
    );
    let mut world = World::new(kernel);
    let service = OrcaService::submit(
        &mut world.kernel,
        OrcaDescriptor::new("TrendOrca").app(trend_app(TrendParams {
            window_secs: 8.0,
            tick_rate: 20.0,
            symbols: 3,
            seed,
            ..Default::default()
        })),
        Box::new(TrendOrca::new(3)),
    );
    let orca_idx = world.add_controller(Box::new(service));
    Built {
        world,
        orca_idx: Some(orca_idx),
    }
}

pub fn live() -> Scenario {
    Scenario {
        name: "live",
        hosts: 2,
        warmup: SimDuration::from_secs(4),
        fault_window: SimDuration::from_secs(10),
        settle: SimDuration::from_secs(10),
        convergence_bound: 80,
        janitor: true,
        max_incidents: 5,
        build: build_live,
        taps: &["snk"],
        exact_taps: &["snk"],
    }
}

pub fn sentiment() -> Scenario {
    Scenario {
        name: "sentiment",
        hosts: 3,
        warmup: SimDuration::from_secs(5),
        fault_window: SimDuration::from_secs(10),
        settle: SimDuration::from_secs(10),
        convergence_bound: 80,
        janitor: true,
        max_incidents: 5,
        build: build_sentiment,
        taps: &["display"],
        // `display` sits downstream of a windowed aggregate whose emptiness
        // (and thus emission count) shifts when deliveries land late during
        // replay — equality does not hold structurally, so it stays bounded.
        exact_taps: &[],
    }
}

pub fn social() -> Scenario {
    Scenario {
        name: "social",
        hosts: 4,
        warmup: SimDuration::from_secs(8),
        fault_window: SimDuration::from_secs(10),
        settle: SimDuration::from_secs(12),
        convergence_bound: 100,
        janitor: true,
        max_incidents: 5,
        build: build_social,
        taps: &["log", "result"],
        // `result` rides on dynamically (un)subscribed import routes, so its
        // count depends on route timing; only `log` is per-tuple exact.
        exact_taps: &["log"],
    }
}

pub fn trend() -> Scenario {
    Scenario {
        name: "trend",
        hosts: 4,
        warmup: SimDuration::from_secs(5),
        fault_window: SimDuration::from_secs(12),
        settle: SimDuration::from_secs(15),
        convergence_bound: 120,
        janitor: false,
        max_incidents: 5,
        build: build_trend,
        taps: &["graph"],
        exact_taps: &["graph"],
    }
}

/// Every registered scenario, campaign order.
pub fn all() -> Vec<Scenario> {
    vec![live(), sentiment(), social(), trend()]
}

/// Scenario by name (`--app` / `HARNESS_APP` resolution).
pub fn by_name(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}
