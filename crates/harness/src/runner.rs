//! The campaign runner: executes N seeded fault plans against a scenario,
//! checks the oracle set after each, verifies trace determinism by replay,
//! and shrinks failing schedules to minimal reproducers.

use crate::inject::{FaultInjector, Janitor};
use crate::oracle::{default_oracles, Oracle, OracleCtx, Violation};
use crate::plan::FaultPlan;
use crate::scenario::{Built, Scenario};
use crate::shrink::shrink;
use orca::OrcaService;
use rand::RngCore;
use sps_runtime::{PeStatus, World};
use sps_sim::{fnv1a, SimRng, FNV_OFFSET};

/// Campaign-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of generated plans.
    pub plans: usize,
    /// Master seed: drives both plan generation and every world's RNG.
    pub seed: u64,
    /// Re-run every plan and require bit-identical trace digests.
    pub check_determinism: bool,
    /// Swap in the intentionally-broken convergence oracle (shrinking demo).
    pub broken_convergence: bool,
    /// Stop shrinking/collecting after this many distinct failures.
    pub max_failures: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            plans: 50,
            seed: 7,
            check_determinism: true,
            broken_convergence: false,
            max_failures: 3,
        }
    }
}

/// Result of executing one plan once.
pub struct PlanOutcome {
    /// Trace digest of the settled world.
    pub digest: u64,
    /// First settle quantum at which the system was quiescent.
    pub quanta_to_quiesce: Option<usize>,
    pub violations: Vec<Violation>,
}

/// A failing plan, minimized.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    pub plan_seed: u64,
    pub original: FaultPlan,
    pub shrunk: FaultPlan,
    pub violations: Vec<Violation>,
    /// One-line environment reproducer (`HARNESS_APP=… HARNESS_SEED=…
    /// HARNESS_PLAN=…`).
    pub reproducer: String,
}

/// Aggregate campaign result for one scenario.
pub struct CampaignReport {
    pub scenario: &'static str,
    pub plans_run: usize,
    /// Every plan that violated an oracle — including those beyond
    /// `max_failures`, which are counted here but not shrunk.
    pub plans_failed: usize,
    /// Fold of every plan's trace digest — two campaign runs with the same
    /// seed must report the same value.
    pub digest: u64,
    /// Shrunk reproducers for the first `max_failures` failing plans.
    pub failures: Vec<CampaignFailure>,
}

/// Whole-system quiescence: every running job's PEs are `Up`, and the ORCA
/// service (when present) reports itself converged.
pub fn quiescent(world: &World, orca_idx: Option<usize>) -> bool {
    let kernel = &world.kernel;
    let all_up = kernel.sam.running_jobs().iter().all(|&job| {
        kernel.sam.job(job).is_some_and(|info| {
            info.pe_ids
                .iter()
                .all(|&pe| kernel.pe_status(pe) == Some(PeStatus::Up))
        })
    });
    if !all_up {
        return false;
    }
    match orca_idx {
        Some(idx) => world
            .controller::<OrcaService>(idx)
            .is_some_and(|s| s.quiescent(kernel)),
        None => true,
    }
}

/// Renders the application-visible artifacts — SRM snapshots plus the sink
/// taps of every running job. The campaign determinism digest and the
/// systest determinism suite compare exactly this rendering, so they cannot
/// silently diverge in coverage.
pub fn render_artifacts(world: &World, taps: &[&str]) -> String {
    let jobs = world.kernel.sam.running_jobs();
    let mut out = format!("{:?}\n", world.kernel.srm.query_jobs(&jobs));
    for &job in &jobs {
        for tap in taps {
            if let Some(tuples) = world.kernel.tap(job, tap) {
                out.push_str(&format!("{job:?}.{tap}: {tuples:?}\n"));
            }
        }
    }
    out
}

/// Executes one plan against a fresh world: warmup, injection, settle, then
/// the oracle pass.
pub fn run_plan(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    oracles: &[Box<dyn Oracle>],
) -> PlanOutcome {
    let Built {
        mut world,
        orca_idx,
    } = (scenario.build)(seed);
    if scenario.janitor {
        world.add_controller(Box::new(Janitor::default()));
    }
    world.run_for(scenario.warmup);
    world.add_controller(Box::new(FaultInjector::new(plan.clone())));

    // Drive through the fault window; restart-gap kills may overshoot the
    // nominal window, so extend to the plan's horizon plus one quantum.
    let quantum = world.kernel.config.quantum;
    let mut fault_end = world.now() + scenario.fault_window;
    if let Some(h) = plan.horizon() {
        if h + quantum > fault_end {
            fault_end = h + quantum;
        }
    }
    world.run_until(fault_end);

    // Settle: track the first quantum at which the system is quiescent.
    let settle_quanta = (scenario.settle.as_millis() / quantum.as_millis()) as usize;
    let mut quanta_to_quiesce = None;
    for q in 0..settle_quanta {
        world.step();
        if quanta_to_quiesce.is_none() && quiescent(&world, orca_idx) {
            quanta_to_quiesce = Some(q + 1);
        }
    }

    // The run digest covers the kernel trace *and* the application-visible
    // state (SRM snapshots, sink taps), so the determinism replay catches
    // nondeterministic operator state even when the lifecycle trace agrees.
    let mut digest = fnv1a(FNV_OFFSET, &world.kernel.trace.digest().to_le_bytes());
    digest = fnv1a(digest, render_artifacts(&world, scenario.taps).as_bytes());
    let ctx = OracleCtx {
        world: &world,
        orca_idx,
        quanta_to_quiesce,
        convergence_bound: scenario.convergence_bound,
    };
    let violations = oracles
        .iter()
        .filter_map(|o| {
            o.check(&ctx).err().map(|message| Violation {
                oracle: o.name(),
                message,
            })
        })
        .collect();
    PlanOutcome {
        digest,
        quanta_to_quiesce,
        violations,
    }
}

/// Runs a plan and, when requested, replays it to enforce the determinism
/// oracle. Returns all violations (oracle + determinism).
pub fn evaluate(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    oracles: &[Box<dyn Oracle>],
    check_determinism: bool,
) -> (u64, Vec<Violation>) {
    let outcome = run_plan(scenario, seed, plan, oracles);
    let mut violations = outcome.violations;
    if check_determinism {
        let replay = run_plan(scenario, seed, plan, oracles);
        if replay.digest != outcome.digest {
            violations.push(Violation {
                oracle: "determinism",
                message: format!(
                    "trace digests diverged for identical seed/plan: {:#018x} vs {:#018x}",
                    outcome.digest, replay.digest
                ),
            });
        }
    }
    (outcome.digest, violations)
}

/// Runs a full campaign over one scenario.
pub fn run_campaign(scenario: &Scenario, cfg: &CampaignConfig) -> CampaignReport {
    let oracles = default_oracles(cfg.broken_convergence);
    let mut master = SimRng::new(cfg.seed);
    let mut digest = FNV_OFFSET;
    let mut failures: Vec<CampaignFailure> = Vec::new();
    let mut plans_failed = 0usize;
    for _ in 0..cfg.plans {
        // Independent per-plan stream: seeds world RNG and plan sampling.
        let plan_seed = master.next_u64();
        let plan = FaultPlan::generate(&mut SimRng::new(plan_seed), &scenario.plan_spec());
        let (plan_digest, violations) =
            evaluate(scenario, plan_seed, &plan, &oracles, cfg.check_determinism);
        digest = fnv1a(digest, &plan_digest.to_le_bytes());
        if !violations.is_empty() {
            plans_failed += 1;
        }
        if !violations.is_empty() && failures.len() < cfg.max_failures {
            // The determinism replay doubles every shrink candidate's cost;
            // only pay for it when the failure actually is a divergence.
            let det_shrink =
                cfg.check_determinism && violations.iter().any(|v| v.oracle == "determinism");
            let shrunk = shrink(scenario, plan_seed, &plan, &oracles, det_shrink);
            let reproducer = format!(
                "HARNESS_APP={} HARNESS_SEED={} HARNESS_PLAN={}",
                scenario.name,
                plan_seed,
                shrunk.encode()
            );
            failures.push(CampaignFailure {
                plan_seed,
                original: plan,
                shrunk,
                violations,
                reproducer,
            });
        }
    }
    CampaignReport {
        scenario: scenario.name,
        plans_run: cfg.plans,
        plans_failed,
        digest,
        failures,
    }
}
