//! The campaign runner: executes N seeded fault plans against a scenario,
//! checks the oracle set after each, verifies trace determinism by replay,
//! and shrinks failing schedules to minimal reproducers.

use crate::cache::BaselineCache;
use crate::inject::{FaultInjector, Janitor};
use crate::oracle::{default_oracles, BaselineSummary, Oracle, OracleCtx, Violation};
use crate::plan::FaultPlan;
use crate::pool::indexed_pool;
use crate::scenario::{Built, Scenario, WorldPolicy};
use crate::shrink::shrink_failures;
use orca::OrcaService;
use rand::RngCore;
use sps_engine::metrics::builtin;
use sps_runtime::{CheckpointPolicy, ControlStats, MetastoreKind, PeStatus, UbStats, World};
use sps_sim::{fnv1a, DigestWriter, SimRng, FNV_OFFSET};

/// Campaign-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Number of generated plans.
    pub plans: usize,
    /// Master seed: drives both plan generation and every world's RNG.
    pub seed: u64,
    /// Re-run every plan and require bit-identical trace digests.
    pub check_determinism: bool,
    /// Swap in the intentionally-broken convergence oracle (shrinking demo).
    pub broken_convergence: bool,
    /// Stop shrinking/collecting after this many distinct failures.
    pub max_failures: usize,
    /// Kernel checkpoint policy for every world the campaign builds. When
    /// enabled, the `StatePreservation` oracle joins the set and every plan
    /// is compared against a fault-free baseline of the same seed; the
    /// `lossy_restore` knob is the state-oracle shrinking demo.
    pub checkpoint: CheckpointPolicy,
    /// Metastore backing for every world the campaign builds (`--metastore`).
    /// With control faults off this must be execution-invisible: campaign
    /// stdout is byte-identical for `Memory` and `Replicated`.
    pub metastore: MetastoreKind,
    /// Include control-plane faults (orchestrator crash, SAM restart,
    /// SAM↔HC partition) in the generated plan mix and add the
    /// control-plane recovery oracle (`--control-faults`).
    pub control_faults: bool,
    /// Worker threads for plan evaluation and failure shrinking (`--jobs` /
    /// `HARNESS_JOBS`). Plans are sharded across workers and the report is
    /// folded in plan-index order, so every `CampaignReport` field is
    /// bit-identical for `jobs = 1` and `jobs = N`. `0` is treated as `1`.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            plans: 50,
            seed: 7,
            check_determinism: true,
            broken_convergence: false,
            max_failures: 3,
            checkpoint: CheckpointPolicy::default(),
            metastore: MetastoreKind::default(),
            control_faults: false,
            jobs: 1,
        }
    }
}

impl CampaignConfig {
    /// The durable-state policy every world of this campaign is built with.
    pub fn policy(&self) -> WorldPolicy {
        WorldPolicy {
            checkpoint: self.checkpoint,
            metastore: self.metastore,
        }
    }
}

/// Result of executing one plan once.
pub struct PlanOutcome {
    /// Trace digest of the settled world.
    pub digest: u64,
    /// First settle quantum at which the system was quiescent.
    pub quanta_to_quiesce: Option<usize>,
    pub violations: Vec<Violation>,
    /// Upstream-backup transport counters of the settled world (all zero
    /// when the feature is off).
    pub ub: UbStats,
    /// Control-plane fault/recovery counters of the settled world (all zero
    /// when no control fault fired).
    pub control: ControlStats,
}

/// A failing plan, minimized.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    pub plan_seed: u64,
    pub original: FaultPlan,
    pub shrunk: FaultPlan,
    pub violations: Vec<Violation>,
    /// One-line environment reproducer (`HARNESS_APP=… HARNESS_SEED=…
    /// [HARNESS_CKPT=… [HARNESS_LOSSY=1] [HARNESS_UB=1]
    /// [HARNESS_CKPT_LAT=…] [HARNESS_CKPT_BUDGET=…]] HARNESS_PLAN=…`).
    pub reproducer: String,
}

/// Aggregate campaign result for one scenario.
pub struct CampaignReport {
    pub scenario: &'static str,
    pub plans_run: usize,
    /// Every plan that violated an oracle — including those beyond
    /// `max_failures`, which are counted here but not shrunk.
    pub plans_failed: usize,
    /// Fold of every plan's trace digest — two campaign runs with the same
    /// seed must report the same value.
    pub digest: u64,
    /// Shrunk reproducers for the first `max_failures` failing plans (in
    /// plan-index order).
    pub failures: Vec<CampaignFailure>,
    /// Failing plans beyond `max_failures`, whose reproducers were dropped:
    /// always `plans_failed - failures.len()`. Surfaced so a campaign log
    /// never silently under-reports how many plans actually failed.
    pub failures_truncated: usize,
    /// Upstream-backup counters summed over every plan's primary run, in
    /// plan-index order (all zero when the feature is off).
    pub ub: UbStats,
    /// Control-plane counters summed over every plan's primary run, in
    /// plan-index order (all zero when no control fault fired anywhere).
    pub control: ControlStats,
}

impl CampaignReport {
    /// Renders every observable report field, so equality on the rendering
    /// is a byte-identity check over the whole report. This is the one
    /// canonical rendering — the `campaign` binary's `--bench-json`
    /// cross-arm assertion and the systest identity suites all compare it,
    /// so a future report field rendered here is covered by every identity
    /// check at once.
    pub fn render(&self) -> String {
        let mut out = format!(
            "app={} plans={} failed={} truncated={} digest={:016x}\n",
            self.scenario, self.plans_run, self.plans_failed, self.failures_truncated, self.digest
        );
        // Only rendered when the campaign ran with upstream backup (any
        // counter nonzero), so backup-off reports stay byte-identical to
        // earlier releases.
        if self.ub.any() {
            out.push_str(&format!(
                "  upstream-backup: buffered={} replayed={} suppressed={} \
                 trimmed={} peak_buffered={}\n",
                self.ub.buffered,
                self.ub.replayed,
                self.ub.suppressed,
                self.ub.trimmed,
                self.ub.peak_buffered
            ));
        }
        // Likewise only rendered when a control-plane fault actually fired,
        // so control-faults-off reports (any metastore) stay byte-identical
        // to earlier releases.
        if self.control.any() {
            out.push_str(&format!(
                "  control-plane: orca_crashes={} orca_recoveries={} \
                 notifications_replayed={} sam_restarts={} \
                 meta_ops_replayed={} hc_partitions={} false_declarations={}\n",
                self.control.orca_crashes,
                self.control.orca_recoveries,
                self.control.notifications_replayed,
                self.control.sam_restarts,
                self.control.meta_ops_replayed,
                self.control.hc_partitions,
                self.control.false_declarations
            ));
        }
        for f in &self.failures {
            out.push_str(&format!(
                "  seed={} original={} shrunk={} violations={:?}\n  reproduce: {}\n",
                f.plan_seed,
                f.original.encode(),
                f.shrunk.encode(),
                f.violations,
                f.reproducer
            ));
        }
        out
    }
}

/// Whole-system quiescence: every running job's PEs are `Up`, and the ORCA
/// service (when present) reports itself converged.
pub fn quiescent(world: &World, orca_idx: Option<usize>) -> bool {
    let kernel = &world.kernel;
    let all_up = kernel.sam.running_jobs().iter().all(|&job| {
        kernel.sam.job(job).is_some_and(|info| {
            info.pe_ids
                .iter()
                .all(|&pe| kernel.pe_status(pe) == Some(PeStatus::Up))
        })
    });
    if !all_up {
        return false;
    }
    match orca_idx {
        Some(idx) => world
            .controller::<OrcaService>(idx)
            .is_some_and(|s| s.quiescent(kernel)),
        None => true,
    }
}

/// Renders the application-visible artifacts — SRM snapshots plus the sink
/// taps of every running job — into any `fmt::Write` sink. The campaign
/// determinism digest streams this straight into a [`DigestWriter`]
/// (no intermediate `String`), while tests and the determinism suite render
/// to a `String` via [`render_artifacts`]; both go through this one
/// function, so the digested bytes and the rendered bytes cannot silently
/// diverge in coverage.
pub fn render_artifacts_to<W: std::fmt::Write>(
    world: &World,
    taps: &[&str],
    out: &mut W,
) -> std::fmt::Result {
    let jobs = world.kernel.sam.running_jobs();
    writeln!(out, "{:?}", world.kernel.srm.query_jobs(&jobs))?;
    for &job in &jobs {
        for tap in taps {
            if let Some(tuples) = world.kernel.tap(job, tap) {
                writeln!(out, "{job:?}.{tap}: {tuples:?}")?;
            }
        }
    }
    Ok(())
}

/// [`render_artifacts_to`] into a fresh `String`.
pub fn render_artifacts(world: &World, taps: &[&str]) -> String {
    let mut out = String::new();
    render_artifacts_to(world, taps, &mut out).expect("String sink never fails");
    out
}

/// Builds a world, drives warmup → fault window → settle, and returns the
/// settled world plus the ORCA controller index and the first quiescent
/// settle quantum. Shared by [`run_plan`] and [`compute_baseline`] so the
/// faulted run and its fault-free baseline are produced by the exact same
/// machinery; public so sweep drivers (the `ckpt_sweep` bench) can reuse the
/// same warmup → fault window → settle schedule and mine the settled
/// kernel's restart log.
pub fn settled_world(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    policy: WorldPolicy,
    horizon_floor: Option<sps_sim::SimTime>,
) -> (World, Option<usize>, Option<usize>) {
    let Built {
        mut world,
        orca_idx,
    } = (scenario.build)(seed, policy);
    if scenario.janitor {
        world.add_controller(Box::new(Janitor::default()));
    }
    world.run_for(scenario.warmup);
    world.add_controller(Box::new(FaultInjector::new(plan.clone())));

    // Drive through the fault window; restart-gap kills may overshoot the
    // nominal window, so extend to the plan's horizon plus one quantum.
    // `horizon_floor` lets a fault-free baseline run exactly as long as the
    // faulted plan it will be compared against — otherwise the comparison
    // would flag the extra quanta of processing as fabricated state.
    let quantum = world.kernel.config.quantum;
    let mut fault_end = world.now() + scenario.fault_window;
    for h in plan.horizon().into_iter().chain(horizon_floor) {
        if h + quantum > fault_end {
            fault_end = h + quantum;
        }
    }
    world.run_until(fault_end);

    // Settle: track the first quantum at which the system is quiescent.
    let settle_quanta = (scenario.settle.as_millis() / quantum.as_millis()) as usize;
    let mut quanta_to_quiesce = None;
    for q in 0..settle_quanta {
        world.step();
        if quanta_to_quiesce.is_none() && quiescent(&world, orca_idx) {
            quanta_to_quiesce = Some(q + 1);
        }
    }
    (world, orca_idx, quanta_to_quiesce)
}

/// Runs the fault-free plan for `(scenario, seed)` and summarizes the
/// stateful artifacts (per-job tap throughput of jobs present since warmup)
/// the `StatePreservation` oracle compares faulted runs against.
///
/// `horizon` must be the horizon of the faulted plan the baseline will be
/// compared against, so both runs cover the same simulated span (shrink
/// candidates only ever run *shorter*, which the oracle bounds tolerate).
pub fn compute_baseline(
    scenario: &Scenario,
    seed: u64,
    policy: WorldPolicy,
    horizon: Option<sps_sim::SimTime>,
) -> BaselineSummary {
    let (world, _, _) = settled_world(scenario, seed, &FaultPlan::default(), policy, horizon);
    let kernel = &world.kernel;
    let mut summary = BaselineSummary::default();
    let stable_before = sps_sim::SimTime::ZERO + scenario.warmup;
    for job in kernel.sam.running_jobs() {
        let Some(info) = kernel.sam.job(job) else {
            continue;
        };
        // Only jobs alive since before the fault window: late-spawned jobs
        // (dynamic composition) may legitimately differ between runs.
        if info.submitted_at > stable_before {
            continue;
        }
        summary.apps.insert(job, info.app_name.clone());
        for tap in scenario.taps {
            if let Some(n) = kernel.op_metric(job, tap, builtin::N_TUPLES_PROCESSED) {
                summary.taps.insert((job, tap.to_string()), n);
            }
        }
    }
    summary
}

/// Where an execution gets its fault-free baseline: the shared memo plus
/// the horizon floor the baseline run must cover — the executed plan's own
/// horizon at the top level, or the *original* plan's horizon when
/// shrinking (so every shrink candidate hits the floor-keyed entry phase 1
/// already computed).
#[derive(Clone, Copy)]
pub struct BaselineSource<'a> {
    pub cache: &'a BaselineCache,
    pub floor: Option<sps_sim::SimTime>,
}

impl<'a> BaselineSource<'a> {
    pub fn new(cache: &'a BaselineCache, floor: Option<sps_sim::SimTime>) -> Self {
        BaselineSource { cache, floor }
    }
}

/// Executes one plan against a fresh world: warmup, injection, settle, then
/// the oracle pass.
///
/// When checkpointing is on, the fault-free baseline the state oracle
/// compares against is fetched through `baseline` at the point of use,
/// keyed by `(scenario, seed, baseline.floor, policy)`.
pub fn run_plan(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    oracles: &[Box<dyn Oracle>],
    policy: WorldPolicy,
    baseline: BaselineSource<'_>,
) -> PlanOutcome {
    // Fetch (or compute) the baseline before simulating the faulted world so
    // a cache miss is attributable to this plan in `--timing` accounting.
    let baseline = policy.checkpoint.enabled().then(|| {
        baseline
            .cache
            .get_or_compute(scenario, seed, policy, baseline.floor)
    });
    let (world, orca_idx, quanta_to_quiesce) = settled_world(scenario, seed, plan, policy, None);

    // The run digest covers the kernel trace *and* the application-visible
    // state (SRM snapshots, sink taps), so the determinism replay catches
    // nondeterministic operator state even when the lifecycle trace agrees.
    // Artifacts are streamed into the digest rather than rendered to an
    // intermediate `String` — byte-equivalent, allocation-free.
    let mut w = DigestWriter::new(fnv1a(
        FNV_OFFSET,
        &world.kernel.trace.digest().to_le_bytes(),
    ));
    render_artifacts_to(&world, scenario.taps, &mut w).expect("digest sink never fails");
    let digest = w.digest();
    let ctx = OracleCtx {
        world: &world,
        orca_idx,
        quanta_to_quiesce,
        convergence_bound: scenario.convergence_bound,
        opts: policy.checkpoint,
        baseline: baseline.as_deref(),
        exact_taps: scenario.exact_taps,
    };
    let violations = oracles
        .iter()
        .filter_map(|o| {
            o.check(&ctx).err().map(|message| Violation {
                oracle: o.name(),
                message,
            })
        })
        .collect();
    PlanOutcome {
        digest,
        quanta_to_quiesce,
        violations,
        ub: world.kernel.ub_stats(),
        control: world.kernel.control_stats(),
    }
}

/// Runs a plan and, when requested, replays it to enforce the determinism
/// oracle. Returns all violations (oracle + determinism).
///
/// Both executions fetch their baseline through `baseline.cache`: the
/// primary run misses (at most once per key process-wide) and the
/// determinism replay hits the same entry, so enabling the replay no longer
/// doubles baseline cost.
pub fn evaluate(
    scenario: &Scenario,
    seed: u64,
    plan: &FaultPlan,
    oracles: &[Box<dyn Oracle>],
    check_determinism: bool,
    policy: WorldPolicy,
    baseline: BaselineSource<'_>,
) -> (u64, Vec<Violation>) {
    let outcome = run_plan(scenario, seed, plan, oracles, policy, baseline);
    let mut violations = outcome.violations;
    if check_determinism {
        let replay = run_plan(scenario, seed, plan, oracles, policy, baseline);
        if replay.digest != outcome.digest {
            violations.push(Violation {
                oracle: "determinism",
                message: format!(
                    "trace digests diverged for identical seed/plan: {:#018x} vs {:#018x}",
                    outcome.digest, replay.digest
                ),
            });
        }
    }
    (outcome.digest, violations)
}

/// Renders the one-line environment reproducer for a failing plan,
/// capturing the checkpoint policy, metastore backing, and control-fault
/// regime so replays run under the same configuration.
pub fn reproducer_line(
    scenario: &Scenario,
    plan_seed: u64,
    plan: &FaultPlan,
    policy: WorldPolicy,
    control_faults: bool,
) -> String {
    let opts = policy.checkpoint;
    let mut line = format!("HARNESS_APP={} HARNESS_SEED={plan_seed}", scenario.name);
    if opts.enabled() {
        line.push_str(&format!(" HARNESS_CKPT={}", opts.every_quanta));
    }
    if opts.lossy_restore {
        line.push_str(" HARNESS_LOSSY=1");
    }
    if opts.upstream_backup {
        line.push_str(" HARNESS_UB=1");
    }
    // Storage-model knobs the campaign binary exposes; omitted at their
    // zero defaults so pre-storage reproducer lines are reproduced verbatim.
    if opts.storage.write_op_ms != 0 {
        line.push_str(&format!(" HARNESS_CKPT_LAT={}", opts.storage.write_op_ms));
    }
    if opts.storage.budget_bytes != 0 {
        line.push_str(&format!(
            " HARNESS_CKPT_BUDGET={}",
            opts.storage.budget_bytes
        ));
    }
    // Control-plane knobs, omitted at their defaults so pre-control
    // reproducer lines are reproduced verbatim. The metastore default is
    // what replay resolution would pick for this line: replicated when
    // control faults are on, memory otherwise.
    if control_faults {
        line.push_str(" HARNESS_CTRL=1");
    }
    let replay_default = if control_faults {
        MetastoreKind::Replicated
    } else {
        MetastoreKind::Memory
    };
    if policy.metastore != replay_default {
        line.push_str(&format!(" HARNESS_META={}", policy.metastore.as_str()));
    }
    line.push_str(&format!(" HARNESS_PLAN={}", plan.encode()));
    line
}

/// Per-plan seeds for a campaign, derived once up front: plan `i`'s seed is
/// the `i`-th draw of the master stream, i.e. a pure function of
/// `(campaign_seed, plan_index)` that is independent of evaluation order.
/// This is what lets plan evaluation shard across worker threads without
/// moving a single seed.
pub fn plan_seeds(campaign_seed: u64, plans: usize) -> Vec<u64> {
    let mut master = SimRng::new(campaign_seed);
    (0..plans).map(|_| master.next_u64()).collect()
}

/// Everything phase 1 learned about one plan; the coordinator folds these in
/// plan-index order and phase 2 shrinks the failing ones. The fault-free
/// baseline is *not* carried along — shrinking re-fetches it from the
/// [`BaselineCache`] under the original plan's horizon floor, which is the
/// same key phase 1 populated.
pub(crate) struct PlanEval {
    pub plan_seed: u64,
    pub plan: FaultPlan,
    pub digest: u64,
    pub violations: Vec<Violation>,
    /// Upstream-backup counters of the primary run (the determinism replay
    /// is excluded so the report reflects one execution per plan).
    pub ub: UbStats,
    /// Control-plane counters of the primary run, same convention.
    pub control: ControlStats,
}

/// Evaluates one indexed plan: generation, baseline, execution, oracles.
/// Pure in `(scenario, cfg, plan_seed)` — safe to run on any worker.
fn evaluate_plan(
    scenario: &Scenario,
    cfg: &CampaignConfig,
    plan_seed: u64,
    cache: &BaselineCache,
) -> PlanEval {
    let policy = cfg.policy();
    let oracles = default_oracles(
        cfg.broken_convergence,
        policy.checkpoint.enabled(),
        cfg.control_faults,
    );
    // Independent per-plan stream: seeds world RNG and plan sampling.
    let plan = FaultPlan::generate(
        &mut SimRng::new(plan_seed),
        &scenario.plan_spec_with(cfg.control_faults),
    );
    // The state oracle compares against the fault-free run of the same
    // seed, memoized by `(scenario, seed, horizon floor, opts)`: the
    // determinism replay and the shrink phase hit the entry this fetch
    // populates instead of re-simulating the baseline world.
    let floor = plan.horizon();
    let baseline = BaselineSource::new(cache, floor);
    // Inlined [`evaluate`] so the primary run's upstream-backup and
    // control-plane counters can be kept (the determinism replay would
    // double them).
    let outcome = run_plan(scenario, plan_seed, &plan, &oracles, policy, baseline);
    let digest = outcome.digest;
    let ub = outcome.ub;
    let control = outcome.control;
    let mut violations = outcome.violations;
    if cfg.check_determinism {
        let replay = run_plan(scenario, plan_seed, &plan, &oracles, policy, baseline);
        if replay.digest != digest {
            violations.push(Violation {
                oracle: "determinism",
                message: format!(
                    "trace digests diverged for identical seed/plan: {:#018x} vs {:#018x}",
                    digest, replay.digest
                ),
            });
        }
    }
    PlanEval {
        plan_seed,
        plan,
        digest,
        violations,
        ub,
        control,
    }
}

/// Runs a full campaign over one scenario, sharding plan evaluation across
/// `cfg.jobs` worker threads.
///
/// Determinism under parallelism: per-plan seeds are a pure function of
/// `(cfg.seed, plan_index)` (see [`plan_seeds`]), each plan runs against its
/// own private world, and the coordinator folds `(plan_index, digest,
/// violations)` results **in plan-index order** — so `digest`,
/// `plans_failed`, the `max_failures`-truncated failure list, and every
/// reproducer line are byte-identical whatever `cfg.jobs` is. Shrinking a
/// single failing plan stays sequential (greedy candidate elimination), but
/// distinct failures shrink concurrently.
pub fn run_campaign(scenario: &Scenario, cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_cached(scenario, cfg, &BaselineCache::default())
}

/// [`run_campaign`] against a caller-owned [`BaselineCache`], so repeated
/// campaigns (determinism double-runs, multi-app drivers, benchmarks) in one
/// process reuse each other's fault-free baselines. The cache can never
/// change the report — only how often baseline worlds are re-simulated —
/// so this is byte-identical to `run_campaign` for any cache state.
pub fn run_campaign_cached(
    scenario: &Scenario,
    cfg: &CampaignConfig,
    cache: &BaselineCache,
) -> CampaignReport {
    let seeds = plan_seeds(cfg.seed, cfg.plans);

    // Phase 1: evaluate every plan — the expensive, embarrassingly parallel
    // part. Workers pull plan indices from a shared counter; the pool hands
    // results back in index order regardless of completion order.
    let evals = indexed_pool(seeds.len(), cfg.jobs, |i| {
        evaluate_plan(scenario, cfg, seeds[i], cache)
    });

    // Ordered fold: identical to the sequential loop it replaced.
    let mut digest = FNV_OFFSET;
    let mut plans_failed = 0usize;
    let mut ub = UbStats::default();
    let mut control = ControlStats::default();
    let mut to_shrink: Vec<PlanEval> = Vec::new();
    for eval in evals {
        digest = fnv1a(digest, &eval.digest.to_le_bytes());
        ub.absorb(&eval.ub);
        control.merge(&eval.control);
        if eval.violations.is_empty() {
            continue;
        }
        plans_failed += 1;
        if to_shrink.len() < cfg.max_failures {
            to_shrink.push(eval);
        }
    }
    let failures_truncated = plans_failed - to_shrink.len();

    // Phase 2: shrink the first `max_failures` failing plans, concurrently
    // across distinct failures. Candidates re-fetch their baseline from the
    // cache under the original plan's horizon floor.
    let failures = shrink_failures(scenario, cfg, to_shrink, cache);

    CampaignReport {
        scenario: scenario.name,
        plans_run: cfg.plans,
        plans_failed,
        digest,
        failures,
        failures_truncated,
        ub,
        control,
    }
}
