//! Controllers that drive a [`FaultPlan`] into a running [`World`].
//!
//! [`FaultInjector`] resolves symbolic plan actions against the live system
//! each quantum and injects them through the kernel's fault surface
//! ([`Kernel::schedule_kill`] / [`KillTarget`], `revive_host`). [`Janitor`]
//! is a baseline recovery policy for scenarios whose ORCA logic does not
//! handle PE failures itself: it restarts every crashed PE it can, retrying
//! while hosts are down.

use crate::plan::{FaultAction, FaultEvent, FaultPlan};
use sps_runtime::{Controller, Kernel, KillTarget, PeId, PeStatus};
use std::any::Any;

/// Replays a [`FaultPlan`], resolving slots at fire time.
pub struct FaultInjector {
    /// Plan events, time-ordered; `next` advances through them so
    /// same-instant events fire in plan order.
    events: Vec<FaultEvent>,
    next: usize,
    /// Human-readable record of what each event resolved to.
    pub fired: Vec<String>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            events: plan.events,
            next: 0,
            fired: Vec::new(),
        }
    }

    /// True once every plan event has been injected.
    pub fn done(&self) -> bool {
        self.next >= self.events.len()
    }

    fn fire(&mut self, kernel: &mut Kernel, event: FaultEvent) {
        let now = kernel.now();
        match event.action {
            FaultAction::KillPe { job_slot, pe_slot } => {
                let jobs = kernel.sam.running_jobs();
                if jobs.is_empty() {
                    self.fired
                        .push(format!("[{now}] {} -> no jobs", event.action));
                    return;
                }
                let job = jobs[job_slot as usize % jobs.len()];
                let pe_ids = &kernel.sam.job(job).expect("running job").pe_ids;
                let pe = pe_ids[pe_slot as usize % pe_ids.len()];
                // Only live processes can be killed; a slot resolving to an
                // already-crashed PE is a no-op (the plan stays replayable
                // even when earlier faults changed the population).
                if matches!(
                    kernel.pe_status(pe),
                    Some(PeStatus::Up | PeStatus::Starting)
                ) {
                    kernel.schedule_kill(now, KillTarget::Pe(pe));
                    self.fired.push(format!("[{now}] {} -> {pe}", event.action));
                } else {
                    self.fired
                        .push(format!("[{now}] {} -> {pe} not live", event.action));
                }
            }
            FaultAction::KillHost { host_slot } => {
                let names = kernel.cluster.host_names();
                let name = names[host_slot as usize % names.len()].to_string();
                if kernel.cluster.host(&name).is_some_and(|h| h.up) {
                    kernel.schedule_kill(now, KillTarget::Host(name.clone()));
                    self.fired
                        .push(format!("[{now}] {} -> {name}", event.action));
                } else {
                    self.fired
                        .push(format!("[{now}] {} -> {name} already down", event.action));
                }
            }
            FaultAction::ReviveHost { host_slot } => {
                let names = kernel.cluster.host_names();
                let name = names[host_slot as usize % names.len()].to_string();
                if kernel.cluster.host(&name).is_some_and(|h| !h.up) {
                    let _ = kernel.revive_host(&name);
                    self.fired
                        .push(format!("[{now}] {} -> {name}", event.action));
                } else {
                    self.fired
                        .push(format!("[{now}] {} -> {name} already up", event.action));
                }
            }
            FaultAction::CrashOrchestrator => {
                // Every registered orchestrator loses its process; unmanaged
                // scenarios (no orca) record the no-op so the plan replay
                // trace stays complete.
                let orcas = kernel.sam.orchestrators();
                if orcas.is_empty() {
                    self.fired
                        .push(format!("[{now}] {} -> no orchestrator", event.action));
                    return;
                }
                for orca in orcas {
                    if kernel.crash_orchestrator(orca) {
                        self.fired
                            .push(format!("[{now}] {} -> {orca}", event.action));
                    } else {
                        self.fired
                            .push(format!("[{now}] {} -> {orca} already down", event.action));
                    }
                }
            }
            FaultAction::RestartSam => {
                if kernel.restart_sam() {
                    self.fired.push(format!("[{now}] {}", event.action));
                } else {
                    self.fired
                        .push(format!("[{now}] {} -> already restarting", event.action));
                }
            }
            FaultAction::PartitionSamHc { duration_ms } => {
                kernel.partition_sam_hc(sps_sim::SimDuration::from_millis(duration_ms as u64));
                self.fired.push(format!("[{now}] {}", event.action));
            }
        }
    }
}

impl Controller for FaultInjector {
    fn on_quantum(&mut self, kernel: &mut Kernel) {
        while self
            .events
            .get(self.next)
            .is_some_and(|e| e.at <= kernel.now())
        {
            let event = self.events[self.next];
            self.next += 1;
            self.fire(kernel, event);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Baseline self-healing: restart every crashed PE, every quantum, until it
/// sticks. Used by scenarios whose orchestrator logic adapts to metrics
/// rather than failures (sentiment, social) and by unmanaged apps (live).
#[derive(Default)]
pub struct Janitor {
    /// (old, new) PE ids of successful restarts.
    pub restarts: Vec<(PeId, PeId)>,
    /// Restart attempts that failed (e.g. no host up); retried next quantum.
    pub deferred: u64,
}

impl Controller for Janitor {
    fn on_quantum(&mut self, kernel: &mut Kernel) {
        let mut crashed: Vec<PeId> = Vec::new();
        for job in kernel.sam.running_jobs() {
            let Some(info) = kernel.sam.job(job) else {
                continue;
            };
            for &pe in &info.pe_ids {
                if kernel.pe_status(pe) == Some(PeStatus::Crashed) {
                    crashed.push(pe);
                }
            }
        }
        for pe in crashed {
            match kernel.restart_pe(pe) {
                Ok(new_pe) => self.restarts.push((pe, new_pe)),
                Err(_) => self.deferred += 1,
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
