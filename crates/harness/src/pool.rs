//! A deterministic indexed worker pool.
//!
//! Campaign plan evaluation is embarrassingly parallel — every plan owns an
//! independent seed, world, and baseline — but the campaign *report* must be
//! bit-identical regardless of how many workers ran it. The pool therefore
//! never lets scheduling order leak into results: workers pull indices from
//! a shared counter, compute `f(i)` for a pure-per-index `f`, and send
//! `(index, result)` back over a channel; the coordinator slots each result
//! by index and returns them in index order. The caller's fold over the
//! returned `Vec` is then the same fold it would have done single-threaded.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Computes `f(i)` for every `i < n` across up to `jobs` worker threads and
/// returns the results **in index order**, so any fold over them is
/// identical for `jobs = 1` and `jobs = N`. `f` must be a pure function of
/// its index (it is shared by reference across workers).
///
/// `jobs <= 1` (or `n <= 1`) runs inline on the caller's thread — the
/// single-threaded path spawns nothing.
pub fn indexed_pool<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        // The coordinator drains while workers run; the iteration ends once
        // every worker has dropped its sender clone.
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_for_any_jobs() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 4, 8, 16] {
            assert_eq!(indexed_pool(97, jobs, |i| i * i), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(indexed_pool(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(indexed_pool(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn every_index_is_computed_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        indexed_pool(64, 4, |i| calls[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }
}
