//! Seeded fault-injection campaign harness.
//!
//! Converts the hand-scripted failover suites into thousands of
//! machine-generated failure scenarios: a seeded [`FaultPlan`] generator
//! samples kill/revive schedules (PE kills, host kills and revives,
//! simultaneous cascades, kills aimed into the restart gap) over any
//! registered application scenario; the [`runner`] executes plans through
//! the simulated [`sps_runtime::World`] and checks a pluggable set of
//! invariant [`oracle`]s — every killed PE returns to running or is cleanly
//! reaped, the ORCA loop reconverges within a bounded number of quanta, SAM
//! notifications are conserved, and the same seed reproduces a bit-identical
//! `sim::trace`. Under a checkpoint policy ([`CheckpointPolicy`]) the
//! [`StatePreservationOracle`] additionally requires every stateful-PE
//! recovery to revive verified operator state, compared against a
//! fault-free baseline run of the same seed. Failing schedules are greedily
//! [`shrink`]ed to a 1-minimal reproducer and reported as a one-line
//! `HARNESS_SEED=… [HARNESS_CKPT=…] HARNESS_PLAN=…` environment stanza.
//! Campaigns shard plan evaluation (and the shrinking of distinct failures)
//! across a worker [`pool`] (`CampaignConfig::jobs` / `--jobs` /
//! `HARNESS_JOBS`); per-plan seeds are a pure function of `(campaign_seed,
//! plan_index)` and results fold in plan-index order, so every report is
//! bit-identical at any parallelism. Fault-free baselines are memoized in a
//! [`BaselineCache`] keyed by `(scenario, seed, horizon floor, checkpoint
//! policy)` — a deterministic replay artifact cached by its input
//! fingerprint — shared by plan evaluation, the shrink walk, and `--replay`.
//!
//! Replay a failing plan locally with the `campaign` binary:
//!
//! ```text
//! HARNESS_APP=trend HARNESS_SEED=123 HARNESS_PLAN=6500:kp:0:1 \
//!     cargo run -p orca_bench --bin campaign -- --replay
//! ```

pub mod cache;
pub mod inject;
pub mod oracle;
pub mod plan;
pub mod pool;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use cache::{BaselineCache, BaselineKey, CacheStats, DEFAULT_BASELINE_CAPACITY};
pub use inject::{FaultInjector, Janitor};
pub use oracle::{
    default_oracles, BaselineSummary, ControlPlaneOracle, ConvergenceOracle, NotificationOracle,
    Oracle, OracleCtx, RecoveryOracle, StatePreservationOracle, Violation,
};
pub use plan::{FaultAction, FaultEvent, FaultPlan, PlanSpec};
pub use pool::indexed_pool;
pub use runner::{
    compute_baseline, evaluate, plan_seeds, quiescent, render_artifacts, render_artifacts_to,
    reproducer_line, run_campaign, run_campaign_cached, run_plan, settled_world, BaselineSource,
    CampaignConfig, CampaignFailure, CampaignReport, PlanOutcome,
};
pub use scenario::{by_name, Built, Scenario, WorldPolicy};
pub use shrink::shrink;
pub use sps_runtime::{CheckpointPolicy, ControlStats, MetastoreKind, StorageModel, UbStats};
