//! Property tests for the [`FaultPlan`] reproducer encoding: every
//! [`FaultAction`] variant — data-plane (`kp`/`kh`/`rh`) and control-plane
//! (`co`/`rs`/`ps`) — survives `encode` → `decode` exactly, for arbitrary
//! event mixes. The encoding is the wire format of every campaign
//! reproducer line, so a round-trip gap here silently breaks `--replay`.

use orca_harness::{FaultAction, FaultEvent, FaultPlan};
use proptest::prelude::*;
use sps_sim::SimTime;

fn arb_action() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        (any::<u8>(), any::<u8>())
            .prop_map(|(job_slot, pe_slot)| FaultAction::KillPe { job_slot, pe_slot }),
        any::<u8>().prop_map(|host_slot| FaultAction::KillHost { host_slot }),
        any::<u8>().prop_map(|host_slot| FaultAction::ReviveHost { host_slot }),
        Just(FaultAction::CrashOrchestrator),
        Just(FaultAction::RestartSam),
        (0u32..600_000).prop_map(|duration_ms| FaultAction::PartitionSamHc { duration_ms }),
    ]
}

/// Time-sorted plans (decode canonicalizes to sorted order, so sorted input
/// is the fixed point the round-trip must hit exactly).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((0u64..120_000, arb_action()), 0..12).prop_map(|raw| {
        let mut events: Vec<FaultEvent> = raw
            .into_iter()
            .map(|(ms, action)| FaultEvent {
                at: SimTime::from_millis(ms),
                action,
            })
            .collect();
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    })
}

proptest! {
    #[test]
    fn encode_decode_round_trips_every_action_mix(plan in arb_plan()) {
        let encoded = plan.encode();
        let decoded = FaultPlan::decode(&encoded)
            .unwrap_or_else(|e| panic!("decode(encode(plan)) failed: {e} for `{encoded}`"));
        prop_assert_eq!(&decoded, &plan, "round trip diverged for `{}`", encoded);
        // Encoding is canonical: a second round trip is a fixed point.
        prop_assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn horizon_is_invariant_under_round_trip(plan in arb_plan()) {
        let decoded = FaultPlan::decode(&plan.encode()).unwrap();
        prop_assert_eq!(decoded.horizon(), plan.horizon());
    }

    #[test]
    fn single_event_round_trips_for_every_variant(
        ms in 0u64..600_000,
        action in arb_action(),
    ) {
        let plan = FaultPlan {
            events: vec![FaultEvent { at: SimTime::from_millis(ms), action }],
        };
        prop_assert_eq!(FaultPlan::decode(&plan.encode()).unwrap(), plan);
    }
}

/// The empty plan's `-` spelling survives both directions.
#[test]
fn empty_plan_round_trips_through_dash() {
    let empty = FaultPlan::default();
    assert_eq!(empty.encode(), "-");
    assert_eq!(FaultPlan::decode("-").unwrap(), empty);
    assert_eq!(FaultPlan::decode("").unwrap(), empty);
}
