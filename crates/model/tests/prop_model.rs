//! Property tests: value/XML/ADL serialization round-trips and graph-store
//! containment invariants over randomly generated structures.

use proptest::prelude::*;
use sps_model::adl::{Adl, AdlExport, AdlImport, AdlOperator, AdlPe, AdlStream};
use sps_model::logical::{ExportSpec, HostPool, ImportSpec};
use sps_model::value::ParamMap;
use sps_model::xml::{self, XmlNode};
use sps_model::{GraphStore, Value};

// ---------------------------------------------------------------------------
// Value round-trips
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based roundtrip checks.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        // Strings without the list separator control character.
        "[a-zA-Z0-9 _.:<>&\"'/-]{0,20}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::Timestamp),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

proptest! {
    #[test]
    fn value_render_parse_roundtrip(v in arb_value()) {
        let rendered = v.render();
        let parsed = Value::parse(&rendered);
        prop_assert_eq!(parsed, Some(v));
    }

    #[test]
    fn value_parse_never_panics(s in ".{0,40}") {
        let _ = Value::parse(&s);
    }
}

// ---------------------------------------------------------------------------
// XML round-trips
// ---------------------------------------------------------------------------

fn arb_xml() -> impl Strategy<Value = XmlNode> {
    let name = "[a-zA-Z][a-zA-Z0-9_.-]{0,8}";
    let attr_val = "[^\\x00-\\x08\\x0b-\\x1f]{0,16}"; // printable-ish incl. specials
    let leaf = (name, prop::collection::vec((name, attr_val), 0..3)).prop_map(|(n, attrs)| {
        let mut node = XmlNode::new(&n);
        // Deduplicate attribute keys (XML requires uniqueness; our
        // writer does not enforce it, so generate unique keys).
        let mut seen = std::collections::BTreeSet::new();
        for (k, v) in attrs {
            if seen.insert(k.clone()) {
                node = node.attr(&k, v);
            }
        }
        node
    });
    leaf.prop_recursive(3, 20, 3, |inner| {
        (
            "[a-zA-Z][a-zA-Z0-9]{0,6}",
            prop::collection::vec(inner, 0..3),
            "[a-zA-Z0-9 <>&'\"]{0,12}",
        )
            .prop_map(|(n, children, text)| {
                let mut node = XmlNode::new(&n).with_text(text.trim());
                for c in children {
                    node = node.child(c);
                }
                node
            })
    })
}

proptest! {
    #[test]
    fn xml_write_parse_roundtrip(node in arb_xml()) {
        let rendered = node.to_string_pretty();
        let parsed = xml::parse(&rendered).unwrap();
        prop_assert_eq!(parsed, node);
    }

    #[test]
    fn xml_parse_never_panics(s in ".{0,80}") {
        let _ = xml::parse(&s);
    }
}

// ---------------------------------------------------------------------------
// ADL round-trips + graph-store invariants
// ---------------------------------------------------------------------------

/// Random flat ADL: operators spread over PEs, nested composite paths,
/// random streams between compatible ports.
fn arb_adl() -> impl Strategy<Value = Adl> {
    (2usize..20, 1usize..5, 0usize..3).prop_flat_map(|(n_ops, n_pes, depth)| {
        let ops = prop::collection::vec(0..n_pes, n_ops);
        let comp_levels = prop::collection::vec(0usize..=depth, n_ops);
        (Just(n_pes), ops, comp_levels).prop_map(|(n_pes, pe_of, comp_levels)| {
            let mut operators = Vec::new();
            for (i, (&pe, &level)) in pe_of.iter().zip(&comp_levels).enumerate() {
                // Composite path: comp0 > comp0.c1 > comp0.c1.c2 ...
                let mut path = Vec::new();
                let mut prefix = String::new();
                for l in 0..level {
                    let inst = if prefix.is_empty() {
                        format!("comp{l}")
                    } else {
                        format!("{prefix}.c{l}")
                    };
                    path.push((inst.clone(), format!("type{l}")));
                    prefix = inst;
                }
                let name = if prefix.is_empty() {
                    format!("op{i}")
                } else {
                    format!("{prefix}.op{i}")
                };
                operators.push(AdlOperator {
                    name,
                    kind: ["Work", "Split", "Merge"][i % 3].to_string(),
                    composite_path: path,
                    params: ParamMap::new(),
                    inputs: 1,
                    outputs: 1,
                    custom_metrics: if i % 2 == 0 { vec!["m".into()] } else { vec![] },
                    pe,
                    restartable: i % 4 != 0,
                    checkpointable: i % 4 != 0,
                });
            }
            let pes = (0..n_pes)
                .map(|i| AdlPe {
                    index: i,
                    operators: operators
                        .iter()
                        .filter(|o| o.pe == i)
                        .map(|o| o.name.clone())
                        .collect(),
                    host_pool: if i == 0 { Some("p".to_string()) } else { None },
                    host_exlocate: None,
                })
                .collect();
            let streams: Vec<AdlStream> = operators
                .windows(2)
                .map(|w| AdlStream {
                    from_op: w[0].name.clone(),
                    from_port: 0,
                    to_op: w[1].name.clone(),
                    to_port: 0,
                })
                .collect();
            let imports = vec![AdlImport {
                op: operators[0].name.clone(),
                spec: ImportSpec::by_id("feed"),
            }];
            let exports = vec![AdlExport {
                op: operators[operators.len() - 1].name.clone(),
                port: 0,
                spec: ExportSpec::by_id("out").with_property("k", Value::Int(1)),
            }];
            Adl {
                app_name: "Rand".into(),
                operators,
                pes,
                streams,
                imports,
                exports,
                host_pools: vec![HostPool::explicit("p", &["h1"])],
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adl_xml_roundtrip(adl in arb_adl()) {
        prop_assert!(adl.validate().is_ok());
        let restored = Adl::from_xml_str(&adl.to_xml_string()).unwrap();
        prop_assert_eq!(restored, adl);
    }

    #[test]
    fn graph_store_partitions_operators_exactly_once(adl in arb_adl()) {
        let g = GraphStore::from_adl(&adl);
        // Every operator appears in exactly one PE listing.
        let total: usize = (0..g.num_pes()).map(|pe| g.operators_in_pe(pe).len()).sum();
        prop_assert_eq!(total, g.num_operators());
        for op in g.operators() {
            let pe = g.pe_of_operator(&op.name).unwrap();
            prop_assert!(g.operators_in_pe(pe).iter().any(|o| o.name == op.name));
        }
    }

    #[test]
    fn containment_is_consistent_with_chains(adl in arb_adl()) {
        let g = GraphStore::from_adl(&adl);
        for op in g.operators() {
            let chain = g.composite_chain(&op.name);
            // op_in_composite_instance agrees with the chain for every level.
            for c in &chain {
                prop_assert!(g.op_in_composite_instance(&op.name, &c.path));
                prop_assert!(g.op_in_composite_type(&op.name, &c.type_name));
            }
            // The enclosing composite is the last chain element.
            match (g.enclosing_composite(&op.name), chain.last()) {
                (Some(e), Some(l)) => prop_assert_eq!(&e.path, &l.path),
                (None, None) => {}
                other => prop_assert!(false, "mismatch: {other:?}"),
            }
            // Negative: an instance not in the chain never contains the op.
            prop_assert!(!g.op_in_composite_instance(&op.name, "no-such-instance"));
        }
    }

    #[test]
    fn composites_in_pe_matches_member_chains(adl in arb_adl()) {
        let g = GraphStore::from_adl(&adl);
        for pe in 0..g.num_pes() {
            let listed: std::collections::BTreeSet<String> = g
                .composites_in_pe(pe)
                .iter()
                .map(|c| c.path.clone())
                .collect();
            let mut expected = std::collections::BTreeSet::new();
            for op in g.operators_in_pe(pe) {
                for c in g.composite_chain(&op.name) {
                    expected.insert(c.path.clone());
                }
            }
            prop_assert_eq!(listed, expected);
        }
    }
}
