//! Property tests for the compiler: over randomly generated (valid) logical
//! models, compilation must succeed and its output must satisfy the
//! partitioning invariants the runtime and orchestrator rely on.

use proptest::prelude::*;
use sps_model::compiler::{compile, CompileOptions, FusionPolicy};
use sps_model::logical::{AppModelBuilder, CompositeGraphBuilder, OperatorInvocation};
use sps_model::GraphStore;

/// Specification of a random but well-formed application:
/// a chain of operator groups; each group is either a plain operator or an
/// instance of one of up to three composite types (each a small chain);
/// random colocation tags drawn from a small pool.
#[derive(Debug, Clone)]
struct ModelSpec {
    /// Per main-graph node: None = plain operator, Some(t) = composite type t.
    nodes: Vec<Option<usize>>,
    /// Colocation tag index per node (plain operators only), from a pool of 3.
    colocate: Vec<Option<usize>>,
    /// Ops per composite body (1..4), per composite type.
    comp_sizes: [usize; 3],
    fusion_target: usize,
}

fn arb_spec() -> impl Strategy<Value = ModelSpec> {
    (
        prop::collection::vec(
            (prop::option::of(0usize..3), prop::option::of(0usize..3)),
            1..12,
        ),
        prop::array::uniform3(1usize..4),
        1usize..6,
    )
        .prop_map(|(node_specs, comp_sizes, fusion_target)| {
            let (nodes, colocate) = node_specs.into_iter().unzip();
            ModelSpec {
                nodes,
                colocate,
                comp_sizes,
                fusion_target,
            }
        })
}

fn build(spec: &ModelSpec) -> sps_model::AppModel {
    let mut builder = AppModelBuilder::new("Rand");
    for (t, size) in spec.comp_sizes.iter().enumerate() {
        let mut c = CompositeGraphBuilder::new(&format!("ct{t}"), 1, 1);
        for i in 0..*size {
            c.operator(&format!("w{i}"), OperatorInvocation::new("Work"));
            if i > 0 {
                c.pipe(&format!("w{}", i - 1), &format!("w{i}"));
            }
        }
        c.bind_input(0, "w0", 0);
        c.bind_output(&format!("w{}", size - 1), 0);
        builder.add_composite(c.build().unwrap()).unwrap();
    }

    let mut m = CompositeGraphBuilder::main();
    m.operator(
        "src",
        OperatorInvocation::new("Beacon")
            .source()
            .param("rate", 10.0),
    );
    let mut prev = "src".to_string();
    for (i, node) in spec.nodes.iter().enumerate() {
        let name = format!("n{i}");
        match node {
            Some(t) => {
                m.composite(&name, &format!("ct{t}"));
            }
            None => {
                let mut inv = OperatorInvocation::new("Functor");
                if let Some(tag) = spec.colocate[i] {
                    inv = inv.colocate(&format!("grp{tag}"));
                }
                m.operator(&name, inv);
            }
        }
        m.pipe(&prev, &name);
        prev = name;
    }
    m.operator("snk", OperatorInvocation::new("Sink").sink());
    m.pipe(&prev, "snk");
    builder.build(m.build().unwrap()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compilation_succeeds_and_validates(spec in arb_spec()) {
        let model = build(&spec);
        for fusion in [
            FusionPolicy::Colocation,
            FusionPolicy::FuseAll,
            FusionPolicy::Target(spec.fusion_target),
        ] {
            let adl = compile(&model, CompileOptions { fusion }).unwrap();
            // The compiler's own postcondition plus structural validation.
            prop_assert!(adl.validate().is_ok());
            // Expected operator count: 1 src + nodes (expanded) + 1 sink.
            let expanded: usize = spec
                .nodes
                .iter()
                .map(|n| n.map_or(1, |t| spec.comp_sizes[t]))
                .sum();
            prop_assert_eq!(adl.operators.len(), expanded + 2);
            // Every operator is in exactly one PE listing.
            let listed: usize = adl.pes.iter().map(|pe| pe.operators.len()).sum();
            prop_assert_eq!(listed, adl.operators.len());
        }
    }

    #[test]
    fn colocation_tags_share_pes(spec in arb_spec()) {
        let model = build(&spec);
        let adl = compile(&model, CompileOptions::default()).unwrap();
        // All plain operators with the same tag landed in one PE.
        for tag in 0..3 {
            let members: Vec<usize> = spec
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, n)| n.is_none() && spec.colocate[*i] == Some(tag))
                .map(|(i, _)| adl.pe_of(&format!("n{i}")).unwrap())
                .collect();
            for w in members.windows(2) {
                prop_assert_eq!(w[0], w[1], "tag grp{} split across PEs", tag);
            }
        }
    }

    #[test]
    fn fuse_all_yields_single_pe_and_target_bounds(spec in arb_spec()) {
        let model = build(&spec);
        let all = compile(
            &model,
            CompileOptions { fusion: FusionPolicy::FuseAll },
        )
        .unwrap();
        prop_assert_eq!(all.pes.len(), 1);

        let target = compile(
            &model,
            CompileOptions { fusion: FusionPolicy::Target(spec.fusion_target) },
        )
        .unwrap();
        // The chain is fully connected, so greedy merging always reaches the
        // target (no exlocation/pool constraints in these models).
        prop_assert!(target.pes.len() <= spec.fusion_target.max(1));
    }

    #[test]
    fn xml_roundtrip_after_compile(spec in arb_spec()) {
        let model = build(&spec);
        let adl = compile(&model, CompileOptions::default()).unwrap();
        let restored = sps_model::Adl::from_xml_str(&adl.to_xml_string()).unwrap();
        prop_assert_eq!(restored, adl);
    }

    #[test]
    fn graph_store_agrees_with_adl(spec in arb_spec()) {
        let model = build(&spec);
        let adl = compile(
            &model,
            CompileOptions { fusion: FusionPolicy::Target(spec.fusion_target) },
        )
        .unwrap();
        let g = GraphStore::from_adl(&adl);
        prop_assert_eq!(g.num_operators(), adl.operators.len());
        prop_assert_eq!(g.num_pes(), adl.pes.len());
        // Composite membership: ops named with a composite prefix are
        // recursively contained in that composite's type.
        for op in &adl.operators {
            if let Some((inst, _)) = op.composite_path.first() {
                let ty = &op.composite_path.first().unwrap().1;
                prop_assert!(g.op_in_composite_type(&op.name, ty));
                prop_assert!(g.op_in_composite_instance(&op.name, inst));
            }
        }
        // The stream chain is intact: src reaches snk through downstream
        // adjacency (graph is a single path through expanded composites).
        let mut current = "src".to_string();
        let mut hops = 0;
        while current != "snk" {
            let next = g.downstream_of(&current);
            prop_assert_eq!(next.len(), 1, "chain must not fork at {}", current);
            current = next[0].0.name.clone();
            hops += 1;
            prop_assert!(hops <= adl.operators.len(), "cycle detected");
        }
    }
}
