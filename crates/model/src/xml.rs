//! Minimal XML document model, writer, and parser.
//!
//! The paper's ADL is an XML description of a compiled application (§2.1).
//! No XML crate is in the sanctioned dependency set, so this module
//! implements the small subset the ADL needs: elements, attributes, text
//! content, and the five standard character escapes. No namespaces,
//! comments, CDATA, processing instructions, or doctypes.

use crate::error::ModelError;

/// An XML element tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
    pub text: String,
}

impl XmlNode {
    pub fn new(name: &str) -> Self {
        XmlNode {
            name: name.to_string(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn attr(mut self, key: &str, value: impl Into<String>) -> Self {
        self.attrs.push((key.to_string(), value.into()));
        self
    }

    /// Builder-style child addition.
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// Builder-style text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// First attribute with the given key.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute lookup that produces a parse error when missing — the
    /// common case when decoding ADL.
    pub fn require_attr(&self, key: &str) -> Result<&str, ModelError> {
        self.get_attr(key).ok_or_else(|| {
            ModelError::Parse(format!("element <{}> missing attribute '{key}'", self.name))
        })
    }

    /// All children with the given element name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// First child with the given element name.
    pub fn first_child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// First child or a parse error.
    pub fn require_child(&self, name: &str) -> Result<&XmlNode, ModelError> {
        self.first_child(name).ok_or_else(|| {
            ModelError::Parse(format!("element <{}> missing child <{name}>", self.name))
        })
    }

    /// Serializes the tree with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            escape_into(&self.text, out);
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_into(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// Parses a single-root XML document produced by [`XmlNode::to_string_pretty`]
/// (or hand-written in the same subset).
pub fn parse(input: &str) -> Result<XmlNode, ModelError> {
    let mut p = Parser {
        chars: input.char_indices().peekable(),
        input,
    };
    p.skip_ws();
    let root = p.parse_element()?;
    p.skip_ws();
    if p.chars.peek().is_some() {
        return Err(ModelError::Parse(
            "trailing content after root element".into(),
        ));
    }
    Ok(root)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some((_, c)) = self.chars.peek() {
            if c.is_whitespace() {
                self.chars.next();
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, expected: char) -> Result<(), ModelError> {
        match self.chars.next() {
            Some((_, c)) if c == expected => Ok(()),
            Some((i, c)) => Err(ModelError::Parse(format!(
                "expected '{expected}' at byte {i}, found '{c}'"
            ))),
            None => Err(ModelError::Parse(format!(
                "expected '{expected}', found end of input"
            ))),
        }
    }

    fn parse_name(&mut self) -> Result<String, ModelError> {
        let mut name = String::new();
        while let Some((_, c)) = self.chars.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                name.push(*c);
                self.chars.next();
            } else {
                break;
            }
        }
        if name.is_empty() {
            Err(ModelError::Parse("expected a name".into()))
        } else {
            Ok(name)
        }
    }

    fn parse_element(&mut self) -> Result<XmlNode, ModelError> {
        self.expect('<')?;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(&name);
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some((_, '/')) => {
                    self.chars.next();
                    self.expect('>')?;
                    return Ok(node);
                }
                Some((_, '>')) => {
                    self.chars.next();
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect('=')?;
                    self.skip_ws();
                    self.expect('"')?;
                    let value = self.parse_until_quote()?;
                    node.attrs.push((key, value));
                }
                None => return Err(ModelError::Parse("unexpected end in element tag".into())),
            }
        }
        // Content: interleaved text and child elements until `</name>`.
        loop {
            let text = self.parse_text()?;
            if !text.trim().is_empty() {
                node.text.push_str(text.trim());
            }
            // Now at '<'.
            let mut lookahead = self.chars.clone();
            lookahead.next(); // consume '<'
            match lookahead.peek() {
                Some((_, '/')) => {
                    self.expect('<')?;
                    self.expect('/')?;
                    let close = self.parse_name()?;
                    if close != node.name {
                        return Err(ModelError::Parse(format!(
                            "mismatched close tag: <{}> closed by </{close}>",
                            node.name
                        )));
                    }
                    self.skip_ws();
                    self.expect('>')?;
                    return Ok(node);
                }
                Some(_) => {
                    let child = self.parse_element()?;
                    node.children.push(child);
                }
                None => {
                    return Err(ModelError::Parse(format!(
                        "unterminated element <{}>",
                        node.name
                    )))
                }
            }
        }
    }

    /// Consumes and unescapes text up to (not including) the next '<'.
    fn parse_text(&mut self) -> Result<String, ModelError> {
        let mut out = String::new();
        loop {
            match self.chars.peek() {
                Some((_, '<')) => return Ok(out),
                Some((i, '&')) => {
                    let start = *i;
                    self.chars.next();
                    out.push(self.parse_entity(start)?);
                }
                Some((_, c)) => {
                    out.push(*c);
                    self.chars.next();
                }
                None => return Err(ModelError::Parse("unexpected end of input in text".into())),
            }
        }
    }

    fn parse_until_quote(&mut self) -> Result<String, ModelError> {
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((i, '&')) => out.push(self.parse_entity(i)?),
                Some((_, c)) => out.push(c),
                None => return Err(ModelError::Parse("unterminated attribute value".into())),
            }
        }
    }

    fn parse_entity(&mut self, start: usize) -> Result<char, ModelError> {
        let mut name = String::new();
        loop {
            match self.chars.next() {
                Some((_, ';')) => break,
                Some((_, c)) if name.len() < 6 => name.push(c),
                _ => {
                    let snippet: String = self.input[start..].chars().take(10).collect();
                    return Err(ModelError::Parse(format!("bad entity near '{snippet}'")));
                }
            }
        }
        match name.as_str() {
            "amp" => Ok('&'),
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            other => Err(ModelError::Parse(format!("unknown entity &{other};"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let n = XmlNode::new("pe")
            .attr("id", "3")
            .child(XmlNode::new("operator").attr("name", "op1"))
            .child(XmlNode::new("operator").attr("name", "op2"));
        assert_eq!(n.get_attr("id"), Some("3"));
        assert_eq!(n.get_attr("missing"), None);
        assert_eq!(n.children_named("operator").count(), 2);
        assert!(n.first_child("operator").is_some());
        assert!(n.first_child("stream").is_none());
        assert!(n.require_attr("missing").is_err());
        assert!(n.require_child("stream").is_err());
        assert_eq!(n.require_attr("id").unwrap(), "3");
    }

    #[test]
    fn roundtrip_simple() {
        let doc = XmlNode::new("adl")
            .attr("app", "Figure2")
            .child(
                XmlNode::new("operator")
                    .attr("name", "comp'1.op3")
                    .attr("kind", "Split"),
            )
            .child(XmlNode::new("note").with_text("hello world"));
        let s = doc.to_string_pretty();
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn roundtrip_escapes() {
        let doc = XmlNode::new("e")
            .attr("v", "a<b&c>\"d'")
            .with_text("x & y < z");
        let s = doc.to_string_pretty();
        assert!(s.contains("&lt;"));
        assert!(s.contains("&amp;"));
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed.get_attr("v"), Some("a<b&c>\"d'"));
        assert_eq!(parsed.text, "x & y < z");
    }

    #[test]
    fn self_closing_elements() {
        let parsed = parse("<a><b/><c x=\"1\"/></a>").unwrap();
        assert_eq!(parsed.children.len(), 2);
        assert_eq!(parsed.children[1].get_attr("x"), Some("1"));
    }

    #[test]
    fn whitespace_tolerance() {
        let parsed = parse("  <a  x = \"1\" >\n  <b/>\n</a>  ").unwrap();
        assert_eq!(parsed.name, "a");
        assert_eq!(parsed.get_attr("x"), Some("1"));
        assert_eq!(parsed.children.len(), 1);
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a></b>").unwrap_err();
        assert!(matches!(err, ModelError::Parse(m) if m.contains("mismatched")));
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a attr=\"x").is_err());
        assert!(parse("<").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn deep_nesting_roundtrip() {
        let mut node = XmlNode::new("leaf").attr("depth", "0");
        for d in 1..50 {
            node = XmlNode::new("level")
                .attr("depth", d.to_string())
                .child(node);
        }
        let s = node.to_string_pretty();
        assert_eq!(parse(&s).unwrap(), node);
    }
}
