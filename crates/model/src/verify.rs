//! Static ADL/graph verifier: structural checks on compiled applications.
//!
//! [`Adl::validate`] enforces *internal consistency* (indices in range,
//! names resolve); this module enforces the stronger *deployment-level*
//! invariants the fault-injection methodology rests on. A campaign verdict
//! is only trustworthy when the application graph itself is sound: a
//! dangling input port means an operator that silently never fires, an
//! unreachable operator means dead weight the oracles cannot observe, a
//! cycle breaks the acyclic delivery order the engine assumes, and a
//! checkpointable/stateful mismatch undermines every state-preservation
//! claim. `sslint --adl` runs these checks over the built-in applications at
//! CI time; generated topologies must route through [`verify_graph`] before
//! submission.
//!
//! Diagnostics are machine-readable ([`VerifyDiagnostic::render`]) so the
//! analyzer binary can grep-filter and gate on them.

use crate::adl::{Adl, AdlOperator};
use std::collections::BTreeSet;

/// Check identifiers, stable across releases (grep targets).
pub mod checks {
    /// Stream references a port outside the operator's declared arity.
    pub const BAD_PORT: &str = "bad-port";
    /// Input port receives no stream and no import subscription.
    pub const DANGLING_INPUT: &str = "dangling-input";
    /// Output port feeds no stream and is not exported.
    pub const DANGLING_OUTPUT: &str = "dangling-output";
    /// Operator unreachable from any source or import.
    pub const UNREACHABLE: &str = "unreachable";
    /// Stream graph contains a cycle.
    pub const CYCLE: &str = "cycle";
    /// Every operator is declared checkpointable yet none carries state.
    pub const CKPT_STATELESS: &str = "ckpt-stateless";
    /// Stateful operator declared `not_checkpointable()` (state is lost on
    /// restart — legal, but each deployment must mean it).
    pub const CKPT_STATEFUL_OPTOUT: &str = "ckpt-stateful-optout";
    /// Checkpointable stateful operator fused with a non-checkpointable
    /// one: its declared-durable state will never actually be saved.
    pub const CKPT_SHADOWED: &str = "ckpt-shadowed";
    /// Upstream backup requires every remote stream's consumer PE to be
    /// checkpointable, else gap replay has no restored state to land in.
    pub const UB_CONSUMER: &str = "ub-consumer";
}

/// Severity of a [`VerifyDiagnostic`].
///
/// Errors make a graph unfit for campaign claims; warnings flag legal but
/// deliberate-looking choices (e.g. a stateful operator opting out of
/// checkpointing, which is exactly what `not_checkpointable()` is for — but
/// each use should be intentional, so the verifier surfaces it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One verifier finding.
#[derive(Clone, Debug)]
pub struct VerifyDiagnostic {
    pub severity: Severity,
    pub check: &'static str,
    /// The operator / stream / PE the finding is about.
    pub subject: String,
    pub message: String,
}

impl VerifyDiagnostic {
    /// Stable machine-readable line: `<severity> <check> subject=<s>: <msg>`.
    pub fn render(&self, app: &str) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        format!(
            "{sev} {} app={app} subject={}: {}",
            self.check, self.subject, self.message
        )
    }
}

/// Options for [`verify_graph`].
#[derive(Default)]
pub struct VerifyOptions<'a> {
    /// Check the exactly-once precondition: with upstream backup enabled,
    /// every remote stream consumer must live in a checkpointable PE.
    pub upstream_backup: bool,
    /// Statefulness oracle: does this operator carry per-instance state?
    /// `None` (or an oracle returning `None`) skips the checkpoint-intent
    /// checks for that operator — e.g. ops whose parameters are templates
    /// resolved at submission time cannot be probed statically.
    #[allow(clippy::type_complexity)]
    pub statefulness: Option<&'a dyn Fn(&AdlOperator) -> Option<bool>>,
}

/// Runs every structural check over a compiled ADL, returning all findings
/// (errors first is *not* guaranteed; order follows the graph).
pub fn verify_graph(adl: &Adl, opts: &VerifyOptions) -> Vec<VerifyDiagnostic> {
    let mut out = Vec::new();
    let n = adl.operators.len();
    let index = |name: &str| adl.operators.iter().position(|o| o.name == name);

    // ---- port validity + adjacency ------------------------------------
    let mut incoming: Vec<Vec<BTreeSet<usize>>> = adl
        .operators
        .iter()
        .map(|o| vec![BTreeSet::new(); o.inputs])
        .collect();
    let mut outgoing: Vec<Vec<BTreeSet<usize>>> = adl
        .operators
        .iter()
        .map(|o| vec![BTreeSet::new(); o.outputs])
        .collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for s in &adl.streams {
        let subject = format!("{}:{}->{}:{}", s.from_op, s.from_port, s.to_op, s.to_port);
        let (from, to) = (index(&s.from_op), index(&s.to_op));
        let mut ok = true;
        match from {
            None => {
                ok = false;
                out.push(VerifyDiagnostic {
                    severity: Severity::Error,
                    check: checks::BAD_PORT,
                    subject: subject.clone(),
                    message: format!("stream source operator `{}` does not exist", s.from_op),
                });
            }
            Some(i) if s.from_port >= adl.operators[i].outputs => {
                ok = false;
                out.push(VerifyDiagnostic {
                    severity: Severity::Error,
                    check: checks::BAD_PORT,
                    subject: subject.clone(),
                    message: format!(
                        "output port {} out of range (operator has {} outputs)",
                        s.from_port, adl.operators[i].outputs
                    ),
                });
            }
            _ => {}
        }
        match to {
            None => {
                ok = false;
                out.push(VerifyDiagnostic {
                    severity: Severity::Error,
                    check: checks::BAD_PORT,
                    subject: subject.clone(),
                    message: format!("stream target operator `{}` does not exist", s.to_op),
                });
            }
            Some(i) if s.to_port >= adl.operators[i].inputs => {
                ok = false;
                out.push(VerifyDiagnostic {
                    severity: Severity::Error,
                    check: checks::BAD_PORT,
                    subject,
                    message: format!(
                        "input port {} out of range (operator has {} inputs)",
                        s.to_port, adl.operators[i].inputs
                    ),
                });
            }
            _ => {}
        }
        if ok {
            let (f, t) = (from.unwrap(), to.unwrap());
            incoming[t][s.to_port].insert(f);
            outgoing[f][s.from_port].insert(t);
            edges.push((f, t));
        }
    }

    // ---- dangling ports ----------------------------------------------
    let has_import: Vec<bool> = adl
        .operators
        .iter()
        .map(|o| adl.imports.iter().any(|i| i.op == o.name))
        .collect();
    for (i, op) in adl.operators.iter().enumerate() {
        for (p, feeds) in incoming[i].iter().enumerate() {
            if feeds.is_empty() && !has_import[i] {
                out.push(VerifyDiagnostic {
                    severity: Severity::Error,
                    check: checks::DANGLING_INPUT,
                    subject: format!("{}:{p}", op.name),
                    message: "input port receives no stream and no import; the operator can \
                              never fire on it"
                        .into(),
                });
            }
        }
        for (p, feeds) in outgoing[i].iter().enumerate() {
            let exported = adl.exports.iter().any(|e| e.op == op.name && e.port == p);
            if feeds.is_empty() && !exported {
                out.push(VerifyDiagnostic {
                    severity: Severity::Error,
                    check: checks::DANGLING_OUTPUT,
                    subject: format!("{}:{p}", op.name),
                    message: "output port feeds no stream and is not exported; its tuples \
                              vanish unobserved"
                        .into(),
                });
            }
        }
    }

    // ---- reachability -------------------------------------------------
    let mut reached = vec![false; n];
    let mut stack: Vec<usize> = (0..n)
        .filter(|&i| adl.operators[i].inputs == 0 || has_import[i])
        .collect();
    for &s in &stack {
        reached[s] = true;
    }
    while let Some(i) = stack.pop() {
        for ports in &outgoing[i] {
            for &j in ports {
                if !reached[j] {
                    reached[j] = true;
                    stack.push(j);
                }
            }
        }
    }
    for (i, op) in adl.operators.iter().enumerate() {
        if !reached[i] {
            out.push(VerifyDiagnostic {
                severity: Severity::Error,
                check: checks::UNREACHABLE,
                subject: op.name.clone(),
                message: "operator is unreachable from every source and import; no tuple can \
                          ever arrive"
                    .into(),
            });
        }
    }

    // ---- cycles (iterative DFS with colors) ---------------------------
    if let Some(cycle) = find_cycle(n, &edges) {
        let names: Vec<&str> = cycle
            .iter()
            .map(|&i| adl.operators[i].name.as_str())
            .collect();
        out.push(VerifyDiagnostic {
            severity: Severity::Error,
            check: checks::CYCLE,
            subject: names.join("->"),
            message: "stream graph contains a cycle; the engine assumes acyclic delivery \
                      (feedback requires explicit loop-breaking operators)"
                .into(),
        });
    }

    // ---- checkpoint-intent checks -------------------------------------
    if let Some(oracle) = opts.statefulness {
        let stateful: Vec<Option<bool>> = adl.operators.iter().map(oracle).collect();

        // Stateful operator that opted out: legal but deliberate.
        for (i, op) in adl.operators.iter().enumerate() {
            if stateful[i] == Some(true) && !op.checkpointable {
                out.push(VerifyDiagnostic {
                    severity: Severity::Warning,
                    check: checks::CKPT_STATEFUL_OPTOUT,
                    subject: op.name.clone(),
                    message: "stateful operator is declared not_checkpointable(); its state is \
                              lost on every restart — confirm this is intended"
                        .into(),
                });
            }
        }

        // Checkpointable stateful operator fused with an opted-out one: the
        // runtime checkpoints a PE only when *every* fused operator opted
        // in, so this operator's declared-durable state is silently never
        // saved.
        for pe in &adl.pes {
            let idxs: Vec<usize> = pe.operators.iter().filter_map(|n| index(n)).collect();
            let pe_ckpt = idxs.iter().all(|&i| adl.operators[i].checkpointable);
            if pe_ckpt {
                continue;
            }
            for &i in &idxs {
                if adl.operators[i].checkpointable && stateful[i] == Some(true) {
                    out.push(VerifyDiagnostic {
                        severity: Severity::Error,
                        check: checks::CKPT_SHADOWED,
                        subject: adl.operators[i].name.clone(),
                        message: format!(
                            "declared checkpointable, but PE {} contains a non-checkpointable \
                             operator, so this state is never saved; un-fuse it or opt the \
                             whole PE out explicitly",
                            pe.index
                        ),
                    });
                }
            }
        }

        // A fully-checkpointable application with no state at all: the
        // declaration is vacuous, and every checkpoint quantum is pure
        // overhead. (Individual stateless operators legitimately default to
        // checkpointable — they contribute empty state to a fused PE — so
        // this check only fires when *nothing* in the app can be preserved.)
        let all_ckpt = adl.operators.iter().all(|o| o.checkpointable);
        let any_stateful = stateful.contains(&Some(true));
        let any_unknown = stateful.iter().any(|s| s.is_none());
        if all_ckpt && !any_stateful && !any_unknown && !adl.operators.is_empty() {
            out.push(VerifyDiagnostic {
                severity: Severity::Error,
                check: checks::CKPT_STATELESS,
                subject: adl.app_name.clone(),
                message: "every operator is declared checkpointable but none carries state; \
                          checkpointing this application preserves nothing"
                    .into(),
            });
        }

        // Exactly-once precondition: upstream backup replays the
        // post-checkpoint gap into *restored* consumers; a consumer PE that
        // is never checkpointed always restarts fresh and the replayed gap
        // has no snapshot to extend.
        if opts.upstream_backup {
            for s in &adl.streams {
                let (Some(f), Some(t)) = (index(&s.from_op), index(&s.to_op)) else {
                    continue;
                };
                let (fp, tp) = (adl.operators[f].pe, adl.operators[t].pe);
                if fp == tp {
                    continue;
                }
                let consumer_pe_ckpt = adl.pes[tp]
                    .operators
                    .iter()
                    .filter_map(|n| index(n))
                    .all(|i| adl.operators[i].checkpointable);
                if !consumer_pe_ckpt {
                    out.push(VerifyDiagnostic {
                        severity: Severity::Error,
                        check: checks::UB_CONSUMER,
                        subject: format!("{}->{}", s.from_op, s.to_op),
                        message: format!(
                            "upstream backup requires a checkpointable consumer, but PE {tp} \
                             (operator `{}`) is not checkpointable; gap replay would land in \
                             fresh state",
                            s.to_op
                        ),
                    });
                }
            }
        }
    }

    out
}

/// Convenience: true iff [`verify_graph`] produced no error-severity
/// diagnostics.
pub fn graph_is_sound(adl: &Adl, opts: &VerifyOptions) -> bool {
    verify_graph(adl, opts)
        .iter()
        .all(|d| d.severity != Severity::Error)
}

/// Finds one cycle in the directed graph, as the list of node indices along
/// it, using iterative three-color DFS.
fn find_cycle(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(f, t) in edges {
        adj[f].push(t);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = Color::Grey;
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < adj[u].len() {
                let v = adj[u][*ci];
                *ci += 1;
                match color[v] {
                    Color::White => {
                        color[v] = Color::Grey;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    Color::Grey => {
                        // Found a back edge u -> v: reconstruct v … u.
                        let mut cycle = vec![u];
                        let mut w = u;
                        while w != v {
                            w = parent[w];
                            cycle.push(w);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[u] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adl::{AdlExport, AdlImport, AdlOperator, AdlPe, AdlStream};
    use crate::logical::{ExportSpec, HostPool, ImportSpec};
    use crate::value::ParamMap;

    fn op(name: &str, inputs: usize, outputs: usize, pe: usize) -> AdlOperator {
        AdlOperator {
            name: name.into(),
            kind: "Work".into(),
            composite_path: vec![],
            params: ParamMap::new(),
            inputs,
            outputs,
            custom_metrics: vec![],
            pe,
            restartable: true,
            checkpointable: true,
        }
    }

    fn stream(from: &str, fp: usize, to: &str, tp: usize) -> AdlStream {
        AdlStream {
            from_op: from.into(),
            from_port: fp,
            to_op: to.into(),
            to_port: tp,
        }
    }

    /// src -> mid -> snk across three PEs; structurally clean.
    fn clean_adl() -> Adl {
        let operators = vec![op("src", 0, 1, 0), op("mid", 1, 1, 1), op("snk", 1, 0, 2)];
        let pes = (0..3)
            .map(|i| AdlPe {
                index: i,
                operators: operators
                    .iter()
                    .filter(|o| o.pe == i)
                    .map(|o| o.name.clone())
                    .collect(),
                host_pool: None,
                host_exlocate: None,
            })
            .collect();
        Adl {
            app_name: "Clean".into(),
            operators,
            pes,
            streams: vec![stream("src", 0, "mid", 0), stream("mid", 0, "snk", 0)],
            imports: vec![],
            exports: vec![],
            host_pools: vec![HostPool::explicit("p", &["h1"])],
        }
    }

    /// Stateful kinds for tests: everything but kind "Work".
    fn oracle(o: &AdlOperator) -> Option<bool> {
        match o.kind.as_str() {
            "Work" => Some(false),
            "Opaque" => None,
            _ => Some(true),
        }
    }

    fn checks_of(diags: &[VerifyDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.check).collect()
    }

    #[test]
    fn clean_graph_is_clean() {
        let opts = VerifyOptions {
            upstream_backup: true,
            statefulness: Some(&|o| match o.name.as_str() {
                "src" | "snk" => Some(true),
                _ => Some(false),
            }),
        };
        let diags = verify_graph(&clean_adl(), &opts);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(graph_is_sound(&clean_adl(), &opts));
    }

    #[test]
    fn dangling_input_detected() {
        let mut adl = clean_adl();
        adl.streams.remove(0); // src -> mid gone; mid:0 starves
        let diags = verify_graph(&adl, &VerifyOptions::default());
        assert!(
            checks_of(&diags).contains(&checks::DANGLING_INPUT),
            "{diags:?}"
        );
        // src's output also dangles now, and mid/snk are unreachable.
        assert!(checks_of(&diags).contains(&checks::DANGLING_OUTPUT));
        assert!(checks_of(&diags).contains(&checks::UNREACHABLE));
        let d = diags
            .iter()
            .find(|d| d.check == checks::DANGLING_INPUT)
            .unwrap();
        assert_eq!(d.subject, "mid:0");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn exported_output_is_not_dangling() {
        let mut adl = clean_adl();
        adl.streams.pop(); // mid -> snk gone
        adl.operators.retain(|o| o.name != "snk");
        adl.pes[2].operators.clear();
        adl.exports.push(AdlExport {
            op: "mid".into(),
            port: 0,
            spec: ExportSpec::by_id("feed"),
        });
        let diags = verify_graph(&adl, &VerifyOptions::default());
        assert!(
            !checks_of(&diags).contains(&checks::DANGLING_OUTPUT),
            "{diags:?}"
        );
    }

    #[test]
    fn imported_input_is_not_dangling_and_reaches() {
        let mut adl = clean_adl();
        adl.streams.remove(0); // mid now fed by an import subscription
        adl.imports.push(AdlImport {
            op: "mid".into(),
            spec: ImportSpec::by_id("feed"),
        });
        adl.exports.push(AdlExport {
            op: "src".into(),
            port: 0,
            spec: ExportSpec::by_id("feed"),
        });
        let diags = verify_graph(&adl, &VerifyOptions::default());
        assert!(
            !checks_of(&diags).contains(&checks::DANGLING_INPUT),
            "{diags:?}"
        );
        assert!(
            !checks_of(&diags).contains(&checks::UNREACHABLE),
            "{diags:?}"
        );
    }

    #[test]
    fn bad_port_detected() {
        let mut adl = clean_adl();
        adl.streams[0].to_port = 5;
        let diags = verify_graph(&adl, &VerifyOptions::default());
        assert!(checks_of(&diags).contains(&checks::BAD_PORT), "{diags:?}");
    }

    #[test]
    fn cycle_detected_and_named() {
        let mut adl = clean_adl();
        // mid -> mid2 -> mid, a genuine loop behind the source.
        adl.operators.insert(2, op("mid2", 1, 1, 1));
        adl.pes[1].operators.push("mid2".into());
        adl.streams.push(stream("mid", 0, "mid2", 0));
        adl.streams.push(stream("mid2", 0, "snk", 0));
        // Rewire: snk gets fed by mid2; mid gets a second input from mid2.
        adl.operators[1].inputs = 2;
        adl.streams
            .retain(|s| !(s.from_op == "mid" && s.to_op == "snk"));
        adl.streams.push(stream("mid2", 0, "mid", 1));
        let diags = verify_graph(&adl, &VerifyOptions::default());
        let cycle = diags.iter().find(|d| d.check == checks::CYCLE).unwrap();
        assert!(cycle.subject.contains("mid"), "{:?}", cycle.subject);
        assert!(cycle.subject.contains("mid2"));
    }

    #[test]
    fn stateless_but_fully_checkpointable_app_flagged() {
        let mut adl = clean_adl();
        for o in &mut adl.operators {
            o.kind = "Work".into(); // oracle: stateless
        }
        let diags = verify_graph(
            &adl,
            &VerifyOptions {
                upstream_backup: false,
                statefulness: Some(&oracle),
            },
        );
        let d = diags
            .iter()
            .find(|d| d.check == checks::CKPT_STATELESS)
            .expect("ckpt-stateless fires");
        assert_eq!(d.subject, "Clean");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn unknown_statefulness_suppresses_stateless_check() {
        let mut adl = clean_adl();
        for o in &mut adl.operators {
            o.kind = "Work".into();
        }
        adl.operators[0].kind = "Opaque".into(); // oracle: None
        let diags = verify_graph(
            &adl,
            &VerifyOptions {
                upstream_backup: false,
                statefulness: Some(&oracle),
            },
        );
        assert!(
            !checks_of(&diags).contains(&checks::CKPT_STATELESS),
            "{diags:?}"
        );
    }

    #[test]
    fn stateful_optout_warns_not_errors() {
        let mut adl = clean_adl();
        adl.operators[0].kind = "Beacon".into(); // stateful per oracle
        adl.operators[0].checkpointable = false;
        let diags = verify_graph(
            &adl,
            &VerifyOptions {
                upstream_backup: false,
                statefulness: Some(&oracle),
            },
        );
        let d = diags
            .iter()
            .find(|d| d.check == checks::CKPT_STATEFUL_OPTOUT)
            .expect("optout warning fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(graph_is_sound(
            &adl,
            &VerifyOptions {
                upstream_backup: false,
                statefulness: Some(&oracle),
            }
        ));
    }

    #[test]
    fn shadowed_checkpointable_state_is_an_error() {
        let mut adl = clean_adl();
        // Fuse a stateful checkpointable op with an opted-out op in PE 1.
        adl.operators[1].kind = "Beacon".into(); // mid: stateful, checkpointable
        adl.operators.insert(2, {
            let mut o = op("mate", 1, 1, 1);
            o.checkpointable = false;
            o
        });
        adl.pes[1].operators.push("mate".into());
        adl.operators[1].outputs = 2;
        adl.streams.push(stream("mid", 1, "mate", 0));
        adl.operators[3].inputs = 2; // snk
        adl.streams.push(stream("mate", 0, "snk", 1));
        let diags = verify_graph(
            &adl,
            &VerifyOptions {
                upstream_backup: false,
                statefulness: Some(&oracle),
            },
        );
        let d = diags
            .iter()
            .find(|d| d.check == checks::CKPT_SHADOWED)
            .expect("shadowed state fires");
        assert_eq!(d.subject, "mid");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn upstream_backup_requires_checkpointable_consumer() {
        let mut adl = clean_adl();
        adl.operators[2].checkpointable = false; // snk's PE opts out
        let opts = VerifyOptions {
            upstream_backup: true,
            statefulness: Some(&oracle),
        };
        let diags = verify_graph(&adl, &opts);
        let d = diags
            .iter()
            .find(|d| d.check == checks::UB_CONSUMER)
            .expect("ub-consumer fires");
        assert_eq!(d.subject, "mid->snk");
        // Without the option the same graph is accepted.
        let diags = verify_graph(
            &adl,
            &VerifyOptions {
                upstream_backup: false,
                statefulness: Some(&oracle),
            },
        );
        assert!(!checks_of(&diags).contains(&checks::UB_CONSUMER));
    }

    #[test]
    fn render_is_greppable() {
        let mut adl = clean_adl();
        adl.streams.remove(0);
        let diags = verify_graph(&adl, &VerifyOptions::default());
        let line = diags[0].render("Clean");
        assert!(line.starts_with("error "), "{line}");
        assert!(line.contains("app=Clean"));
        assert!(line.contains("subject="));
    }
}
