//! Logical application model: operators, composite operators, streams,
//! import/export, host pools, and partition/placement constraints.
//!
//! Mirrors the SPL concepts the paper relies on (§2.1): developers assemble a
//! data-flow graph whose vertices are operator invocations or instantiations
//! of reusable *composite operators*; the compiler later flattens this
//! logical view into the physical (PE-level) view. The logical/physical split
//! is the crux of the orchestrator's graph-disambiguation machinery.

use crate::error::ModelError;
use crate::value::{ParamMap, Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A pool of hosts that PEs can be placed on (§4.3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostPool {
    pub name: String,
    /// Explicit host names. Empty means "resolve by tag at submission".
    pub hosts: Vec<String>,
    /// Tag resolved against the cluster's host tags at submission time.
    pub tag: Option<String>,
    /// Exclusive pools may not be shared with any other application — the
    /// orchestrator's replica policy rewrites pools to exclusive before
    /// submission (paper §4.3/§5.2).
    pub exclusive: bool,
}

impl HostPool {
    pub fn explicit(name: &str, hosts: &[&str]) -> Self {
        HostPool {
            name: name.to_string(),
            hosts: hosts.iter().map(|h| h.to_string()).collect(),
            tag: None,
            exclusive: false,
        }
    }

    pub fn tagged(name: &str, tag: &str) -> Self {
        HostPool {
            name: name.to_string(),
            hosts: Vec::new(),
            tag: Some(tag.to_string()),
            exclusive: false,
        }
    }

    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }
}

/// Export specification: makes a stream available for dynamic cross-job
/// connection (§2.1). Streams are matched either by an explicit id or by
/// property subscription.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct ExportSpec {
    pub stream_id: Option<String>,
    pub properties: BTreeMap<String, Value>,
}

impl ExportSpec {
    pub fn by_id(id: &str) -> Self {
        ExportSpec {
            stream_id: Some(id.to_string()),
            properties: BTreeMap::new(),
        }
    }

    pub fn with_property(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.properties.insert(key.to_string(), value.into());
        self
    }
}

/// Import specification: subscribes to exported streams of other jobs.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct ImportSpec {
    /// Match a specific exported stream id.
    pub stream_id: Option<String>,
    /// Property equality subscription (all entries must match the export).
    pub subscription: BTreeMap<String, Value>,
    /// Restrict matching to exports of a specific application name.
    pub app_filter: Option<String>,
}

impl ImportSpec {
    pub fn by_id(id: &str) -> Self {
        ImportSpec {
            stream_id: Some(id.to_string()),
            ..Default::default()
        }
    }

    pub fn subscribe(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.subscription.insert(key.to_string(), value.into());
        self
    }

    pub fn from_app(mut self, app: &str) -> Self {
        self.app_filter = Some(app.to_string());
        self
    }

    /// Does this import match the given export (from the given app)?
    pub fn matches(&self, export: &ExportSpec, app_name: &str) -> bool {
        if let Some(filter) = &self.app_filter {
            if filter != app_name {
                return false;
            }
        }
        if let Some(id) = &self.stream_id {
            return export.stream_id.as_deref() == Some(id.as_str());
        }
        if self.subscription.is_empty() {
            return false;
        }
        self.subscription
            .iter()
            .all(|(k, v)| export.properties.get(k) == Some(v))
    }
}

/// One operator invocation inside a composite body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperatorInvocation {
    /// Operator type, e.g. `"Split"`, `"Aggregate"`, or an
    /// application-defined kind registered with the engine.
    pub kind: String,
    pub params: ParamMap,
    pub inputs: usize,
    pub outputs: usize,
    /// Optional declared schema per output port (None = unchecked).
    pub output_schemas: Vec<Option<Schema>>,
    /// Custom metrics the operator will maintain (§2.1); declared here so
    /// the graph store can answer "which operators expose metric m".
    pub custom_metrics: Vec<String>,
    /// Partition colocation: operators sharing a tag are fused into one PE.
    pub colocate: Option<String>,
    /// Partition exlocation: operators sharing a tag must be in distinct PEs.
    pub exlocate: Option<String>,
    /// Host pool this operator's PE must be placed in.
    pub host_pool: Option<String>,
    /// Host exlocation: PEs containing operators with the same tag must run
    /// on different hosts (used by the replica use case, §5.2).
    pub host_exlocate: Option<String>,
    /// Whether SAM may restart this operator's PE after a crash.
    pub restartable: bool,
    /// Whether the runtime may checkpoint this operator's state and restore
    /// it on restart (on by default; opt out for operators whose state must
    /// never be revived, e.g. side-effectful actuators).
    pub checkpointable: bool,
    /// Stream exports on output ports.
    pub exports: Vec<(usize, ExportSpec)>,
    /// Import subscription (only meaningful for `inputs == 0` pseudo-sources).
    pub import: Option<ImportSpec>,
}

impl OperatorInvocation {
    pub fn new(kind: &str) -> Self {
        OperatorInvocation {
            kind: kind.to_string(),
            params: ParamMap::new(),
            inputs: 1,
            outputs: 1,
            output_schemas: Vec::new(),
            custom_metrics: Vec::new(),
            colocate: None,
            exlocate: None,
            host_pool: None,
            host_exlocate: None,
            restartable: true,
            checkpointable: true,
            exports: Vec::new(),
            import: None,
        }
    }

    pub fn param(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.params.insert(key.to_string(), value.into());
        self
    }

    pub fn ports(mut self, inputs: usize, outputs: usize) -> Self {
        self.inputs = inputs;
        self.outputs = outputs;
        self
    }

    pub fn source(self) -> Self {
        self.ports(0, 1)
    }

    pub fn sink(self) -> Self {
        self.ports(1, 0)
    }

    pub fn output_schema(mut self, port: usize, schema: Schema) -> Self {
        if self.output_schemas.len() <= port {
            self.output_schemas.resize(port + 1, None);
        }
        self.output_schemas[port] = Some(schema);
        self
    }

    pub fn custom_metric(mut self, name: &str) -> Self {
        self.custom_metrics.push(name.to_string());
        self
    }

    pub fn colocate(mut self, tag: &str) -> Self {
        self.colocate = Some(tag.to_string());
        self
    }

    pub fn exlocate(mut self, tag: &str) -> Self {
        self.exlocate = Some(tag.to_string());
        self
    }

    pub fn host_pool(mut self, pool: &str) -> Self {
        self.host_pool = Some(pool.to_string());
        self
    }

    pub fn host_exlocate(mut self, tag: &str) -> Self {
        self.host_exlocate = Some(tag.to_string());
        self
    }

    pub fn not_restartable(mut self) -> Self {
        self.restartable = false;
        self
    }

    pub fn not_checkpointable(mut self) -> Self {
        self.checkpointable = false;
        self
    }

    pub fn export(mut self, port: usize, spec: ExportSpec) -> Self {
        self.exports.push((port, spec));
        self
    }

    pub fn import_spec(mut self, spec: ImportSpec) -> Self {
        self.import = Some(spec);
        self
    }
}

/// A vertex in a composite body: either a concrete operator or an instance of
/// another composite type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NodeRef {
    Operator(Box<OperatorInvocation>),
    Composite { type_name: String },
}

/// A stream edge inside one composite body, between local node ports.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDef {
    pub from_node: String,
    pub from_port: usize,
    pub to_node: String,
    pub to_port: usize,
}

/// A composite operator definition: a named, reusable sub-graph with typed
/// boundary ports (§2.1, Figure 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompositeDef {
    pub type_name: String,
    /// Node name → node, insertion-ordered.
    pub nodes: Vec<(String, NodeRef)>,
    pub streams: Vec<StreamDef>,
    /// For each composite input port: the inner (node, port) endpoints fed by
    /// it (fan-out allowed).
    pub input_bindings: Vec<Vec<(String, usize)>>,
    /// For each composite output port: the inner (node, port) producing it.
    pub output_bindings: Vec<(String, usize)>,
}

impl CompositeDef {
    pub fn node(&self, name: &str) -> Option<&NodeRef> {
        self.nodes.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    pub fn inputs(&self) -> usize {
        self.input_bindings.len()
    }

    pub fn outputs(&self) -> usize {
        self.output_bindings.len()
    }
}

/// Builder for a composite body (also used for the application's main graph).
pub struct CompositeGraphBuilder {
    type_name: String,
    nodes: Vec<(String, NodeRef)>,
    streams: Vec<StreamDef>,
    input_bindings: Vec<Vec<(String, usize)>>,
    output_bindings: Vec<(String, usize)>,
}

impl CompositeGraphBuilder {
    /// Starts a reusable composite type with the given boundary port counts.
    pub fn new(type_name: &str, inputs: usize, outputs: usize) -> Self {
        CompositeGraphBuilder {
            type_name: type_name.to_string(),
            nodes: Vec::new(),
            streams: Vec::new(),
            input_bindings: vec![Vec::new(); inputs],
            output_bindings: Vec::with_capacity(outputs),
        }
    }

    /// Starts the main (top-level) application graph.
    pub fn main() -> Self {
        CompositeGraphBuilder::new("<main>", 0, 0)
    }

    /// Adds an operator invocation under a local name.
    pub fn operator(&mut self, name: &str, inv: OperatorInvocation) -> &mut Self {
        self.nodes
            .push((name.to_string(), NodeRef::Operator(Box::new(inv))));
        self
    }

    /// Instantiates a composite type under a local name.
    pub fn composite(&mut self, name: &str, type_name: &str) -> &mut Self {
        self.nodes.push((
            name.to_string(),
            NodeRef::Composite {
                type_name: type_name.to_string(),
            },
        ));
        self
    }

    /// Connects `(from, from_port)` to `(to, to_port)`.
    pub fn stream(&mut self, from: &str, from_port: usize, to: &str, to_port: usize) -> &mut Self {
        self.streams.push(StreamDef {
            from_node: from.to_string(),
            from_port,
            to_node: to.to_string(),
            to_port,
        });
        self
    }

    /// Convenience: connect port 0 to port 0.
    pub fn pipe(&mut self, from: &str, to: &str) -> &mut Self {
        self.stream(from, 0, to, 0)
    }

    /// Binds composite input port `port` to an inner node input.
    pub fn bind_input(&mut self, port: usize, node: &str, node_port: usize) -> &mut Self {
        assert!(port < self.input_bindings.len(), "input port out of range");
        self.input_bindings[port].push((node.to_string(), node_port));
        self
    }

    /// Binds the next composite output port to an inner node output.
    pub fn bind_output(&mut self, node: &str, node_port: usize) -> &mut Self {
        self.output_bindings.push((node.to_string(), node_port));
        self
    }

    /// Validates local structure and produces the definition.
    pub fn build(self) -> Result<CompositeDef, ModelError> {
        let mut seen = BTreeSet::new();
        for (name, _) in &self.nodes {
            if !seen.insert(name.clone()) {
                return Err(ModelError::DuplicateName(format!(
                    "node '{name}' in composite '{}'",
                    self.type_name
                )));
            }
            if name.contains('.') {
                return Err(ModelError::Invalid(format!(
                    "node name '{name}' may not contain '.' (reserved as the \
                     composite-path separator)"
                )));
            }
        }
        let def = CompositeDef {
            type_name: self.type_name,
            nodes: self.nodes,
            streams: self.streams,
            input_bindings: self.input_bindings,
            output_bindings: self.output_bindings,
        };
        // Local stream endpoints must exist (ports are validated against
        // operator arity during compilation, when composite arities are
        // known).
        for s in &def.streams {
            for node in [&s.from_node, &s.to_node] {
                if def.node(node).is_none() {
                    return Err(ModelError::Unknown(format!(
                        "stream endpoint '{node}' in composite '{}'",
                        def.type_name
                    )));
                }
            }
        }
        for bindings in &def.input_bindings {
            for (node, _) in bindings {
                if def.node(node).is_none() {
                    return Err(ModelError::Unknown(format!(
                        "input binding node '{node}' in composite '{}'",
                        def.type_name
                    )));
                }
            }
        }
        for (node, _) in &def.output_bindings {
            if def.node(node).is_none() {
                return Err(ModelError::Unknown(format!(
                    "output binding node '{node}' in composite '{}'",
                    def.type_name
                )));
            }
        }
        Ok(def)
    }
}

/// A complete logical application: a main graph, the composite types it
/// uses, and its host pools.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    pub name: String,
    pub composites: BTreeMap<String, CompositeDef>,
    pub main: CompositeDef,
    pub host_pools: Vec<HostPool>,
}

/// Builder for [`AppModel`].
pub struct AppModelBuilder {
    name: String,
    composites: BTreeMap<String, CompositeDef>,
    host_pools: Vec<HostPool>,
}

impl AppModelBuilder {
    pub fn new(name: &str) -> Self {
        AppModelBuilder {
            name: name.to_string(),
            composites: BTreeMap::new(),
            host_pools: Vec::new(),
        }
    }

    pub fn host_pool(&mut self, pool: HostPool) -> &mut Self {
        self.host_pools.push(pool);
        self
    }

    pub fn add_composite(&mut self, def: CompositeDef) -> Result<&mut Self, ModelError> {
        if self.composites.contains_key(&def.type_name) {
            return Err(ModelError::DuplicateName(format!(
                "composite type '{}'",
                def.type_name
            )));
        }
        self.composites.insert(def.type_name.clone(), def);
        Ok(self)
    }

    /// Finalizes the model with the given main graph, validating composite
    /// references and rejecting recursive composites.
    pub fn build(self, main: CompositeDef) -> Result<AppModel, ModelError> {
        let mut pool_names = BTreeSet::new();
        for p in &self.host_pools {
            if !pool_names.insert(p.name.clone()) {
                return Err(ModelError::DuplicateName(format!("host pool '{}'", p.name)));
            }
        }
        let model = AppModel {
            name: self.name,
            composites: self.composites,
            main,
            host_pools: self.host_pools,
        };
        model.validate_composite_refs()?;
        model.check_recursion()?;
        Ok(model)
    }
}

impl AppModel {
    fn validate_composite_refs(&self) -> Result<(), ModelError> {
        let check = |def: &CompositeDef| -> Result<(), ModelError> {
            for (_, node) in &def.nodes {
                if let NodeRef::Composite { type_name } = node {
                    if !self.composites.contains_key(type_name) {
                        return Err(ModelError::Unknown(format!("composite type '{type_name}'")));
                    }
                }
            }
            Ok(())
        };
        check(&self.main)?;
        for def in self.composites.values() {
            check(def)?;
        }
        Ok(())
    }

    fn check_recursion(&self) -> Result<(), ModelError> {
        // DFS with an explicit path over the composite-type reference graph.
        fn visit(model: &AppModel, ty: &str, path: &mut Vec<String>) -> Result<(), ModelError> {
            if path.iter().any(|p| p == ty) {
                return Err(ModelError::RecursiveComposite(ty.to_string()));
            }
            path.push(ty.to_string());
            let def = &model.composites[ty];
            for (_, node) in &def.nodes {
                if let NodeRef::Composite { type_name } = node {
                    visit(model, type_name, path)?;
                }
            }
            path.pop();
            Ok(())
        }
        let mut path = Vec::new();
        for (_, node) in &self.main.nodes {
            if let NodeRef::Composite { type_name } = node {
                visit(self, type_name, &mut path)?;
            }
        }
        Ok(())
    }

    pub fn host_pool(&self, name: &str) -> Option<&HostPool> {
        self.host_pools.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split_merge_composite() -> CompositeDef {
        // The composite1 of Figure 2: op3 (split) -> op4, op5 -> op6 (merge).
        let mut b = CompositeGraphBuilder::new("composite1", 1, 1);
        b.operator("op3", OperatorInvocation::new("Split").ports(1, 2));
        b.operator("op4", OperatorInvocation::new("Work"));
        b.operator("op5", OperatorInvocation::new("Work"));
        b.operator("op6", OperatorInvocation::new("Merge").ports(2, 1));
        b.stream("op3", 0, "op4", 0);
        b.stream("op3", 1, "op5", 0);
        b.stream("op4", 0, "op6", 0);
        b.stream("op5", 0, "op6", 1);
        b.bind_input(0, "op3", 0);
        b.bind_output("op6", 0);
        b.build().unwrap()
    }

    #[test]
    fn builds_figure2_model() {
        let mut app = AppModelBuilder::new("Figure2");
        app.add_composite(split_merge_composite()).unwrap();
        let mut m = CompositeGraphBuilder::main();
        m.operator("op1", OperatorInvocation::new("Beacon").source());
        m.operator("op2", OperatorInvocation::new("Beacon").source());
        m.composite("c1", "composite1");
        m.composite("c2", "composite1");
        m.operator("op7", OperatorInvocation::new("Sink").sink());
        m.operator("op8", OperatorInvocation::new("Sink").sink());
        m.pipe("op1", "c1");
        m.pipe("op2", "c2");
        m.pipe("c1", "op7");
        m.pipe("c2", "op8");
        let model = app.build(m.build().unwrap()).unwrap();
        assert_eq!(model.name, "Figure2");
        assert_eq!(model.composites.len(), 1);
        assert_eq!(model.main.nodes.len(), 6);
        let c = &model.composites["composite1"];
        assert_eq!(c.inputs(), 1);
        assert_eq!(c.outputs(), 1);
        assert!(matches!(c.node("op3"), Some(NodeRef::Operator(op)) if op.kind == "Split"));
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut b = CompositeGraphBuilder::main();
        b.operator("a", OperatorInvocation::new("X"));
        b.operator("a", OperatorInvocation::new("Y"));
        assert!(matches!(b.build(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn node_names_may_not_contain_dot() {
        let mut b = CompositeGraphBuilder::main();
        b.operator("a.b", OperatorInvocation::new("X"));
        assert!(matches!(b.build(), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn stream_endpoints_must_exist() {
        let mut b = CompositeGraphBuilder::main();
        b.operator("a", OperatorInvocation::new("X").source());
        b.pipe("a", "ghost");
        assert!(matches!(b.build(), Err(ModelError::Unknown(_))));
    }

    #[test]
    fn binding_endpoints_must_exist() {
        let mut b = CompositeGraphBuilder::new("c", 1, 1);
        b.operator("a", OperatorInvocation::new("X"));
        b.bind_input(0, "ghost", 0);
        b.bind_output("a", 0);
        assert!(b.build().is_err());

        let mut b = CompositeGraphBuilder::new("c", 0, 1);
        b.operator("a", OperatorInvocation::new("X"));
        b.bind_output("ghost", 0);
        assert!(b.build().is_err());
    }

    #[test]
    fn unknown_composite_type_rejected() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.composite("c", "nope");
        assert!(matches!(
            app.build(m.build().unwrap()),
            Err(ModelError::Unknown(_))
        ));
    }

    #[test]
    fn recursive_composite_rejected() {
        let mut app = AppModelBuilder::new("A");
        // c1 contains c2; c2 contains c1.
        let mut c1 = CompositeGraphBuilder::new("c1", 0, 0);
        c1.composite("inner", "c2");
        app.add_composite(c1.build().unwrap()).unwrap();
        let mut c2 = CompositeGraphBuilder::new("c2", 0, 0);
        c2.composite("inner", "c1");
        app.add_composite(c2.build().unwrap()).unwrap();
        let mut m = CompositeGraphBuilder::main();
        m.composite("top", "c1");
        assert!(matches!(
            app.build(m.build().unwrap()),
            Err(ModelError::RecursiveComposite(_))
        ));
    }

    #[test]
    fn duplicate_composite_type_rejected() {
        let mut app = AppModelBuilder::new("A");
        let c = CompositeGraphBuilder::new("c", 0, 0).build().unwrap();
        app.add_composite(c.clone()).unwrap();
        assert!(matches!(
            app.add_composite(c),
            Err(ModelError::DuplicateName(_))
        ));
    }

    #[test]
    fn duplicate_host_pool_rejected() {
        let mut app = AppModelBuilder::new("A");
        app.host_pool(HostPool::explicit("p", &["h1"]));
        app.host_pool(HostPool::explicit("p", &["h2"]));
        let m = CompositeGraphBuilder::main().build().unwrap();
        assert!(matches!(app.build(m), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn import_matching_rules() {
        let export = ExportSpec::by_id("prices");
        assert!(ImportSpec::by_id("prices").matches(&export, "AppA"));
        assert!(!ImportSpec::by_id("other").matches(&export, "AppA"));
        assert!(!ImportSpec::by_id("prices")
            .from_app("AppB")
            .matches(&export, "AppA"));

        let export = ExportSpec::default()
            .with_property("topic", "trades")
            .with_property("region", "us");
        let sub = ImportSpec::default().subscribe("topic", "trades");
        assert!(sub.matches(&export, "X"));
        let sub2 = ImportSpec::default()
            .subscribe("topic", "trades")
            .subscribe("region", "eu");
        assert!(!sub2.matches(&export, "X"));
        // Empty subscription with no id matches nothing.
        assert!(!ImportSpec::default().matches(&export, "X"));
    }

    #[test]
    fn invocation_builder_covers_all_knobs() {
        let inv = OperatorInvocation::new("Custom")
            .param("rate", 10i64)
            .ports(2, 3)
            .custom_metric("known")
            .custom_metric("unknown")
            .colocate("grp")
            .exlocate("ex")
            .host_pool("pool")
            .host_exlocate("hx")
            .not_restartable()
            .export(0, ExportSpec::by_id("out"))
            .import_spec(ImportSpec::by_id("in"));
        assert_eq!(inv.kind, "Custom");
        assert_eq!(inv.params["rate"], Value::Int(10));
        assert_eq!((inv.inputs, inv.outputs), (2, 3));
        assert_eq!(inv.custom_metrics.len(), 2);
        assert_eq!(inv.colocate.as_deref(), Some("grp"));
        assert_eq!(inv.exlocate.as_deref(), Some("ex"));
        assert_eq!(inv.host_pool.as_deref(), Some("pool"));
        assert_eq!(inv.host_exlocate.as_deref(), Some("hx"));
        assert!(!inv.restartable);
        assert_eq!(inv.exports.len(), 1);
        assert!(inv.import.is_some());
    }
}
