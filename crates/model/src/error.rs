//! Error type shared by model construction, compilation, and ADL parsing.

use std::fmt;

/// Errors produced while building, compiling, serializing or parsing
/// application models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A name (operator, composite, stream, host pool) was defined twice.
    DuplicateName(String),
    /// A referenced entity does not exist.
    Unknown(String),
    /// A port index is out of range for the operator it references.
    BadPort(String),
    /// Composite instantiation recursion (a composite that contains itself).
    RecursiveComposite(String),
    /// Partitioning constraints are unsatisfiable (e.g. two operators both
    /// colocated and exlocated).
    ConstraintConflict(String),
    /// Not enough hosts to satisfy placement.
    PlacementFailure(String),
    /// Malformed ADL document.
    Parse(String),
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            ModelError::Unknown(n) => write!(f, "unknown reference: {n}"),
            ModelError::BadPort(m) => write!(f, "bad port: {m}"),
            ModelError::RecursiveComposite(n) => {
                write!(
                    f,
                    "composite type {n} instantiates itself (directly or indirectly)"
                )
            }
            ModelError::ConstraintConflict(m) => write!(f, "constraint conflict: {m}"),
            ModelError::PlacementFailure(m) => write!(f, "placement failure: {m}"),
            ModelError::Parse(m) => write!(f, "ADL parse error: {m}"),
            ModelError::Invalid(m) => write!(f, "invalid model: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            ModelError::DuplicateName("op1".into()).to_string(),
            "duplicate name: op1"
        );
        assert!(ModelError::RecursiveComposite("c".into())
            .to_string()
            .contains("instantiates itself"));
        assert!(ModelError::Parse("eof".into()).to_string().contains("ADL"));
    }
}
