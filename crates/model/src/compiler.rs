//! Logical → physical compilation: composite expansion, PE partitioning, and
//! placement-constraint resolution, producing an [`Adl`].
//!
//! Reproduces the SPL compiler behaviour the paper depends on (§2.1): the
//! compiler may fuse operators from *different* composite instances into the
//! same PE and split one composite across PEs (Figure 3), which is exactly
//! why the orchestrator needs logical/physical disambiguation.

use crate::adl::{Adl, AdlExport, AdlImport, AdlOperator, AdlPe, AdlStream};
use crate::error::ModelError;
use crate::logical::{AppModel, CompositeDef, NodeRef, OperatorInvocation};
use std::collections::BTreeMap;

/// How aggressively operators are fused into PEs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Operators sharing a colocation tag are fused; everything else gets its
    /// own PE. The default.
    Colocation,
    /// Fuse the whole application into a single PE (fails if exlocation
    /// constraints exist). Useful for overhead ablations.
    FuseAll,
    /// Start from colocation groups, then greedily merge groups connected by
    /// stream edges until at most `n` PEs remain (mimicking the COLA-style
    /// performance-driven partitioner referenced by the paper).
    Target(usize),
}

/// Compilation options.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    pub fusion: FusionPolicy,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fusion: FusionPolicy::Colocation,
        }
    }
}

/// A flattened operator before PE assignment.
struct FlatOp {
    name: String,
    inv: OperatorInvocation,
    composite_path: Vec<(String, String)>,
}

/// Result of expanding one composite body.
struct Expansion {
    /// Flat endpoints feeding each composite input port.
    input_bindings: Vec<Vec<(String, usize)>>,
    /// Flat endpoint producing each composite output port.
    output_bindings: Vec<(String, usize)>,
}

struct Expander<'m> {
    model: &'m AppModel,
    ops: Vec<FlatOp>,
    streams: Vec<AdlStream>,
}

impl<'m> Expander<'m> {
    /// Expands `def`'s body with the given instance-name prefix and
    /// composite-containment chain, appending flat operators and streams.
    fn expand(
        &mut self,
        def: &CompositeDef,
        prefix: &str,
        chain: &[(String, String)],
    ) -> Result<Expansion, ModelError> {
        // First pass: create operators and recursively expand child
        // composites, remembering each local node's flat interface.
        enum Resolved {
            Op {
                name: String,
                inputs: usize,
                outputs: usize,
            },
            Comp(Expansion),
        }
        let mut local: BTreeMap<&str, Resolved> = BTreeMap::new();

        for (name, node) in &def.nodes {
            let full = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            match node {
                NodeRef::Operator(inv) => {
                    if let Some(import) = &inv.import {
                        let _ = import; // validated below
                        if inv.inputs != 0 {
                            return Err(ModelError::Invalid(format!(
                                "operator {full} declares an import but has {} input ports \
                                 (imports are pseudo-sources)",
                                inv.inputs
                            )));
                        }
                    }
                    for (port, _) in &inv.exports {
                        if *port >= inv.outputs {
                            return Err(ModelError::BadPort(format!(
                                "export {full}:{port} (operator has {} outputs)",
                                inv.outputs
                            )));
                        }
                    }
                    if let Some(pool) = &inv.host_pool {
                        if self.model.host_pool(pool).is_none() {
                            return Err(ModelError::Unknown(format!(
                                "host pool '{pool}' referenced by {full}"
                            )));
                        }
                    }
                    self.ops.push(FlatOp {
                        name: full.clone(),
                        inv: (**inv).clone(),
                        composite_path: chain.to_vec(),
                    });
                    local.insert(
                        name.as_str(),
                        Resolved::Op {
                            name: full,
                            inputs: inv.inputs,
                            outputs: inv.outputs,
                        },
                    );
                }
                NodeRef::Composite { type_name } => {
                    let child_def = self
                        .model
                        .composites
                        .get(type_name)
                        .ok_or_else(|| ModelError::Unknown(type_name.clone()))?;
                    let mut child_chain = chain.to_vec();
                    child_chain.push((full.clone(), type_name.clone()));
                    let exp = self.expand(child_def, &full, &child_chain)?;
                    local.insert(name.as_str(), Resolved::Comp(exp));
                }
            }
        }

        // Second pass: wire local streams through composite boundaries.
        for s in &def.streams {
            let sources: Vec<(String, usize)> = match &local[s.from_node.as_str()] {
                Resolved::Op { name, outputs, .. } => {
                    if s.from_port >= *outputs {
                        return Err(ModelError::BadPort(format!(
                            "{}:{} (operator has {outputs} outputs)",
                            s.from_node, s.from_port
                        )));
                    }
                    vec![(name.clone(), s.from_port)]
                }
                Resolved::Comp(exp) => {
                    let ep = exp.output_bindings.get(s.from_port).ok_or_else(|| {
                        ModelError::BadPort(format!(
                            "{}:{} (composite has {} outputs)",
                            s.from_node,
                            s.from_port,
                            exp.output_bindings.len()
                        ))
                    })?;
                    vec![ep.clone()]
                }
            };
            let targets: Vec<(String, usize)> = match &local[s.to_node.as_str()] {
                Resolved::Op { name, inputs, .. } => {
                    if s.to_port >= *inputs {
                        return Err(ModelError::BadPort(format!(
                            "{}:{} (operator has {inputs} inputs)",
                            s.to_node, s.to_port
                        )));
                    }
                    vec![(name.clone(), s.to_port)]
                }
                Resolved::Comp(exp) => exp
                    .input_bindings
                    .get(s.to_port)
                    .ok_or_else(|| {
                        ModelError::BadPort(format!(
                            "{}:{} (composite has {} inputs)",
                            s.to_node,
                            s.to_port,
                            exp.input_bindings.len()
                        ))
                    })?
                    .clone(),
            };
            for (from_op, from_port) in &sources {
                for (to_op, to_port) in &targets {
                    self.streams.push(AdlStream {
                        from_op: from_op.clone(),
                        from_port: *from_port,
                        to_op: to_op.clone(),
                        to_port: *to_port,
                    });
                }
            }
        }

        // Third pass: resolve this composite's own boundary bindings.
        let mut input_bindings = Vec::with_capacity(def.input_bindings.len());
        for bindings in &def.input_bindings {
            let mut flat = Vec::new();
            for (node, port) in bindings {
                match &local[node.as_str()] {
                    Resolved::Op { name, inputs, .. } => {
                        if *port >= *inputs {
                            return Err(ModelError::BadPort(format!(
                                "input binding {node}:{port}"
                            )));
                        }
                        flat.push((name.clone(), *port));
                    }
                    Resolved::Comp(exp) => {
                        let inner = exp.input_bindings.get(*port).ok_or_else(|| {
                            ModelError::BadPort(format!("input binding {node}:{port}"))
                        })?;
                        flat.extend(inner.iter().cloned());
                    }
                }
            }
            input_bindings.push(flat);
        }
        let mut output_bindings = Vec::with_capacity(def.output_bindings.len());
        for (node, port) in &def.output_bindings {
            match &local[node.as_str()] {
                Resolved::Op { name, outputs, .. } => {
                    if *port >= *outputs {
                        return Err(ModelError::BadPort(format!("output binding {node}:{port}")));
                    }
                    output_bindings.push((name.clone(), *port));
                }
                Resolved::Comp(exp) => {
                    let inner = exp.output_bindings.get(*port).ok_or_else(|| {
                        ModelError::BadPort(format!("output binding {node}:{port}"))
                    })?;
                    output_bindings.push(inner.clone());
                }
            }
        }

        Ok(Expansion {
            input_bindings,
            output_bindings,
        })
    }
}

/// Union-find over operator indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller index becomes the root.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Compiles a logical application model into an ADL.
pub fn compile(model: &AppModel, options: CompileOptions) -> Result<Adl, ModelError> {
    let mut expander = Expander {
        model,
        ops: Vec::new(),
        streams: Vec::new(),
    };
    expander.expand(&model.main, "", &[])?;
    let Expander { ops, streams, .. } = expander;

    // ---- Partition into PEs ----------------------------------------------
    let n = ops.len();
    let mut uf = UnionFind::new(n);
    let mut colocate_groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(tag) = &op.inv.colocate {
            colocate_groups.entry(tag.as_str()).or_default().push(i);
        }
    }
    for members in colocate_groups.values() {
        for w in members.windows(2) {
            uf.union(w[0], w[1]);
        }
    }

    match options.fusion {
        FusionPolicy::Colocation => {}
        FusionPolicy::FuseAll => {
            for i in 1..n {
                uf.union(0, i);
            }
        }
        FusionPolicy::Target(target) => {
            merge_to_target(&mut uf, &ops, &streams, target.max(1));
        }
    }

    // Group id = root's smallest member index → stable PE numbering.
    let mut group_of_op = vec![0usize; n];
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let root = uf.find(i);
        groups.entry(root).or_default().push(i);
    }
    let group_order: Vec<usize> = groups.keys().copied().collect();
    for (pe_index, root) in group_order.iter().enumerate() {
        for &member in &groups[root] {
            group_of_op[member] = pe_index;
        }
    }

    // ---- Validate exlocation ---------------------------------------------
    let mut exlocate_seen: BTreeMap<(&str, usize), &str> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(tag) = &op.inv.exlocate {
            let pe = group_of_op[i];
            if let Some(other) = exlocate_seen.insert((tag.as_str(), pe), op.name.as_str()) {
                return Err(ModelError::ConstraintConflict(format!(
                    "operators '{other}' and '{}' share exlocation tag '{tag}' \
                     but were fused into the same PE",
                    op.name
                )));
            }
        }
    }

    // ---- Per-PE placement attributes --------------------------------------
    let mut pes = Vec::with_capacity(group_order.len());
    for (pe_index, root) in group_order.iter().enumerate() {
        let members = &groups[root];
        let mut host_pool: Option<String> = None;
        let mut host_exlocate: Option<String> = None;
        for &m in members {
            if let Some(pool) = &ops[m].inv.host_pool {
                match &host_pool {
                    None => host_pool = Some(pool.clone()),
                    Some(existing) if existing != pool => {
                        return Err(ModelError::ConstraintConflict(format!(
                            "PE {pe_index} mixes host pools '{existing}' and '{pool}'"
                        )));
                    }
                    _ => {}
                }
            }
            if let Some(tag) = &ops[m].inv.host_exlocate {
                match &host_exlocate {
                    None => host_exlocate = Some(tag.clone()),
                    Some(existing) if existing != tag => {
                        return Err(ModelError::ConstraintConflict(format!(
                            "PE {pe_index} mixes host exlocation tags \
                             '{existing}' and '{tag}'"
                        )));
                    }
                    _ => {}
                }
            }
        }
        pes.push(AdlPe {
            index: pe_index,
            operators: members.iter().map(|&m| ops[m].name.clone()).collect(),
            host_pool,
            host_exlocate,
        });
    }

    // ---- Assemble the ADL --------------------------------------------------
    let mut adl_ops = Vec::with_capacity(n);
    let mut imports = Vec::new();
    let mut exports = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(spec) = &op.inv.import {
            imports.push(AdlImport {
                op: op.name.clone(),
                spec: spec.clone(),
            });
        }
        for (port, spec) in &op.inv.exports {
            exports.push(AdlExport {
                op: op.name.clone(),
                port: *port,
                spec: spec.clone(),
            });
        }
        adl_ops.push(AdlOperator {
            name: op.name.clone(),
            kind: op.inv.kind.clone(),
            composite_path: op.composite_path.clone(),
            params: op.inv.params.clone(),
            inputs: op.inv.inputs,
            outputs: op.inv.outputs,
            custom_metrics: op.inv.custom_metrics.clone(),
            pe: group_of_op[i],
            restartable: op.inv.restartable,
            checkpointable: op.inv.checkpointable,
        });
    }

    let adl = Adl {
        app_name: model.name.clone(),
        operators: adl_ops,
        pes,
        streams,
        imports,
        exports,
        host_pools: model.host_pools.clone(),
    };
    adl.validate()?;
    Ok(adl)
}

/// Greedy pairwise merging of partition groups along stream edges until at
/// most `target` groups remain. Merges that would violate exlocation or mix
/// host pools are skipped.
fn merge_to_target(uf: &mut UnionFind, ops: &[FlatOp], streams: &[AdlStream], target: usize) {
    let index_of: BTreeMap<&str, usize> = ops
        .iter()
        .enumerate()
        .map(|(i, o)| (o.name.as_str(), i))
        .collect();

    loop {
        let mut group_sizes: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..ops.len() {
            *group_sizes.entry(uf.find(i)).or_default() += 1;
        }
        if group_sizes.len() <= target {
            return;
        }
        // Candidate merges: connected group pairs, smallest combined size
        // first, ties broken by root indices for determinism.
        let mut best: Option<(usize, usize, usize)> = None;
        for s in streams {
            let (Some(&a), Some(&b)) = (
                index_of.get(s.from_op.as_str()),
                index_of.get(s.to_op.as_str()),
            ) else {
                continue;
            };
            let (ra, rb) = (uf.find(a), uf.find(b));
            if ra == rb || !merge_allowed(uf, ops, ra, rb) {
                continue;
            }
            let size = group_sizes[&ra] + group_sizes[&rb];
            let key = (size, ra.min(rb), ra.max(rb));
            if best.is_none_or(|(bs, b1, b2)| key < (bs, b1, b2)) {
                best = Some(key);
            }
        }
        match best {
            Some((_, a, b)) => uf.union(a, b),
            None => return, // no legal merge remains
        }
    }
}

/// Would merging the groups rooted at `ra` and `rb` violate exlocation or
/// host-pool uniqueness?
fn merge_allowed(uf: &mut UnionFind, ops: &[FlatOp], ra: usize, rb: usize) -> bool {
    let mut exlocate_tags: Vec<&str> = Vec::new();
    let mut pools: Vec<&str> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let r = uf.find(i);
        if r != ra && r != rb {
            continue;
        }
        if let Some(tag) = &op.inv.exlocate {
            if exlocate_tags.contains(&tag.as_str()) {
                return false;
            }
            exlocate_tags.push(tag);
        }
        if let Some(pool) = &op.inv.host_pool {
            if !pools.contains(&pool.as_str()) {
                pools.push(pool);
            }
        }
    }
    pools.len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{
        AppModelBuilder, CompositeGraphBuilder, ExportSpec, HostPool, ImportSpec,
        OperatorInvocation,
    };

    /// Builds the Figure 2 application: two sources, each feeding an
    /// instance of the split/merge composite, each feeding a sink.
    /// Colocation tags are chosen to reproduce the Figure 3 physical layout:
    /// PE1 = {op3', op4'}, PE2 = {op5', op6', op4'', op5'', op6''}, PE3 = {op3''}
    /// (the paper's point: one composite split across PEs, two composite
    /// instances fused into one PE).
    fn figure2_model() -> AppModel {
        let mut c = CompositeGraphBuilder::new("composite1", 1, 1);
        c.operator("op3", OperatorInvocation::new("Split").ports(1, 2));
        c.operator("op4", OperatorInvocation::new("Work"));
        c.operator("op5", OperatorInvocation::new("Work"));
        c.operator("op6", OperatorInvocation::new("Merge").ports(2, 1));
        c.stream("op3", 0, "op4", 0);
        c.stream("op3", 1, "op5", 0);
        c.stream("op4", 0, "op6", 0);
        c.stream("op5", 0, "op6", 1);
        c.bind_input(0, "op3", 0);
        c.bind_output("op6", 0);

        let mut app = AppModelBuilder::new("Figure2");
        app.add_composite(c.build().unwrap()).unwrap();
        let mut m = CompositeGraphBuilder::main();
        m.operator("op1", OperatorInvocation::new("Beacon").source());
        m.operator("op2", OperatorInvocation::new("Beacon").source());
        m.composite("c1", "composite1");
        m.composite("c2", "composite1");
        m.operator("op7", OperatorInvocation::new("Sink").sink());
        m.operator("op8", OperatorInvocation::new("Sink").sink());
        m.pipe("op1", "c1");
        m.pipe("op2", "c2");
        m.pipe("c1", "op7");
        m.pipe("c2", "op8");
        app.build(m.build().unwrap()).unwrap()
    }

    #[test]
    fn expansion_flattens_composites() {
        let adl = compile(&figure2_model(), CompileOptions::default()).unwrap();
        let names: Vec<&str> = adl.operators.iter().map(|o| o.name.as_str()).collect();
        assert!(names.contains(&"c1.op3"));
        assert!(names.contains(&"c2.op6"));
        assert_eq!(adl.operators.len(), 12); // 2 sources + 2*4 composite ops + 2 sinks
                                             // Composite containment chain recorded.
        let op3 = adl.operator("c1.op3").unwrap();
        assert_eq!(
            op3.composite_path,
            vec![("c1".to_string(), "composite1".to_string())]
        );
        assert!(adl.operator("op1").unwrap().composite_path.is_empty());
    }

    #[test]
    fn expansion_wires_streams_through_boundaries() {
        let adl = compile(&figure2_model(), CompileOptions::default()).unwrap();
        // op1 -> c1 input binds to c1.op3.
        assert!(adl.streams.contains(&AdlStream {
            from_op: "op1".into(),
            from_port: 0,
            to_op: "c1.op3".into(),
            to_port: 0
        }));
        // c1 output (c1.op6) -> op7.
        assert!(adl.streams.contains(&AdlStream {
            from_op: "c1.op6".into(),
            from_port: 0,
            to_op: "op7".into(),
            to_port: 0
        }));
        // Inner composite streams flattened too.
        assert!(adl.streams.contains(&AdlStream {
            from_op: "c2.op3".into(),
            from_port: 1,
            to_op: "c2.op5".into(),
            to_port: 0
        }));
        assert_eq!(adl.streams.len(), 2 * 4 + 4); // 4 inner per instance + 4 outer
    }

    #[test]
    fn default_fusion_is_one_pe_per_operator() {
        let adl = compile(&figure2_model(), CompileOptions::default()).unwrap();
        assert_eq!(adl.pes.len(), adl.operators.len());
        for pe in &adl.pes {
            assert_eq!(pe.operators.len(), 1);
        }
    }

    #[test]
    fn figure3_layout_via_colocation() {
        // Reproduce Figure 3: composite instance c1 split across two PEs, and
        // parts of c1 and c2 fused into one PE.
        let mut c = CompositeGraphBuilder::new("composite1", 1, 1);
        c.operator(
            "op3",
            OperatorInvocation::new("Split")
                .ports(1, 2)
                .param("peGroupParam", "unset"),
        );
        c.operator("op4", OperatorInvocation::new("Work"));
        c.operator("op5", OperatorInvocation::new("Work"));
        c.operator("op6", OperatorInvocation::new("Merge").ports(2, 1));
        c.stream("op3", 0, "op4", 0);
        c.stream("op3", 1, "op5", 0);
        c.stream("op4", 0, "op6", 0);
        c.stream("op5", 0, "op6", 1);
        c.bind_input(0, "op3", 0);
        c.bind_output("op6", 0);

        let mut app = AppModelBuilder::new("Figure3");
        app.add_composite(c.build().unwrap()).unwrap();
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "op1",
            OperatorInvocation::new("Beacon").source().colocate("pe1"),
        );
        m.operator(
            "op2",
            OperatorInvocation::new("Beacon").source().colocate("pe3"),
        );
        m.composite("c1", "composite1");
        m.composite("c2", "composite1");
        m.operator(
            "op7",
            OperatorInvocation::new("Sink").sink().colocate("pe2"),
        );
        m.operator(
            "op8",
            OperatorInvocation::new("Sink").sink().colocate("pe2"),
        );
        m.pipe("op1", "c1");
        m.pipe("op2", "c2");
        m.pipe("c1", "op7");
        m.pipe("c2", "op8");
        let model = app.build(m.build().unwrap()).unwrap();

        // Colocation tags cannot be set per composite *instance* from the
        // outside (they are part of the invocation), so emulate the paper's
        // performance-driven fusion with Target(3).
        let adl = compile(
            &model,
            CompileOptions {
                fusion: FusionPolicy::Target(3),
            },
        )
        .unwrap();
        assert_eq!(adl.pes.len(), 3);
        // All 12 operators covered exactly once.
        let covered: usize = adl.pes.iter().map(|pe| pe.operators.len()).sum();
        assert_eq!(covered, 12);
        // At least one composite instance is split across PEs OR two
        // instances share a PE — the disambiguation premise of the paper.
        let pe_of = |name: &str| adl.pe_of(name).unwrap();
        let c1_pes: std::collections::BTreeSet<usize> = ["c1.op3", "c1.op4", "c1.op5", "c1.op6"]
            .iter()
            .map(|n| pe_of(n))
            .collect();
        let shared = adl.pes.iter().any(|pe| {
            pe.operators.iter().any(|o| o.starts_with("c1."))
                && pe.operators.iter().any(|o| o.starts_with("c2."))
        });
        assert!(c1_pes.len() > 1 || shared);
    }

    #[test]
    fn colocation_fuses_and_orders_pes_deterministically() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "s",
            OperatorInvocation::new("Beacon").source().colocate("g"),
        );
        m.operator("f", OperatorInvocation::new("Filter").colocate("g"));
        m.operator("k", OperatorInvocation::new("Sink").sink());
        m.pipe("s", "f");
        m.pipe("f", "k");
        let model = app.build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        assert_eq!(adl.pes.len(), 2);
        assert_eq!(adl.pes[0].operators, vec!["s".to_string(), "f".to_string()]);
        assert_eq!(adl.pes[1].operators, vec!["k".to_string()]);
    }

    #[test]
    fn fuse_all_single_pe() {
        let adl = compile(
            &figure2_model(),
            CompileOptions {
                fusion: FusionPolicy::FuseAll,
            },
        )
        .unwrap();
        assert_eq!(adl.pes.len(), 1);
        assert_eq!(adl.pes[0].operators.len(), 12);
    }

    #[test]
    fn exlocation_conflict_detected() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "a",
            OperatorInvocation::new("X")
                .source()
                .colocate("g")
                .exlocate("repl"),
        );
        m.operator(
            "b",
            OperatorInvocation::new("Y")
                .sink()
                .colocate("g")
                .exlocate("repl"),
        );
        m.pipe("a", "b");
        let model = app.build(m.build().unwrap()).unwrap();
        assert!(matches!(
            compile(&model, CompileOptions::default()),
            Err(ModelError::ConstraintConflict(_))
        ));
    }

    #[test]
    fn exlocation_respected_by_target_fusion() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator("a", OperatorInvocation::new("X").source().exlocate("r"));
        m.operator("b", OperatorInvocation::new("Y").exlocate("r"));
        m.operator("c", OperatorInvocation::new("Z").sink());
        m.pipe("a", "b");
        m.pipe("b", "c");
        let model = app.build(m.build().unwrap()).unwrap();
        let adl = compile(
            &model,
            CompileOptions {
                fusion: FusionPolicy::Target(1),
            },
        )
        .unwrap();
        // a and b can never merge; best possible is 2 PEs.
        assert_eq!(adl.pes.len(), 2);
        assert_ne!(adl.pe_of("a"), adl.pe_of("b"));
    }

    #[test]
    fn host_pool_conflict_detected() {
        let mut app = AppModelBuilder::new("A");
        app.host_pool(HostPool::explicit("p1", &["h1"]));
        app.host_pool(HostPool::explicit("p2", &["h2"]));
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "a",
            OperatorInvocation::new("X")
                .source()
                .colocate("g")
                .host_pool("p1"),
        );
        m.operator(
            "b",
            OperatorInvocation::new("Y")
                .sink()
                .colocate("g")
                .host_pool("p2"),
        );
        m.pipe("a", "b");
        let model = app.build(m.build().unwrap()).unwrap();
        assert!(matches!(
            compile(&model, CompileOptions::default()),
            Err(ModelError::ConstraintConflict(_))
        ));
    }

    #[test]
    fn unknown_host_pool_rejected() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "a",
            OperatorInvocation::new("X").source().host_pool("ghost"),
        );
        let model = app.build(m.build().unwrap()).unwrap();
        assert!(matches!(
            compile(&model, CompileOptions::default()),
            Err(ModelError::Unknown(_))
        ));
    }

    #[test]
    fn import_export_carried_into_adl() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "in",
            OperatorInvocation::new("Import")
                .source()
                .import_spec(ImportSpec::by_id("feed")),
        );
        m.operator(
            "out",
            OperatorInvocation::new("Export")
                .sink()
                .ports(1, 1)
                .export(0, ExportSpec::by_id("results")),
        );
        m.pipe("in", "out");
        let model = app.build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();
        assert_eq!(adl.imports.len(), 1);
        assert_eq!(adl.imports[0].op, "in");
        assert_eq!(adl.exports.len(), 1);
        assert_eq!(adl.exports[0].spec.stream_id.as_deref(), Some("results"));
    }

    #[test]
    fn import_on_non_source_rejected() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator(
            "bad",
            OperatorInvocation::new("Import")
                .ports(1, 1)
                .import_spec(ImportSpec::by_id("feed")),
        );
        let model = app.build(m.build().unwrap()).unwrap();
        assert!(compile(&model, CompileOptions::default()).is_err());
    }

    #[test]
    fn bad_stream_port_rejected() {
        let app = AppModelBuilder::new("A");
        let mut m = CompositeGraphBuilder::main();
        m.operator("a", OperatorInvocation::new("X").source());
        m.operator("b", OperatorInvocation::new("Y").sink());
        m.stream("a", 3, "b", 0);
        let model = app.build(m.build().unwrap()).unwrap();
        assert!(matches!(
            compile(&model, CompileOptions::default()),
            Err(ModelError::BadPort(_))
        ));
    }

    #[test]
    fn nested_composites_flatten_with_full_paths() {
        let mut inner = CompositeGraphBuilder::new("inner", 1, 1);
        inner.operator("w", OperatorInvocation::new("Work"));
        inner.bind_input(0, "w", 0);
        inner.bind_output("w", 0);

        let mut outer = CompositeGraphBuilder::new("outer", 1, 1);
        outer.composite("i", "inner");
        outer.bind_input(0, "i", 0);
        outer.bind_output("i", 0);

        let mut app = AppModelBuilder::new("Nested");
        app.add_composite(inner.build().unwrap()).unwrap();
        app.add_composite(outer.build().unwrap()).unwrap();
        let mut m = CompositeGraphBuilder::main();
        m.operator("src", OperatorInvocation::new("Beacon").source());
        m.composite("o", "outer");
        m.operator("snk", OperatorInvocation::new("Sink").sink());
        m.pipe("src", "o");
        m.pipe("o", "snk");
        let model = app.build(m.build().unwrap()).unwrap();
        let adl = compile(&model, CompileOptions::default()).unwrap();

        let w = adl.operator("o.i.w").unwrap();
        assert_eq!(
            w.composite_path,
            vec![
                ("o".to_string(), "outer".to_string()),
                ("o.i".to_string(), "inner".to_string())
            ]
        );
        assert!(adl.streams.contains(&AdlStream {
            from_op: "src".into(),
            from_port: 0,
            to_op: "o.i.w".into(),
            to_port: 0
        }));
        assert!(adl.streams.contains(&AdlStream {
            from_op: "o.i.w".into(),
            from_port: 0,
            to_op: "snk".into(),
            to_port: 0
        }));
    }

    #[test]
    fn adl_roundtrips_through_xml_after_compile() {
        let adl = compile(&figure2_model(), CompileOptions::default()).unwrap();
        let parsed = Adl::from_xml_str(&adl.to_xml_string()).unwrap();
        assert_eq!(parsed, adl);
    }
}
