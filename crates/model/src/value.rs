//! Dynamically typed attribute values and tuple schemas.
//!
//! SPL is statically typed; here tuples carry [`Value`]s checked against a
//! [`Schema`] at stream-connection boundaries. This keeps the operator
//! library generic without code generation (the SPL compiler generates C++
//! per invocation — out of scope per DESIGN.md).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Type of a tuple attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    Int,
    Float,
    Str,
    Bool,
    /// Milliseconds since run start (simulation time).
    Timestamp,
    /// Homogeneous-by-convention list (not enforced element-wise).
    List,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "str",
            AttrType::Bool => "bool",
            AttrType::Timestamp => "timestamp",
            AttrType::List => "list",
        };
        f.write_str(s)
    }
}

impl AttrType {
    /// Parses the textual form produced by `Display` (used by the ADL
    /// parser).
    pub fn parse(s: &str) -> Option<AttrType> {
        Some(match s {
            "int" => AttrType::Int,
            "float" => AttrType::Float,
            "str" => AttrType::Str,
            "bool" => AttrType::Bool,
            "timestamp" => AttrType::Timestamp,
            "list" => AttrType::List,
            _ => return None,
        })
    }
}

/// A dynamically typed attribute value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Timestamp(u64),
    List(Vec<Value>),
}

impl Value {
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Str(_) => AttrType::Str,
            Value::Bool(_) => AttrType::Bool,
            Value::Timestamp(_) => AttrType::Timestamp,
            Value::List(_) => AttrType::List,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: ints and floats both coerce to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_timestamp(&self) -> Option<u64> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Canonical single-line rendering used in ADL attributes and traces.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => format!("i:{v}"),
            Value::Float(v) => {
                // `{:?}` keeps round-trippable precision for f64.
                format!("f:{v:?}")
            }
            Value::Str(s) => format!("s:{}", escape_str(s)),
            Value::Bool(b) => format!("b:{b}"),
            Value::Timestamp(t) => format!("t:{t}"),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(|v| v.render()).collect();
                format!("l:[{}]", inner.join("\u{1f}"))
            }
        }
    }

    /// Parses the `render` form.
    pub fn parse(s: &str) -> Option<Value> {
        let (tag, rest) = s.split_once(':')?;
        Some(match tag {
            "i" => Value::Int(rest.parse().ok()?),
            "f" => Value::Float(rest.parse().ok()?),
            "s" => Value::Str(unescape_str(rest)?),
            "b" => Value::Bool(rest.parse().ok()?),
            "t" => Value::Timestamp(rest.parse().ok()?),
            "l" => {
                let inner = rest.strip_prefix('[')?.strip_suffix(']')?;
                if inner.is_empty() {
                    Value::List(Vec::new())
                } else {
                    let items: Option<Vec<Value>> = split_top_level(inner)
                        .into_iter()
                        .map(Value::parse)
                        .collect();
                    Value::List(items?)
                }
            }
            _ => return None,
        })
    }
}

/// Escapes the characters that the list renderer treats structurally, so a
/// bracket-depth scan over a rendered list never mistakes string content for
/// structure.
fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\u{1f}' => out.push_str("\\u"),
            '[' => out.push_str("\\l"),
            ']' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_str(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('u') => out.push('\u{1f}'),
            Some('l') => out.push('['),
            Some('r') => out.push(']'),
            _ => return None,
        }
    }
    Some(out)
}

/// Splits a rendered list body on the separator, honouring nesting depth.
fn split_top_level(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            '\u{1f}' if depth == 0 => {
                out.push(&inner[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push(&inner[start..]);
    out
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Ordered attribute-name → type mapping describing tuples on a stream.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<(String, AttrType)>,
}

impl Schema {
    pub fn new() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Builder-style field addition.
    ///
    /// # Panics
    /// Panics on duplicate field names — schemas are authored in code, so
    /// this is a programming error, not a runtime condition.
    pub fn field(mut self, name: &str, ty: AttrType) -> Self {
        assert!(
            !self.fields.iter().any(|(n, _)| n == name),
            "duplicate schema field {name}"
        );
        self.fields.push((name.to_string(), ty));
        self
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn fields(&self) -> &[(String, AttrType)] {
        &self.fields
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    pub fn type_of(&self, name: &str) -> Option<AttrType> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    /// Checks that `values` conform positionally to this schema.
    pub fn check(&self, values: &[Value]) -> bool {
        values.len() == self.fields.len()
            && values
                .iter()
                .zip(&self.fields)
                .all(|(v, (_, t))| v.attr_type() == *t)
    }
}

/// Convenience alias used throughout for operator parameter maps.
pub type ParamMap = BTreeMap<String, Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Timestamp(9).as_timestamp(), Some(9));
        assert_eq!(Value::Timestamp(9).as_f64(), Some(9.0));
        assert!(Value::Str("x".into()).as_int().is_none());
        let l = Value::List(vec![Value::Int(1)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::from(String::from("b")), Value::Str("b".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn render_parse_roundtrip() {
        let values = vec![
            Value::Int(-42),
            Value::Float(3.25),
            Value::Float(-0.1),
            Value::Str("hello world: with colon".into()),
            Value::Bool(false),
            Value::Timestamp(123456),
            Value::List(vec![Value::Int(1), Value::Str("a".into())]),
            Value::List(vec![]),
            Value::List(vec![Value::List(vec![Value::Bool(true)])]),
        ];
        for v in values {
            let s = v.render();
            assert_eq!(Value::parse(&s), Some(v.clone()), "roundtrip of {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Value::parse(""), None);
        assert_eq!(Value::parse("x:1"), None);
        assert_eq!(Value::parse("i:notanint"), None);
        assert_eq!(Value::parse("l:nobrackets"), None);
    }

    #[test]
    fn attr_type_roundtrip() {
        for t in [
            AttrType::Int,
            AttrType::Float,
            AttrType::Str,
            AttrType::Bool,
            AttrType::Timestamp,
            AttrType::List,
        ] {
            assert_eq!(AttrType::parse(&t.to_string()), Some(t));
        }
        assert_eq!(AttrType::parse("nope"), None);
    }

    #[test]
    fn schema_lookup_and_check() {
        let s = Schema::new()
            .field("sym", AttrType::Str)
            .field("price", AttrType::Float)
            .field("ts", AttrType::Timestamp);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.type_of("ts"), Some(AttrType::Timestamp));
        assert_eq!(s.type_of("none"), None);
        assert!(s.check(&[
            Value::Str("IBM".into()),
            Value::Float(100.0),
            Value::Timestamp(1)
        ]));
        assert!(!s.check(&[Value::Str("IBM".into()), Value::Float(100.0)]));
        assert!(!s.check(&[Value::Float(1.0), Value::Float(100.0), Value::Timestamp(1)]));
    }

    #[test]
    #[should_panic(expected = "duplicate schema field")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new()
            .field("a", AttrType::Int)
            .field("a", AttrType::Int);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert!(s.check(&[]));
    }
}
