//! SPL-like application model for the System S reproduction.
//!
//! This crate captures everything the paper assumes of the SPL compiler and
//! its artifacts (§2.1):
//!
//! - a **logical model**: applications assembled from operator invocations and
//!   reusable *composite operators* (hierarchical sub-graphs), streams between
//!   ports, stream *import/export* specifications, *host pools*, and
//!   partition/placement constraints ([`logical`]),
//! - a **compiler** that expands composite instances, partitions operators
//!   into processing elements (PEs) honoring colocation/exlocation
//!   constraints, and assigns PEs to hosts ([`compiler`]),
//! - the **ADL** — the XML application description produced by compilation and
//!   consumed by the runtime (SAM) and by the orchestrator's in-memory graph
//!   representation ([`adl`], [`xml`]),
//! - a queryable **graph store** with logical↔physical mapping and recursive
//!   composite-containment queries ([`graph`]) — the substrate for both the
//!   orchestrator's event-scope matching and its inspection API.

pub mod adl;
pub mod compiler;
pub mod error;
pub mod graph;
pub mod logical;
pub mod value;
pub mod verify;
pub mod xml;

pub use adl::{Adl, AdlExport, AdlImport, AdlOperator, AdlPe, AdlStream};
pub use compiler::{compile, CompileOptions, FusionPolicy};
pub use error::ModelError;
pub use graph::GraphStore;
pub use logical::{
    AppModel, AppModelBuilder, CompositeDef, CompositeGraphBuilder, ExportSpec, HostPool,
    ImportSpec, NodeRef, OperatorInvocation,
};
pub use value::{AttrType, Schema, Value};
pub use verify::{graph_is_sound, verify_graph, Severity, VerifyDiagnostic, VerifyOptions};
