//! In-memory stream-graph representation with logical and physical views.
//!
//! This is the paper's third key concept (§1): a queryable representation,
//! built from the ADL, that lets adaptation logic relate the *logical* view
//! (operators nested in composite instances) to the *physical* view
//! (operators fused into PEs placed on hosts). The ORCA service maintains one
//! per managed application and answers inspection queries such as "which
//! operators reside in PE x?" and "what is the enclosing composite of
//! operator y?" (§4.2).

use crate::adl::{Adl, AdlExport, AdlImport, AdlPe, AdlStream};
use crate::value::ParamMap;
use std::collections::BTreeMap;

/// One composite operator *instance* discovered in the ADL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompositeInstance {
    /// Instance path, e.g. `"c1"` or `"o.i"`.
    pub path: String,
    /// Composite type name, e.g. `"composite1"`.
    pub type_name: String,
    /// Index of the parent composite instance, if nested.
    pub parent: Option<usize>,
}

/// Operator metadata extracted from the ADL.
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorMeta {
    pub name: String,
    pub kind: String,
    pub pe: usize,
    /// Indices into [`GraphStore::composite_instances`], outermost first.
    pub composite_chain: Vec<usize>,
    pub custom_metrics: Vec<String>,
    pub params: ParamMap,
    pub inputs: usize,
    pub outputs: usize,
    pub restartable: bool,
    pub checkpointable: bool,
}

/// Queryable logical+physical graph for one application.
#[derive(Clone, Debug)]
pub struct GraphStore {
    app_name: String,
    ops: Vec<OperatorMeta>,
    op_index: BTreeMap<String, usize>,
    pes: Vec<AdlPe>,
    pe_ops: Vec<Vec<usize>>,
    composites: Vec<CompositeInstance>,
    comp_index: BTreeMap<String, usize>,
    streams: Vec<AdlStream>,
    /// op index -> (downstream op index, from_port, to_port)
    downstream: Vec<Vec<(usize, usize, usize)>>,
    upstream: Vec<Vec<(usize, usize, usize)>>,
    imports: Vec<AdlImport>,
    exports: Vec<AdlExport>,
}

impl GraphStore {
    /// Builds the store from a compiled ADL.
    pub fn from_adl(adl: &Adl) -> Self {
        let mut composites: Vec<CompositeInstance> = Vec::new();
        let mut comp_index: BTreeMap<String, usize> = BTreeMap::new();

        let mut ops = Vec::with_capacity(adl.operators.len());
        let mut op_index = BTreeMap::new();
        for op in &adl.operators {
            let mut chain = Vec::with_capacity(op.composite_path.len());
            let mut parent: Option<usize> = None;
            for (inst, ty) in &op.composite_path {
                let idx = *comp_index.entry(inst.clone()).or_insert_with(|| {
                    composites.push(CompositeInstance {
                        path: inst.clone(),
                        type_name: ty.clone(),
                        parent,
                    });
                    composites.len() - 1
                });
                chain.push(idx);
                parent = Some(idx);
            }
            op_index.insert(op.name.clone(), ops.len());
            ops.push(OperatorMeta {
                name: op.name.clone(),
                kind: op.kind.clone(),
                pe: op.pe,
                composite_chain: chain,
                custom_metrics: op.custom_metrics.clone(),
                params: op.params.clone(),
                inputs: op.inputs,
                outputs: op.outputs,
                restartable: op.restartable,
                checkpointable: op.checkpointable,
            });
        }

        let mut pe_ops = vec![Vec::new(); adl.pes.len()];
        for (i, op) in ops.iter().enumerate() {
            pe_ops[op.pe].push(i);
        }

        let mut downstream = vec![Vec::new(); ops.len()];
        let mut upstream = vec![Vec::new(); ops.len()];
        for s in &adl.streams {
            let (Some(&from), Some(&to)) = (op_index.get(&s.from_op), op_index.get(&s.to_op))
            else {
                continue;
            };
            downstream[from].push((to, s.from_port, s.to_port));
            upstream[to].push((from, s.from_port, s.to_port));
        }

        GraphStore {
            app_name: adl.app_name.clone(),
            ops,
            op_index,
            pes: adl.pes.clone(),
            pe_ops,
            composites,
            comp_index,
            streams: adl.streams.clone(),
            downstream,
            upstream,
            imports: adl.imports.clone(),
            exports: adl.exports.clone(),
        }
    }

    pub fn app_name(&self) -> &str {
        &self.app_name
    }

    pub fn num_operators(&self) -> usize {
        self.ops.len()
    }

    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    pub fn operators(&self) -> impl Iterator<Item = &OperatorMeta> {
        self.ops.iter()
    }

    pub fn operator(&self, name: &str) -> Option<&OperatorMeta> {
        self.op_index.get(name).map(|&i| &self.ops[i])
    }

    pub fn pe_info(&self, pe: usize) -> Option<&AdlPe> {
        self.pes.get(pe)
    }

    pub fn streams(&self) -> &[AdlStream] {
        &self.streams
    }

    pub fn imports(&self) -> &[AdlImport] {
        &self.imports
    }

    pub fn exports(&self) -> &[AdlExport] {
        &self.exports
    }

    /// "Which stream operators reside in PE with id x?" (§4.2)
    pub fn operators_in_pe(&self, pe: usize) -> Vec<&OperatorMeta> {
        self.pe_ops
            .get(pe)
            .map(|idxs| idxs.iter().map(|&i| &self.ops[i]).collect())
            .unwrap_or_default()
    }

    /// "What is the PE id for operator instance y?" (§4.2)
    pub fn pe_of_operator(&self, name: &str) -> Option<usize> {
        self.operator(name).map(|o| o.pe)
    }

    /// All composite instances in the application.
    pub fn composite_instances(&self) -> &[CompositeInstance] {
        &self.composites
    }

    pub fn composite_instance(&self, path: &str) -> Option<&CompositeInstance> {
        self.comp_index.get(path).map(|&i| &self.composites[i])
    }

    /// "What is the enclosing composite operator instance name for operator
    /// instance y?" — innermost enclosing composite (§4.2).
    pub fn enclosing_composite(&self, op_name: &str) -> Option<&CompositeInstance> {
        let op = self.operator(op_name)?;
        op.composite_chain.last().map(|&i| &self.composites[i])
    }

    /// The full enclosing chain, outermost first.
    pub fn composite_chain(&self, op_name: &str) -> Vec<&CompositeInstance> {
        self.operator(op_name)
            .map(|o| {
                o.composite_chain
                    .iter()
                    .map(|&i| &self.composites[i])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// "Which composites reside in PE with id x?" — composite instances with
    /// at least one operator in the PE (§4.2).
    pub fn composites_in_pe(&self, pe: usize) -> Vec<&CompositeInstance> {
        let mut seen = vec![false; self.composites.len()];
        let mut out = Vec::new();
        for op in self.operators_in_pe(pe) {
            for &c in &op.composite_chain {
                if !seen[c] {
                    seen[c] = true;
                    out.push(&self.composites[c]);
                }
            }
        }
        out
    }

    /// Is `op_name` contained (recursively) in any composite instance of the
    /// given *type*? This is the recursive-containment relation the paper
    /// contrasts with a recursive SQL query (§4.1).
    pub fn op_in_composite_type(&self, op_name: &str, comp_type: &str) -> bool {
        self.operator(op_name).is_some_and(|o| {
            o.composite_chain
                .iter()
                .any(|&c| self.composites[c].type_name == comp_type)
        })
    }

    /// Is `op_name` contained (recursively) in the composite *instance* with
    /// the given path?
    pub fn op_in_composite_instance(&self, op_name: &str, comp_path: &str) -> bool {
        self.operator(op_name).is_some_and(|o| {
            o.composite_chain
                .iter()
                .any(|&c| self.composites[c].path == comp_path)
        })
    }

    /// All operators contained (recursively) in instances of a composite
    /// type.
    pub fn operators_in_composite_type(&self, comp_type: &str) -> Vec<&OperatorMeta> {
        self.ops
            .iter()
            .filter(|o| {
                o.composite_chain
                    .iter()
                    .any(|&c| self.composites[c].type_name == comp_type)
            })
            .collect()
    }

    /// All operators of a given operator kind.
    pub fn operators_of_kind(&self, kind: &str) -> Vec<&OperatorMeta> {
        self.ops.iter().filter(|o| o.kind == kind).collect()
    }

    /// All operators declaring a custom metric with the given name.
    pub fn operators_with_custom_metric(&self, metric: &str) -> Vec<&OperatorMeta> {
        self.ops
            .iter()
            .filter(|o| o.custom_metrics.iter().any(|m| m == metric))
            .collect()
    }

    /// Downstream neighbours of an operator: `(operator, from_port, to_port)`.
    pub fn downstream_of(&self, op_name: &str) -> Vec<(&OperatorMeta, usize, usize)> {
        self.op_index
            .get(op_name)
            .map(|&i| {
                self.downstream[i]
                    .iter()
                    .map(|&(j, fp, tp)| (&self.ops[j], fp, tp))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Upstream neighbours of an operator: `(operator, from_port, to_port)`.
    pub fn upstream_of(&self, op_name: &str) -> Vec<(&OperatorMeta, usize, usize)> {
        self.op_index
            .get(op_name)
            .map(|&i| {
                self.upstream[i]
                    .iter()
                    .map(|&(j, fp, tp)| (&self.ops[j], fp, tp))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// PEs that contain at least one operator of the given composite
    /// instance — the physical footprint of a logical unit.
    pub fn pes_of_composite_instance(&self, comp_path: &str) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .ops
            .iter()
            .filter(|o| {
                o.composite_chain
                    .iter()
                    .any(|&c| self.composites[c].path == comp_path)
            })
            .map(|o| o.pe)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adl::AdlOperator;
    use crate::logical::HostPool;

    /// Hand-build an ADL matching the paper's Figure 2/3: two composite
    /// instances (c1, c2), with c1 split across PEs 0-1 and c2 fused fully
    /// into PE 1, plus sources/sinks in PE 2.
    fn figure3_adl() -> Adl {
        let mk = |name: &str, kind: &str, path: Vec<(&str, &str)>, pe: usize| AdlOperator {
            name: name.into(),
            kind: kind.into(),
            composite_path: path
                .into_iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            params: ParamMap::new(),
            inputs: 1,
            outputs: 1,
            custom_metrics: if kind == "Split" {
                vec!["queueSize".into()]
            } else {
                vec![]
            },
            pe,
            restartable: true,
            checkpointable: true,
        };
        let c1 = vec![("c1", "composite1")];
        let c2 = vec![("c2", "composite1")];
        let operators = vec![
            mk("op1", "Beacon", vec![], 2),
            mk("op2", "Beacon", vec![], 2),
            mk("c1.op3", "Split", c1.clone(), 0),
            mk("c1.op4", "Work", c1.clone(), 0),
            mk("c1.op5", "Work", c1.clone(), 1),
            mk("c1.op6", "Merge", c1.clone(), 1),
            mk("c2.op3", "Split", c2.clone(), 1),
            mk("c2.op4", "Work", c2.clone(), 1),
            mk("c2.op5", "Work", c2.clone(), 1),
            mk("c2.op6", "Merge", c2.clone(), 1),
            mk("op7", "Sink", vec![], 2),
            mk("op8", "Sink", vec![], 2),
        ];
        let pes = (0..3)
            .map(|i| AdlPe {
                index: i,
                operators: operators
                    .iter()
                    .filter(|o| o.pe == i)
                    .map(|o| o.name.clone())
                    .collect(),
                host_pool: None,
                host_exlocate: None,
            })
            .collect();
        let streams = vec![
            AdlStream {
                from_op: "op1".into(),
                from_port: 0,
                to_op: "c1.op3".into(),
                to_port: 0,
            },
            AdlStream {
                from_op: "c1.op3".into(),
                from_port: 0,
                to_op: "c1.op4".into(),
                to_port: 0,
            },
            AdlStream {
                from_op: "c1.op4".into(),
                from_port: 0,
                to_op: "c1.op6".into(),
                to_port: 0,
            },
            AdlStream {
                from_op: "c1.op6".into(),
                from_port: 0,
                to_op: "op7".into(),
                to_port: 0,
            },
        ];
        Adl {
            app_name: "Figure2".into(),
            operators,
            pes,
            streams,
            imports: vec![],
            exports: vec![],
            host_pools: vec![HostPool::explicit("p", &["h1", "h2"])],
        }
    }

    #[test]
    fn basic_lookups() {
        let g = GraphStore::from_adl(&figure3_adl());
        assert_eq!(g.app_name(), "Figure2");
        assert_eq!(g.num_operators(), 12);
        assert_eq!(g.num_pes(), 3);
        assert_eq!(g.pe_of_operator("c1.op5"), Some(1));
        assert_eq!(g.pe_of_operator("ghost"), None);
        assert_eq!(g.operator("c2.op3").unwrap().kind, "Split");
    }

    #[test]
    fn operators_in_pe_reflects_physical_layout() {
        let g = GraphStore::from_adl(&figure3_adl());
        let pe1: Vec<&str> = g
            .operators_in_pe(1)
            .iter()
            .map(|o| o.name.as_str())
            .collect();
        assert_eq!(
            pe1,
            vec!["c1.op5", "c1.op6", "c2.op3", "c2.op4", "c2.op5", "c2.op6"]
        );
        assert!(g.operators_in_pe(99).is_empty());
    }

    #[test]
    fn composites_in_pe_disambiguates() {
        let g = GraphStore::from_adl(&figure3_adl());
        // PE 1 hosts operators from both composite instances.
        let comps: Vec<&str> = g
            .composites_in_pe(1)
            .iter()
            .map(|c| c.path.as_str())
            .collect();
        assert_eq!(comps, vec!["c1", "c2"]);
        // PE 2 hosts only top-level operators.
        assert!(g.composites_in_pe(2).is_empty());
    }

    #[test]
    fn enclosing_composite_and_chain() {
        let g = GraphStore::from_adl(&figure3_adl());
        let enc = g.enclosing_composite("c1.op4").unwrap();
        assert_eq!(enc.path, "c1");
        assert_eq!(enc.type_name, "composite1");
        assert!(g.enclosing_composite("op1").is_none());
        assert_eq!(g.composite_chain("c2.op6").len(), 1);
        assert!(g.composite_chain("ghost").is_empty());
    }

    #[test]
    fn recursive_type_containment() {
        let g = GraphStore::from_adl(&figure3_adl());
        assert!(g.op_in_composite_type("c1.op3", "composite1"));
        assert!(!g.op_in_composite_type("op1", "composite1"));
        assert!(!g.op_in_composite_type("c1.op3", "other"));
        assert_eq!(g.operators_in_composite_type("composite1").len(), 8);
        assert!(g.op_in_composite_instance("c1.op3", "c1"));
        assert!(!g.op_in_composite_instance("c1.op3", "c2"));
    }

    #[test]
    fn kind_and_metric_queries() {
        let g = GraphStore::from_adl(&figure3_adl());
        assert_eq!(g.operators_of_kind("Split").len(), 2);
        assert_eq!(g.operators_with_custom_metric("queueSize").len(), 2);
        assert!(g.operators_with_custom_metric("none").is_empty());
    }

    #[test]
    fn adjacency_queries() {
        let g = GraphStore::from_adl(&figure3_adl());
        let down: Vec<&str> = g
            .downstream_of("c1.op3")
            .iter()
            .map(|(o, _, _)| o.name.as_str())
            .collect();
        assert_eq!(down, vec!["c1.op4"]);
        let up: Vec<&str> = g
            .upstream_of("c1.op3")
            .iter()
            .map(|(o, _, _)| o.name.as_str())
            .collect();
        assert_eq!(up, vec!["op1"]);
        assert!(g.downstream_of("ghost").is_empty());
    }

    #[test]
    fn physical_footprint_of_composite() {
        let g = GraphStore::from_adl(&figure3_adl());
        assert_eq!(g.pes_of_composite_instance("c1"), vec![0, 1]);
        assert_eq!(g.pes_of_composite_instance("c2"), vec![1]);
        assert!(g.pes_of_composite_instance("ghost").is_empty());
    }

    #[test]
    fn nested_composite_instances_get_parents() {
        let mut adl = figure3_adl();
        adl.operators.push(AdlOperator {
            name: "c1.inner.opx".into(),
            kind: "Work".into(),
            composite_path: vec![
                ("c1".into(), "composite1".into()),
                ("c1.inner".into(), "inner".into()),
            ],
            params: ParamMap::new(),
            inputs: 1,
            outputs: 1,
            custom_metrics: vec![],
            pe: 0,
            restartable: true,
            checkpointable: true,
        });
        adl.pes[0].operators.push("c1.inner.opx".into());
        let g = GraphStore::from_adl(&adl);
        let inner = g.composite_instance("c1.inner").unwrap();
        let parent = inner.parent.unwrap();
        assert_eq!(g.composite_instances()[parent].path, "c1");
        // Nested op is recursively contained in composite1.
        assert!(g.op_in_composite_type("c1.inner.opx", "composite1"));
        assert!(g.op_in_composite_type("c1.inner.opx", "inner"));
    }
}
