//! The ADL: the flat application description produced by compilation.
//!
//! Mirrors the paper's XML ADL (§2.1): operator instances with their
//! composite-containment relationship, PE partitioning, host placement
//! constraints, stream edges, and import/export specs. The runtime (SAM)
//! instantiates applications from it, and the ORCA service builds its
//! in-memory stream-graph representation from it (§3).

use crate::error::ModelError;
use crate::logical::{ExportSpec, HostPool, ImportSpec};
use crate::value::{ParamMap, Value};
use crate::xml::{self, XmlNode};
use serde::{Deserialize, Serialize};

/// One flattened operator instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdlOperator {
    /// Full instance name: composite instance path joined with '.', e.g.
    /// `"c1.op3"` for op3 inside composite instance c1 (the paper's op3').
    pub name: String,
    pub kind: String,
    /// Enclosing composite instances, outermost first:
    /// `(instance_path, composite_type)` pairs.
    pub composite_path: Vec<(String, String)>,
    pub params: ParamMap,
    pub inputs: usize,
    pub outputs: usize,
    pub custom_metrics: Vec<String>,
    /// Index into [`Adl::pes`].
    pub pe: usize,
    pub restartable: bool,
    /// Whether the runtime may checkpoint/restore this operator's state
    /// across PE restarts (a PE is checkpointed only when *all* its fused
    /// operators are checkpointable).
    pub checkpointable: bool,
}

/// One processing element (operating-system process at runtime).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdlPe {
    pub index: usize,
    /// Operator instance names fused into this PE, in topological-ish order.
    pub operators: Vec<String>,
    /// Host pool the PE must be placed in (None = default pool).
    pub host_pool: Option<String>,
    /// PEs sharing a host-exlocation tag must land on distinct hosts.
    pub host_exlocate: Option<String>,
}

/// A flat stream edge between operator instances.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdlStream {
    pub from_op: String,
    pub from_port: usize,
    pub to_op: String,
    pub to_port: usize,
}

/// An import subscription attached to a source operator instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdlImport {
    pub op: String,
    pub spec: ImportSpec,
}

/// An exported output port of an operator instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdlExport {
    pub op: String,
    pub port: usize,
    pub spec: ExportSpec,
}

/// The complete compiled application description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Adl {
    pub app_name: String,
    pub operators: Vec<AdlOperator>,
    pub pes: Vec<AdlPe>,
    pub streams: Vec<AdlStream>,
    pub imports: Vec<AdlImport>,
    pub exports: Vec<AdlExport>,
    pub host_pools: Vec<HostPool>,
}

impl Adl {
    pub fn operator(&self, name: &str) -> Option<&AdlOperator> {
        self.operators.iter().find(|o| o.name == name)
    }

    pub fn pe_of(&self, op_name: &str) -> Option<usize> {
        self.operator(op_name).map(|o| o.pe)
    }

    /// Rewrites every host pool to be exclusive, cloning pool identity per
    /// application instance. This is the §4.3 actuation: "run only in
    /// exclusive host pools". Called by the ORCA service before submission.
    pub fn make_host_pools_exclusive(&mut self, uniquifier: &str) {
        if self.host_pools.is_empty() {
            // Synthesize a default pool so exclusivity is expressible.
            self.host_pools.push(HostPool {
                name: format!("default@{uniquifier}"),
                hosts: Vec::new(),
                tag: None,
                exclusive: true,
            });
            for pe in &mut self.pes {
                if pe.host_pool.is_none() {
                    pe.host_pool = Some(format!("default@{uniquifier}"));
                }
            }
            return;
        }
        for pool in &mut self.host_pools {
            let old = pool.name.clone();
            pool.name = format!("{old}@{uniquifier}");
            pool.exclusive = true;
            for pe in &mut self.pes {
                if pe.host_pool.as_deref() == Some(old.as_str()) {
                    pe.host_pool = Some(pool.name.clone());
                }
            }
        }
        for pe in &mut self.pes {
            if pe.host_pool.is_none() {
                pe.host_pool = Some(self.host_pools[0].name.clone());
            }
        }
    }

    /// Serializes to the XML ADL document.
    pub fn to_xml(&self) -> XmlNode {
        let mut root = XmlNode::new("adl").attr("application", self.app_name.clone());

        let mut ops = XmlNode::new("operators");
        for op in &self.operators {
            let mut node = XmlNode::new("operator")
                .attr("name", op.name.clone())
                .attr("kind", op.kind.clone())
                .attr("inputs", op.inputs.to_string())
                .attr("outputs", op.outputs.to_string())
                .attr("pe", op.pe.to_string())
                .attr("restartable", op.restartable.to_string())
                .attr("checkpointable", op.checkpointable.to_string());
            for (inst, ty) in &op.composite_path {
                node = node.child(
                    XmlNode::new("composite")
                        .attr("instance", inst.clone())
                        .attr("type", ty.clone()),
                );
            }
            for (k, v) in &op.params {
                node = node.child(
                    XmlNode::new("param")
                        .attr("name", k.clone())
                        .attr("value", v.render()),
                );
            }
            for m in &op.custom_metrics {
                node = node.child(XmlNode::new("metric").attr("name", m.clone()));
            }
            ops = ops.child(node);
        }
        root = root.child(ops);

        let mut pes = XmlNode::new("pes");
        for pe in &self.pes {
            let mut node = XmlNode::new("pe").attr("index", pe.index.to_string());
            if let Some(p) = &pe.host_pool {
                node = node.attr("hostPool", p.clone());
            }
            if let Some(x) = &pe.host_exlocate {
                node = node.attr("hostExlocate", x.clone());
            }
            for op in &pe.operators {
                node = node.child(XmlNode::new("operator").attr("name", op.clone()));
            }
            pes = pes.child(node);
        }
        root = root.child(pes);

        let mut streams = XmlNode::new("streams");
        for s in &self.streams {
            streams = streams.child(
                XmlNode::new("stream")
                    .attr("fromOp", s.from_op.clone())
                    .attr("fromPort", s.from_port.to_string())
                    .attr("toOp", s.to_op.clone())
                    .attr("toPort", s.to_port.to_string()),
            );
        }
        root = root.child(streams);

        let mut imports = XmlNode::new("imports");
        for imp in &self.imports {
            let mut node = XmlNode::new("import").attr("op", imp.op.clone());
            if let Some(id) = &imp.spec.stream_id {
                node = node.attr("streamId", id.clone());
            }
            if let Some(app) = &imp.spec.app_filter {
                node = node.attr("appFilter", app.clone());
            }
            for (k, v) in &imp.spec.subscription {
                node = node.child(
                    XmlNode::new("subscribe")
                        .attr("name", k.clone())
                        .attr("value", v.render()),
                );
            }
            imports = imports.child(node);
        }
        root = root.child(imports);

        let mut exports = XmlNode::new("exports");
        for exp in &self.exports {
            let mut node = XmlNode::new("export")
                .attr("op", exp.op.clone())
                .attr("port", exp.port.to_string());
            if let Some(id) = &exp.spec.stream_id {
                node = node.attr("streamId", id.clone());
            }
            for (k, v) in &exp.spec.properties {
                node = node.child(
                    XmlNode::new("property")
                        .attr("name", k.clone())
                        .attr("value", v.render()),
                );
            }
            exports = exports.child(node);
        }
        root = root.child(exports);

        let mut pools = XmlNode::new("hostPools");
        for p in &self.host_pools {
            let mut node = XmlNode::new("hostPool")
                .attr("name", p.name.clone())
                .attr("exclusive", p.exclusive.to_string());
            if let Some(tag) = &p.tag {
                node = node.attr("tag", tag.clone());
            }
            for h in &p.hosts {
                node = node.child(XmlNode::new("host").attr("name", h.clone()));
            }
            pools = pools.child(node);
        }
        root = root.child(pools);

        root
    }

    /// Renders the XML document as a string.
    pub fn to_xml_string(&self) -> String {
        self.to_xml().to_string_pretty()
    }

    /// Parses an ADL back from its XML form.
    pub fn from_xml_str(input: &str) -> Result<Adl, ModelError> {
        let root = xml::parse(input)?;
        Adl::from_xml(&root)
    }

    pub fn from_xml(root: &XmlNode) -> Result<Adl, ModelError> {
        if root.name != "adl" {
            return Err(ModelError::Parse(format!(
                "expected <adl> root, found <{}>",
                root.name
            )));
        }
        let app_name = root.require_attr("application")?.to_string();

        let parse_usize = |s: &str, what: &str| -> Result<usize, ModelError> {
            s.parse()
                .map_err(|_| ModelError::Parse(format!("bad {what}: '{s}'")))
        };
        let parse_bool = |s: &str, what: &str| -> Result<bool, ModelError> {
            s.parse()
                .map_err(|_| ModelError::Parse(format!("bad {what}: '{s}'")))
        };
        let parse_value = |s: &str| -> Result<Value, ModelError> {
            Value::parse(s).ok_or_else(|| ModelError::Parse(format!("bad value: '{s}'")))
        };

        let mut operators = Vec::new();
        for node in root.require_child("operators")?.children_named("operator") {
            let mut composite_path = Vec::new();
            for c in node.children_named("composite") {
                composite_path.push((
                    c.require_attr("instance")?.to_string(),
                    c.require_attr("type")?.to_string(),
                ));
            }
            let mut params = ParamMap::new();
            for p in node.children_named("param") {
                params.insert(
                    p.require_attr("name")?.to_string(),
                    parse_value(p.require_attr("value")?)?,
                );
            }
            let custom_metrics = node
                .children_named("metric")
                .map(|m| m.require_attr("name").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            operators.push(AdlOperator {
                name: node.require_attr("name")?.to_string(),
                kind: node.require_attr("kind")?.to_string(),
                composite_path,
                params,
                inputs: parse_usize(node.require_attr("inputs")?, "inputs")?,
                outputs: parse_usize(node.require_attr("outputs")?, "outputs")?,
                custom_metrics,
                pe: parse_usize(node.require_attr("pe")?, "pe")?,
                restartable: parse_bool(node.require_attr("restartable")?, "restartable")?,
                // Absent in pre-checkpointing documents: default on.
                checkpointable: match node.get_attr("checkpointable") {
                    None => true,
                    Some(v) => parse_bool(v, "checkpointable")?,
                },
            });
        }

        let mut pes = Vec::new();
        for node in root.require_child("pes")?.children_named("pe") {
            pes.push(AdlPe {
                index: parse_usize(node.require_attr("index")?, "pe index")?,
                operators: node
                    .children_named("operator")
                    .map(|o| o.require_attr("name").map(str::to_string))
                    .collect::<Result<Vec<_>, _>>()?,
                host_pool: node.get_attr("hostPool").map(str::to_string),
                host_exlocate: node.get_attr("hostExlocate").map(str::to_string),
            });
        }

        let mut streams = Vec::new();
        for node in root.require_child("streams")?.children_named("stream") {
            streams.push(AdlStream {
                from_op: node.require_attr("fromOp")?.to_string(),
                from_port: parse_usize(node.require_attr("fromPort")?, "fromPort")?,
                to_op: node.require_attr("toOp")?.to_string(),
                to_port: parse_usize(node.require_attr("toPort")?, "toPort")?,
            });
        }

        let mut imports = Vec::new();
        for node in root.require_child("imports")?.children_named("import") {
            let mut spec = ImportSpec {
                stream_id: node.get_attr("streamId").map(str::to_string),
                app_filter: node.get_attr("appFilter").map(str::to_string),
                ..Default::default()
            };
            for s in node.children_named("subscribe") {
                spec.subscription.insert(
                    s.require_attr("name")?.to_string(),
                    parse_value(s.require_attr("value")?)?,
                );
            }
            imports.push(AdlImport {
                op: node.require_attr("op")?.to_string(),
                spec,
            });
        }

        let mut exports = Vec::new();
        for node in root.require_child("exports")?.children_named("export") {
            let mut spec = ExportSpec {
                stream_id: node.get_attr("streamId").map(str::to_string),
                ..Default::default()
            };
            for p in node.children_named("property") {
                spec.properties.insert(
                    p.require_attr("name")?.to_string(),
                    parse_value(p.require_attr("value")?)?,
                );
            }
            exports.push(AdlExport {
                op: node.require_attr("op")?.to_string(),
                port: parse_usize(node.require_attr("port")?, "port")?,
                spec,
            });
        }

        let mut host_pools = Vec::new();
        for node in root.require_child("hostPools")?.children_named("hostPool") {
            host_pools.push(HostPool {
                name: node.require_attr("name")?.to_string(),
                hosts: node
                    .children_named("host")
                    .map(|h| h.require_attr("name").map(str::to_string))
                    .collect::<Result<Vec<_>, _>>()?,
                tag: node.get_attr("tag").map(str::to_string),
                exclusive: parse_bool(node.require_attr("exclusive")?, "exclusive")?,
            });
        }

        let adl = Adl {
            app_name,
            operators,
            pes,
            streams,
            imports,
            exports,
            host_pools,
        };
        adl.validate()?;
        Ok(adl)
    }

    /// Structural consistency checks (used after parsing and as a compiler
    /// post-condition).
    pub fn validate(&self) -> Result<(), ModelError> {
        use std::collections::BTreeSet;
        let mut names = BTreeSet::new();
        for op in &self.operators {
            if !names.insert(op.name.as_str()) {
                return Err(ModelError::DuplicateName(op.name.clone()));
            }
            if op.pe >= self.pes.len() {
                return Err(ModelError::Invalid(format!(
                    "operator {} references PE {} out of {}",
                    op.name,
                    op.pe,
                    self.pes.len()
                )));
            }
        }
        for (i, pe) in self.pes.iter().enumerate() {
            if pe.index != i {
                return Err(ModelError::Invalid(format!(
                    "PE at position {i} has index {}",
                    pe.index
                )));
            }
            for op_name in &pe.operators {
                let op = self
                    .operator(op_name)
                    .ok_or_else(|| ModelError::Unknown(format!("PE operator {op_name}")))?;
                if op.pe != i {
                    return Err(ModelError::Invalid(format!(
                        "operator {op_name} listed in PE {i} but assigned to PE {}",
                        op.pe
                    )));
                }
            }
            if let Some(pool) = &pe.host_pool {
                if !self.host_pools.iter().any(|p| &p.name == pool) {
                    return Err(ModelError::Unknown(format!("host pool {pool}")));
                }
            }
        }
        // Every operator must be listed by its PE.
        for op in &self.operators {
            if !self.pes[op.pe].operators.contains(&op.name) {
                return Err(ModelError::Invalid(format!(
                    "operator {} not listed in PE {}",
                    op.name, op.pe
                )));
            }
        }
        for s in &self.streams {
            let from = self
                .operator(&s.from_op)
                .ok_or_else(|| ModelError::Unknown(format!("stream source {}", s.from_op)))?;
            let to = self
                .operator(&s.to_op)
                .ok_or_else(|| ModelError::Unknown(format!("stream target {}", s.to_op)))?;
            if s.from_port >= from.outputs {
                return Err(ModelError::BadPort(format!(
                    "{}:{} (operator has {} outputs)",
                    s.from_op, s.from_port, from.outputs
                )));
            }
            if s.to_port >= to.inputs {
                return Err(ModelError::BadPort(format!(
                    "{}:{} (operator has {} inputs)",
                    s.to_op, s.to_port, to.inputs
                )));
            }
        }
        for imp in &self.imports {
            if self.operator(&imp.op).is_none() {
                return Err(ModelError::Unknown(format!("import operator {}", imp.op)));
            }
        }
        for exp in &self.exports {
            let op = self
                .operator(&exp.op)
                .ok_or_else(|| ModelError::Unknown(format!("export operator {}", exp.op)))?;
            if exp.port >= op.outputs {
                return Err(ModelError::BadPort(format!(
                    "export {}:{}",
                    exp.op, exp.port
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_adl() -> Adl {
        Adl {
            app_name: "Sample".into(),
            operators: vec![
                AdlOperator {
                    name: "src".into(),
                    kind: "Beacon".into(),
                    composite_path: vec![],
                    params: [("rate".to_string(), Value::Int(10))].into_iter().collect(),
                    inputs: 0,
                    outputs: 1,
                    custom_metrics: vec![],
                    pe: 0,
                    restartable: true,
                    checkpointable: true,
                },
                AdlOperator {
                    name: "c1.work".into(),
                    kind: "Work".into(),
                    composite_path: vec![("c1".into(), "comp".into())],
                    params: ParamMap::new(),
                    inputs: 1,
                    outputs: 1,
                    custom_metrics: vec!["quality".into()],
                    pe: 1,
                    restartable: false,
                    checkpointable: true,
                },
                AdlOperator {
                    name: "snk".into(),
                    kind: "Sink".into(),
                    composite_path: vec![],
                    params: ParamMap::new(),
                    inputs: 1,
                    outputs: 0,
                    custom_metrics: vec![],
                    pe: 1,
                    restartable: true,
                    checkpointable: true,
                },
            ],
            pes: vec![
                AdlPe {
                    index: 0,
                    operators: vec!["src".into()],
                    host_pool: Some("pool1".into()),
                    host_exlocate: None,
                },
                AdlPe {
                    index: 1,
                    operators: vec!["c1.work".into(), "snk".into()],
                    host_pool: None,
                    host_exlocate: Some("x".into()),
                },
            ],
            streams: vec![
                AdlStream {
                    from_op: "src".into(),
                    from_port: 0,
                    to_op: "c1.work".into(),
                    to_port: 0,
                },
                AdlStream {
                    from_op: "c1.work".into(),
                    from_port: 0,
                    to_op: "snk".into(),
                    to_port: 0,
                },
            ],
            imports: vec![AdlImport {
                op: "src".into(),
                spec: ImportSpec::by_id("feed").from_app("Other"),
            }],
            exports: vec![AdlExport {
                op: "c1.work".into(),
                port: 0,
                spec: ExportSpec::by_id("results").with_property("topic", "w"),
            }],
            host_pools: vec![HostPool::explicit("pool1", &["h1", "h2"])],
        }
    }

    #[test]
    fn xml_roundtrip() {
        let adl = sample_adl();
        let s = adl.to_xml_string();
        let parsed = Adl::from_xml_str(&s).unwrap();
        assert_eq!(parsed, adl);
    }

    #[test]
    fn validate_accepts_sample() {
        assert!(sample_adl().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_pe_ref() {
        let mut adl = sample_adl();
        adl.operators[0].pe = 9;
        assert!(adl.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_pe_listing() {
        let mut adl = sample_adl();
        adl.pes[0].operators.clear();
        assert!(adl.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_stream_port() {
        let mut adl = sample_adl();
        adl.streams[0].from_port = 5;
        assert!(matches!(adl.validate(), Err(ModelError::BadPort(_))));
    }

    #[test]
    fn validate_rejects_unknown_pool() {
        let mut adl = sample_adl();
        adl.pes[0].host_pool = Some("ghost".into());
        assert!(matches!(adl.validate(), Err(ModelError::Unknown(_))));
    }

    #[test]
    fn validate_rejects_duplicate_operator() {
        let mut adl = sample_adl();
        let dup = adl.operators[0].clone();
        adl.operators.push(dup);
        assert!(matches!(adl.validate(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn exclusive_rewrite_renames_pools() {
        let mut adl = sample_adl();
        adl.make_host_pools_exclusive("replica0");
        assert!(adl.host_pools.iter().all(|p| p.exclusive));
        assert_eq!(adl.host_pools[0].name, "pool1@replica0");
        assert_eq!(adl.pes[0].host_pool.as_deref(), Some("pool1@replica0"));
        // PE 1 had no pool; it now gets one so exclusivity is total.
        assert!(adl.pes[1].host_pool.is_some());
        assert!(adl.validate().is_ok());
    }

    #[test]
    fn exclusive_rewrite_synthesizes_default_pool() {
        let mut adl = sample_adl();
        adl.host_pools.clear();
        adl.pes[0].host_pool = None;
        adl.make_host_pools_exclusive("r1");
        assert_eq!(adl.host_pools.len(), 1);
        assert!(adl.host_pools[0].exclusive);
        assert!(adl.pes.iter().all(|pe| pe.host_pool.is_some()));
    }

    #[test]
    fn from_xml_rejects_wrong_root() {
        assert!(Adl::from_xml_str("<notadl application=\"x\"/>").is_err());
    }

    #[test]
    fn from_xml_rejects_missing_sections() {
        assert!(Adl::from_xml_str("<adl application=\"x\"/>").is_err());
    }

    #[test]
    fn pe_of_lookup() {
        let adl = sample_adl();
        assert_eq!(adl.pe_of("snk"), Some(1));
        assert_eq!(adl.pe_of("ghost"), None);
    }
}
