//! Property tests for [`sps_runtime::CheckpointStore`] eviction under a
//! finite storage budget:
//!
//! 1. eviction never leaves a protected (`Up`, checkpointable) slot without
//!    a restorable chain, for any save sequence and any budget,
//! 2. after every save + budget pass, either stored bytes fit the budget or
//!    everything still stored belongs to protected live chains (the only
//!    state eviction refuses to reclaim),
//! 3. the running `state_bytes()` counter always equals the sum of the
//!    surviving chains, and every restore generation the store advertises
//!    actually materializes.

use proptest::prelude::*;
use sps_engine::ckpt::{OpCheckpoint, PeCheckpoint, CKPT_FORMAT_VERSION};
use sps_engine::StateWriter;
use sps_runtime::{CheckpointPolicy, CheckpointStore, JobId, StorageModel};
use std::collections::BTreeSet;

/// A checkpoint whose serialized size grows with `weight` (the state blob
/// carries `weight` i64 words), so save sequences exercise uneven chains.
fn ckpt(at_secs: u64, weight: usize) -> PeCheckpoint {
    let mut w = StateWriter::new();
    for i in 0..weight as i64 + 1 {
        w.put_i64(i);
    }
    PeCheckpoint {
        format_version: CKPT_FORMAT_VERSION,
        pe_index: 0,
        taken_at: sps_sim::SimTime::from_secs(at_secs),
        ops: vec![OpCheckpoint {
            name: "agg".into(),
            kind: "Aggregate".into(),
            finals_seen: vec![false],
            blob: Some(w.finish()),
        }],
        queues: vec![vec![bytes::Bytes::new()]],
        metrics: vec![],
    }
}

/// One scripted save: which of the 4 slots, how heavy the snapshot is.
fn arb_saves() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0usize..4, 0usize..16), 1..40)
}

fn slot_key(slot: usize) -> (JobId, usize) {
    // Two jobs × two ADL slots, so eviction crosses job boundaries.
    (JobId(1 + (slot / 2) as u64), slot % 2)
}

proptest! {
    #[test]
    fn eviction_never_strands_a_protected_slot(
        saves in arb_saves(),
        full_every in 1u32..5,
        budget in 1usize..2_000,
        protected_mask in 0usize..16,
    ) {
        let mut store = CheckpointStore::for_policy(
            &CheckpointPolicy::default()
                .full_every(full_every)
                .storage(StorageModel::default().with_budget(budget)),
        );
        let protected: BTreeSet<(JobId, usize)> = (0..4)
            .filter(|s| protected_mask & (1 << s) != 0)
            .map(slot_key)
            .collect();
        let mut saved_to: BTreeSet<(JobId, usize)> = BTreeSet::new();

        for (tick, &(slot, weight)) in saves.iter().enumerate() {
            let (job, adl) = slot_key(slot);
            // Monotonically increasing timestamps keep every save accepted.
            let accepted = store.save(job, adl, ckpt(tick as u64 + 1, weight), vec![], tick as u64);
            prop_assert!(accepted);
            saved_to.insert((job, adl));
            store.enforce_budget(&protected);

            // (1) Protected slots that ever saved stay restorable.
            for &(job, adl) in protected.intersection(&saved_to) {
                prop_assert!(
                    store.latest(job, adl).is_some(),
                    "protected slot {job:?}/{adl} lost its chain under budget {budget}"
                );
            }

            // (2) Within budget, or only protected live chains remain.
            if store.state_bytes() > budget {
                let survivors: Vec<_> = saved_to
                    .iter()
                    .filter(|&&(job, adl)| store.latest(job, adl).is_some())
                    .collect();
                prop_assert!(
                    survivors.iter().all(|k| protected.contains(k)),
                    "over budget ({} > {budget}) with evictable state left",
                    store.state_bytes()
                );
                for &&(job, adl) in &survivors {
                    prop_assert_eq!(
                        store.restore_candidates(job, adl),
                        1,
                        "over budget but sealed generations survive"
                    );
                }
            }

            // (3) Every advertised restore generation materializes, and the
            // advertised read size is the bytes a restore would stream back.
            for &(job, adl) in &saved_to {
                for generation in 0..store.restore_candidates(job, adl) {
                    let cand = store.restore_candidate(job, adl, generation);
                    prop_assert!(
                        cand.is_some(),
                        "generation {generation} advertised but missing for {job:?}/{adl}"
                    );
                    prop_assert!(cand.unwrap().read_bytes > 0);
                }
            }
        }

        // Unprotected slots may have been evicted, but never silently: a
        // missing chain must carry an eviction tombstone.
        for &(job, adl) in &saved_to {
            if store.latest(job, adl).is_none() {
                prop_assert!(store.was_evicted(job, adl));
            }
        }
    }

    #[test]
    fn unbounded_budget_never_evicts(
        saves in arb_saves(),
        full_every in 1u32..5,
    ) {
        let mut store =
            CheckpointStore::for_policy(&CheckpointPolicy::default().full_every(full_every));
        for (tick, &(slot, weight)) in saves.iter().enumerate() {
            let (job, adl) = slot_key(slot);
            store.save(job, adl, ckpt(tick as u64 + 1, weight), vec![], tick as u64);
            store.enforce_budget(&BTreeSet::new());
            prop_assert!(store.latest(job, adl).is_some());
        }
        prop_assert_eq!(store.evictions(), 0);
    }
}
