//! SAM — Streams Application Manager (§2.2/§3).
//!
//! Receives application submission and cancellation requests, spawns PEs per
//! placement constraints, can stop and restart PEs, and treats orchestrators
//! as first-class manageable entities: it keeps track of registered
//! orchestrators and their associated jobs, and pushes PE-failure
//! notifications to the orchestrator owning the crashed PE.
//!
//! As of the control-plane fault-tolerance work, SAM itself is crashable: all
//! durable state lives behind the [`Metastore`] trait (every mutation is a
//! logged [`MetaOp`]), and this struct keeps only volatile daemon state — the
//! availability flag for an in-progress restart and the host-heartbeat table
//! the liveness deadline is judged against. A `RestartSam` fault flips
//! `available` off, drops nothing durable, and recovery rebuilds the tables
//! from the store's log.
//!
//! This module holds SAM's bookkeeping; the RPC-like coordination with the
//! cluster and broker lives in [`crate::kernel::Kernel`].

use crate::ids::{JobId, OrcaId, PeId};
use crate::metastore::{
    build_metastore, MetaOp, MetaRecovery, MetaStats, Metastore, MetastoreKind,
};
use sps_model::adl::Adl;
use sps_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Job lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    Running,
    Cancelled,
}

/// Why a PE crashed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashReason {
    /// Uncaught failure inside operator code.
    OperatorFault(String),
    /// Explicit external kill (fault injection / operator error).
    Killed,
    /// The PE's host went down.
    HostFailure,
}

impl CrashReason {
    /// Coarse class used for failure-event epoch correlation (§4.2).
    pub fn class(&self) -> &'static str {
        match self {
            CrashReason::OperatorFault(_) => "operatorFault",
            CrashReason::Killed => "killed",
            CrashReason::HostFailure => "hostFailure",
        }
    }
}

/// Everything SAM remembers about a job.
#[derive(Clone, Debug)]
pub struct JobInfo {
    pub id: JobId,
    pub app_name: String,
    pub adl: Adl,
    /// PE ids by ADL PE index.
    pub pe_ids: Vec<PeId>,
    pub status: JobStatus,
    pub submitted_at: SimTime,
    /// The orchestrator managing this job, if any. Jobs started outside an
    /// orchestrator have no owner; an orchestrator acting on them is a
    /// runtime error (§3).
    pub owner: Option<OrcaId>,
}

/// Push notification from SAM to an ORCA service.
#[derive(Clone, Debug, PartialEq)]
pub enum OrcaNotification {
    /// A PE belonging to a managed job crashed. Carries the PE id, failure
    /// detection timestamp, and the crash reason (§4.2).
    PeFailure {
        job: JobId,
        pe: PeId,
        adl_index: usize,
        reason: CrashReason,
        detected_at: SimTime,
    },
}

/// SAM daemon: durable tables behind the metastore, volatile state here.
pub struct Sam {
    store: Box<dyn Metastore>,
    /// False while a `RestartSam` fault window is active: drains return
    /// empty (the Unavailable path) instead of panicking or serving stale
    /// queues; pushes keep landing in the durable store.
    available: bool,
    /// host → last heartbeat SAM saw through HC. Volatile on purpose: a real
    /// SAM rebuilds its liveness view from fresh heartbeats after a restart,
    /// so it is not part of the metastore.
    host_liveness: BTreeMap<String, SimTime>,
}

impl Default for Sam {
    fn default() -> Self {
        Sam::new()
    }
}

impl Sam {
    /// In-memory store — the zero-cost default, byte-identical to the
    /// pre-metastore SAM.
    pub fn new() -> Self {
        Sam::with_store(MetastoreKind::Memory, 0)
    }

    /// `seed` feeds only the replicated store's private RNG stream; the
    /// memory store ignores it.
    pub fn with_store(kind: MetastoreKind, seed: u64) -> Self {
        Sam {
            store: build_metastore(kind, seed),
            available: true,
            host_liveness: BTreeMap::new(),
        }
    }

    fn tables(&self) -> &crate::metastore::MetaTables {
        self.store.tables()
    }

    // ---- availability / restart (control-plane faults) ---------------------

    /// Whether SAM is serving. False only inside a `RestartSam` window.
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// Enters the restart window: the daemon is down, drains go unavailable.
    pub fn begin_restart(&mut self) {
        self.available = false;
    }

    /// Completes the restart: the store recovers (a logging store replays
    /// its op log and digest-verifies the replay) and SAM serves again.
    pub fn complete_restart(&mut self) -> MetaRecovery {
        let rec = self.store.recover();
        self.available = true;
        rec
    }

    pub fn metastore_kind(&self) -> MetastoreKind {
        self.store.kind()
    }

    pub fn metastore_stats(&self) -> MetaStats {
        self.store.stats()
    }

    /// Oracle hook: does replaying the store's log reproduce its tables?
    pub fn metastore_verify(&self) -> bool {
        self.store.verify()
    }

    // ---- host liveness (HC heartbeats, §2.2) -------------------------------

    /// Records a heartbeat relayed by a host controller.
    pub fn record_heartbeat(&mut self, host: &str, now: SimTime) {
        self.host_liveness.insert(host.to_string(), now);
    }

    /// Forgets a host's heartbeat state (host decommissioned or declared).
    pub fn clear_heartbeat(&mut self, host: &str) {
        self.host_liveness.remove(host);
    }

    /// Hosts whose last heartbeat is older than `deadline`. Only hosts SAM
    /// has ever heard from are candidates — an unknown host is not stale.
    pub fn stale_hosts(&self, now: SimTime, deadline: SimDuration) -> Vec<String> {
        self.host_liveness
            .iter()
            .filter(|(_, &last)| now.since(last) > deadline)
            .map(|(h, _)| h.clone())
            .collect()
    }

    // ---- id allocation -----------------------------------------------------

    pub fn alloc_job_id(&mut self) -> JobId {
        self.store.apply(MetaOp::AllocJobId);
        JobId(self.tables().next_job)
    }

    pub fn alloc_pe_id(&mut self) -> PeId {
        self.store.apply(MetaOp::AllocPeId);
        PeId(self.tables().next_pe)
    }

    // ---- orchestrator registry ---------------------------------------------

    /// Registers a new orchestrator as a manageable entity; SAM will queue
    /// failure notifications for jobs it owns.
    pub fn register_orchestrator(&mut self) -> OrcaId {
        self.store.apply(MetaOp::RegisterOrchestrator);
        OrcaId(self.tables().next_orca - 1)
    }

    pub fn push_notification(&mut self, orca: OrcaId, n: OrcaNotification) {
        // Unknown orchestrator: silently dropped, uncounted, unlogged.
        if self.tables().orca_queues.contains_key(&orca) {
            self.store.apply(MetaOp::PushNotification(orca, n));
        }
    }

    /// The ORCA service pulls its pending notifications (the simulated
    /// SAM→ORCA RPC). While a restart window is active this is the explicit
    /// Unavailable path: the call returns empty without draining or counting
    /// anything, and the queued notifications stay durable for after
    /// recovery.
    pub fn drain_notifications(&mut self, orca: OrcaId) -> Vec<OrcaNotification> {
        if !self.available {
            return Vec::new();
        }
        let out: Vec<OrcaNotification> = self
            .tables()
            .orca_queues
            .get(&orca)
            .map(|q| q.iter().cloned().collect())
            .unwrap_or_default();
        if !out.is_empty() {
            self.store.apply(MetaOp::DrainNotifications(orca));
        }
        out
    }

    /// Notifications ever enqueued for an orchestrator.
    pub fn notifications_pushed(&self, orca: OrcaId) -> u64 {
        self.tables().pushed.get(&orca).copied().unwrap_or(0)
    }

    /// Notifications an orchestrator has drained so far.
    pub fn notifications_drained(&self, orca: OrcaId) -> u64 {
        self.tables().drained.get(&orca).copied().unwrap_or(0)
    }

    /// Currently queued, undelivered notifications for an orchestrator.
    pub fn notifications_pending(&self, orca: OrcaId) -> usize {
        self.tables()
            .orca_queues
            .get(&orca)
            .map(|q| q.len())
            .unwrap_or(0)
    }

    /// Total notifications ever enqueued across all orchestrators.
    pub fn total_notifications_pushed(&self) -> u64 {
        self.tables().pushed.values().sum()
    }

    /// Registered orchestrator ids, in registration order.
    pub fn orchestrators(&self) -> Vec<OrcaId> {
        self.tables().orca_queues.keys().copied().collect()
    }

    // ---- job / PE tables ---------------------------------------------------

    pub fn insert_job(&mut self, info: JobInfo) {
        self.store.apply(MetaOp::InsertJob(info));
    }

    pub fn job(&self, id: JobId) -> Option<&JobInfo> {
        self.tables().jobs.get(&id)
    }

    /// Updates a job's lifecycle status through the op log.
    pub fn set_job_status(&mut self, id: JobId, status: JobStatus) {
        self.store.apply(MetaOp::SetJobStatus(id, status));
    }

    pub fn jobs(&self) -> impl Iterator<Item = &JobInfo> {
        self.tables().jobs.values()
    }

    pub fn running_jobs(&self) -> Vec<JobId> {
        self.tables()
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| j.id)
            .collect()
    }

    /// Resolves a PE id to its `(job, ADL PE index)`.
    pub fn pe_lookup(&self, pe: PeId) -> Option<(JobId, usize)> {
        self.tables().pe_index.get(&pe).copied()
    }

    pub fn remove_job(&mut self, id: JobId) -> Option<JobInfo> {
        let info = self.tables().jobs.get(&id).cloned()?;
        // The op also releases the job's exclusive host reservations and
        // forgets its checkpoint-commit index entries.
        self.store.apply(MetaOp::RemoveJob(id));
        Some(info)
    }

    /// Re-points a job's ADL index at a replacement PE id (restart).
    pub fn replace_pe(&mut self, job: JobId, adl_index: usize, new_pe: PeId) {
        self.store.apply(MetaOp::ReplacePe {
            job,
            adl_index,
            new_pe,
        });
    }

    // ---- exclusive host reservations ----------------------------------------

    pub fn reserve_host(&mut self, host: &str, job: JobId) {
        self.store.apply(MetaOp::ReserveHost(host.to_string(), job));
    }

    /// Drops a reservation (submission rollback).
    pub fn unreserve_host(&mut self, host: &str) {
        self.store.apply(MetaOp::ReleaseHost(host.to_string()));
    }

    /// `None` = unreserved; `Some(job)` = reserved for that job only.
    pub fn host_reservation(&self, host: &str) -> Option<JobId> {
        self.tables().exclusive_hosts.get(host).copied()
    }

    // ---- checkpoint-commit index --------------------------------------------

    /// Records a durable checkpoint commit in the metastore log. The
    /// authoritative snapshot chain stays in [`crate::ckpt::CheckpointStore`];
    /// this index exists so a recovered SAM can prove which commits it knew
    /// about (the replay digest covers it).
    pub fn record_ckpt_commit(&mut self, job: JobId, adl_index: usize, taken_at: SimTime) {
        self.store.apply(MetaOp::RecordCkptCommit {
            job,
            adl_index,
            taken_at,
        });
    }

    /// Commit time of the newest known checkpoint for `(job, adl_index)`.
    pub fn ckpt_commit(&self, job: JobId, adl_index: usize) -> Option<SimTime> {
        self.tables().ckpt_commits.get(&(job, adl_index)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_model::adl::AdlPe;

    fn adl() -> Adl {
        Adl {
            app_name: "A".into(),
            operators: vec![],
            pes: vec![AdlPe {
                index: 0,
                operators: vec![],
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![],
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        }
    }

    fn job_info(sam: &mut Sam, owner: Option<OrcaId>) -> JobInfo {
        let id = sam.alloc_job_id();
        let pe = sam.alloc_pe_id();
        JobInfo {
            id,
            app_name: "A".into(),
            adl: adl(),
            pe_ids: vec![pe],
            status: JobStatus::Running,
            submitted_at: SimTime::ZERO,
            owner,
        }
    }

    #[test]
    fn id_allocation_is_monotonic() {
        let mut sam = Sam::new();
        assert_eq!(sam.alloc_job_id(), JobId(1));
        assert_eq!(sam.alloc_job_id(), JobId(2));
        assert_eq!(sam.alloc_pe_id(), PeId(1));
        assert_eq!(sam.alloc_pe_id(), PeId(2));
    }

    #[test]
    fn job_table_roundtrip() {
        let mut sam = Sam::new();
        let info = job_info(&mut sam, None);
        let (id, pe) = (info.id, info.pe_ids[0]);
        sam.insert_job(info);
        assert_eq!(sam.job(id).unwrap().app_name, "A");
        assert_eq!(sam.pe_lookup(pe), Some((id, 0)));
        assert_eq!(sam.running_jobs(), vec![id]);
        sam.set_job_status(id, JobStatus::Cancelled);
        assert!(sam.running_jobs().is_empty());
        let removed = sam.remove_job(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(sam.job(id).is_none());
        assert!(sam.pe_lookup(pe).is_none());
    }

    #[test]
    fn replace_pe_updates_index() {
        let mut sam = Sam::new();
        let info = job_info(&mut sam, None);
        let (id, old_pe) = (info.id, info.pe_ids[0]);
        sam.insert_job(info);
        let new_pe = sam.alloc_pe_id();
        sam.replace_pe(id, 0, new_pe);
        assert!(sam.pe_lookup(old_pe).is_none());
        assert_eq!(sam.pe_lookup(new_pe), Some((id, 0)));
        assert_eq!(sam.job(id).unwrap().pe_ids[0], new_pe);
    }

    #[test]
    fn notifications_queue_per_orchestrator() {
        let mut sam = Sam::new();
        let o1 = sam.register_orchestrator();
        let o2 = sam.register_orchestrator();
        assert_ne!(o1, o2);
        let n = OrcaNotification::PeFailure {
            job: JobId(1),
            pe: PeId(1),
            adl_index: 0,
            reason: CrashReason::Killed,
            detected_at: SimTime::from_secs(5),
        };
        sam.push_notification(o1, n.clone());
        assert_eq!(sam.drain_notifications(o1), vec![n]);
        assert!(sam.drain_notifications(o1).is_empty());
        assert!(sam.drain_notifications(o2).is_empty());
        // Unknown orchestrator: silently dropped.
        sam.push_notification(
            OrcaId(99),
            OrcaNotification::PeFailure {
                job: JobId(1),
                pe: PeId(1),
                adl_index: 0,
                reason: CrashReason::HostFailure,
                detected_at: SimTime::ZERO,
            },
        );
        assert!(sam.drain_notifications(OrcaId(99)).is_empty());
    }

    #[test]
    fn notification_counters_balance() {
        let mut sam = Sam::new();
        let o = sam.register_orchestrator();
        let n = OrcaNotification::PeFailure {
            job: JobId(1),
            pe: PeId(1),
            adl_index: 0,
            reason: CrashReason::Killed,
            detected_at: SimTime::ZERO,
        };
        sam.push_notification(o, n.clone());
        sam.push_notification(o, n.clone());
        assert_eq!(sam.notifications_pushed(o), 2);
        assert_eq!(sam.notifications_pending(o), 2);
        assert_eq!(sam.notifications_drained(o), 0);
        sam.drain_notifications(o);
        assert_eq!(sam.notifications_drained(o), 2);
        assert_eq!(sam.notifications_pending(o), 0);
        // Pushes to unknown orchestrators are dropped, not counted.
        sam.push_notification(OrcaId(99), n);
        assert_eq!(sam.total_notifications_pushed(), 2);
        assert_eq!(sam.notifications_pushed(OrcaId(99)), 0);
    }

    #[test]
    fn exclusive_reservations_released_on_removal() {
        let mut sam = Sam::new();
        let info = job_info(&mut sam, None);
        let id = info.id;
        sam.insert_job(info);
        sam.reserve_host("host1", id);
        assert_eq!(sam.host_reservation("host1"), Some(id));
        assert_eq!(sam.host_reservation("host2"), None);
        sam.remove_job(id);
        assert_eq!(sam.host_reservation("host1"), None);
    }

    #[test]
    fn crash_reason_classes() {
        assert_eq!(CrashReason::Killed.class(), "killed");
        assert_eq!(CrashReason::HostFailure.class(), "hostFailure");
        assert_eq!(
            CrashReason::OperatorFault("x".into()).class(),
            "operatorFault"
        );
    }

    /// Pins the Unavailable path: drains inside a restart window return
    /// empty without counting, pushes stay durable, and conservation
    /// (`pushed == drained + pending`) holds through recovery.
    #[test]
    fn drain_during_restart_window_is_unavailable_not_stale() {
        for kind in [MetastoreKind::Memory, MetastoreKind::Replicated] {
            let mut sam = Sam::with_store(kind, 11);
            let o = sam.register_orchestrator();
            let n = OrcaNotification::PeFailure {
                job: JobId(1),
                pe: PeId(1),
                adl_index: 0,
                reason: CrashReason::Killed,
                detected_at: SimTime::ZERO,
            };
            sam.push_notification(o, n.clone());
            sam.begin_restart();
            assert!(!sam.is_available());
            // The Unavailable path: empty, no drained-counter movement.
            assert!(sam.drain_notifications(o).is_empty());
            assert_eq!(sam.notifications_drained(o), 0);
            // Pushes during the window land durably.
            sam.push_notification(o, n.clone());
            assert_eq!(sam.notifications_pending(o), 2);
            sam.complete_restart();
            assert!(sam.is_available());
            assert_eq!(sam.drain_notifications(o), vec![n.clone(), n.clone()]);
            assert_eq!(
                sam.notifications_pushed(o),
                sam.notifications_drained(o) + sam.notifications_pending(o) as u64
            );
            assert!(sam.metastore_verify(), "{kind:?} replay must verify");
        }
    }

    /// The same call script against both stores materializes identical
    /// state — the byte-identity claim behind the memory default.
    #[test]
    fn facade_behaves_identically_across_stores() {
        let drive = |kind: MetastoreKind| {
            let mut sam = Sam::with_store(kind, 3);
            let o = sam.register_orchestrator();
            let info = job_info(&mut sam, Some(o));
            let (id, pe) = (info.id, info.pe_ids[0]);
            sam.insert_job(info);
            sam.reserve_host("h1", id);
            sam.push_notification(
                o,
                OrcaNotification::PeFailure {
                    job: id,
                    pe,
                    adl_index: 0,
                    reason: CrashReason::HostFailure,
                    detected_at: SimTime::from_secs(4),
                },
            );
            let drained = sam.drain_notifications(o).len();
            sam.record_ckpt_commit(id, 0, SimTime::from_secs(9));
            (
                drained,
                sam.notifications_pushed(o),
                sam.host_reservation("h1"),
                sam.ckpt_commit(id, 0),
            )
        };
        assert_eq!(
            drive(MetastoreKind::Memory),
            drive(MetastoreKind::Replicated)
        );
    }

    #[test]
    fn heartbeats_drive_staleness() {
        let mut sam = Sam::new();
        let deadline = SimDuration::from_secs(6);
        sam.record_heartbeat("h1", SimTime::from_secs(1));
        sam.record_heartbeat("h2", SimTime::from_secs(9));
        // h1 is 9s stale at t=10; h2 is fresh; h3 was never heard from.
        assert_eq!(
            sam.stale_hosts(SimTime::from_secs(10), deadline),
            vec!["h1".to_string()]
        );
        sam.clear_heartbeat("h1");
        assert!(sam.stale_hosts(SimTime::from_secs(10), deadline).is_empty());
    }
}
