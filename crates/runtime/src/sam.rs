//! SAM — Streams Application Manager (§2.2/§3).
//!
//! Receives application submission and cancellation requests, spawns PEs per
//! placement constraints, can stop and restart PEs, and treats orchestrators
//! as first-class manageable entities: it keeps track of registered
//! orchestrators and their associated jobs, and pushes PE-failure
//! notifications to the orchestrator owning the crashed PE.
//!
//! This module holds SAM's bookkeeping; the RPC-like coordination with the
//! cluster and broker lives in [`crate::kernel::Kernel`].

use crate::ids::{JobId, OrcaId, PeId};
use sps_model::adl::Adl;
use sps_sim::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Job lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    Running,
    Cancelled,
}

/// Why a PE crashed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashReason {
    /// Uncaught failure inside operator code.
    OperatorFault(String),
    /// Explicit external kill (fault injection / operator error).
    Killed,
    /// The PE's host went down.
    HostFailure,
}

impl CrashReason {
    /// Coarse class used for failure-event epoch correlation (§4.2).
    pub fn class(&self) -> &'static str {
        match self {
            CrashReason::OperatorFault(_) => "operatorFault",
            CrashReason::Killed => "killed",
            CrashReason::HostFailure => "hostFailure",
        }
    }
}

/// Everything SAM remembers about a job.
#[derive(Clone, Debug)]
pub struct JobInfo {
    pub id: JobId,
    pub app_name: String,
    pub adl: Adl,
    /// PE ids by ADL PE index.
    pub pe_ids: Vec<PeId>,
    pub status: JobStatus,
    pub submitted_at: SimTime,
    /// The orchestrator managing this job, if any. Jobs started outside an
    /// orchestrator have no owner; an orchestrator acting on them is a
    /// runtime error (§3).
    pub owner: Option<OrcaId>,
}

/// Push notification from SAM to an ORCA service.
#[derive(Clone, Debug, PartialEq)]
pub enum OrcaNotification {
    /// A PE belonging to a managed job crashed. Carries the PE id, failure
    /// detection timestamp, and the crash reason (§4.2).
    PeFailure {
        job: JobId,
        pe: PeId,
        adl_index: usize,
        reason: CrashReason,
        detected_at: SimTime,
    },
}

/// SAM daemon state.
#[derive(Default)]
pub struct Sam {
    next_job: u64,
    next_pe: u64,
    next_orca: u64,
    jobs: BTreeMap<JobId, JobInfo>,
    pe_index: BTreeMap<PeId, (JobId, usize)>,
    orca_queues: BTreeMap<OrcaId, VecDeque<OrcaNotification>>,
    /// host → owning job for exclusive host pools (§4.3).
    exclusive_hosts: BTreeMap<String, JobId>,
    /// Delivery accounting per orchestrator (campaign-oracle hooks): how
    /// many notifications were ever enqueued and how many were drained.
    pushed: BTreeMap<OrcaId, u64>,
    drained: BTreeMap<OrcaId, u64>,
}

impl Sam {
    pub fn new() -> Self {
        Self::default()
    }

    // ---- id allocation -----------------------------------------------------

    pub fn alloc_job_id(&mut self) -> JobId {
        self.next_job += 1;
        JobId(self.next_job)
    }

    pub fn alloc_pe_id(&mut self) -> PeId {
        self.next_pe += 1;
        PeId(self.next_pe)
    }

    // ---- orchestrator registry ---------------------------------------------

    /// Registers a new orchestrator as a manageable entity; SAM will queue
    /// failure notifications for jobs it owns.
    pub fn register_orchestrator(&mut self) -> OrcaId {
        let id = OrcaId(self.next_orca);
        self.next_orca += 1;
        self.orca_queues.insert(id, VecDeque::new());
        id
    }

    pub fn push_notification(&mut self, orca: OrcaId, n: OrcaNotification) {
        if let Some(q) = self.orca_queues.get_mut(&orca) {
            q.push_back(n);
            *self.pushed.entry(orca).or_insert(0) += 1;
        }
    }

    /// The ORCA service pulls its pending notifications (the simulated
    /// SAM→ORCA RPC).
    pub fn drain_notifications(&mut self, orca: OrcaId) -> Vec<OrcaNotification> {
        let out: Vec<OrcaNotification> = self
            .orca_queues
            .get_mut(&orca)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        if !out.is_empty() {
            *self.drained.entry(orca).or_insert(0) += out.len() as u64;
        }
        out
    }

    /// Notifications ever enqueued for an orchestrator.
    pub fn notifications_pushed(&self, orca: OrcaId) -> u64 {
        self.pushed.get(&orca).copied().unwrap_or(0)
    }

    /// Notifications an orchestrator has drained so far.
    pub fn notifications_drained(&self, orca: OrcaId) -> u64 {
        self.drained.get(&orca).copied().unwrap_or(0)
    }

    /// Currently queued, undelivered notifications for an orchestrator.
    pub fn notifications_pending(&self, orca: OrcaId) -> usize {
        self.orca_queues.get(&orca).map(VecDeque::len).unwrap_or(0)
    }

    /// Total notifications ever enqueued across all orchestrators.
    pub fn total_notifications_pushed(&self) -> u64 {
        self.pushed.values().sum()
    }

    // ---- job / PE tables ---------------------------------------------------

    pub fn insert_job(&mut self, info: JobInfo) {
        for (idx, &pe) in info.pe_ids.iter().enumerate() {
            self.pe_index.insert(pe, (info.id, idx));
        }
        self.jobs.insert(info.id, info);
    }

    pub fn job(&self, id: JobId) -> Option<&JobInfo> {
        self.jobs.get(&id)
    }

    pub fn job_mut(&mut self, id: JobId) -> Option<&mut JobInfo> {
        self.jobs.get_mut(&id)
    }

    pub fn jobs(&self) -> impl Iterator<Item = &JobInfo> {
        self.jobs.values()
    }

    pub fn running_jobs(&self) -> Vec<JobId> {
        self.jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .map(|j| j.id)
            .collect()
    }

    /// Resolves a PE id to its `(job, ADL PE index)`.
    pub fn pe_lookup(&self, pe: PeId) -> Option<(JobId, usize)> {
        self.pe_index.get(&pe).copied()
    }

    pub fn remove_job(&mut self, id: JobId) -> Option<JobInfo> {
        let info = self.jobs.remove(&id)?;
        for pe in &info.pe_ids {
            self.pe_index.remove(pe);
        }
        // Release exclusive host reservations.
        self.exclusive_hosts.retain(|_, owner| *owner != id);
        Some(info)
    }

    /// Re-points a job's ADL index at a replacement PE id (restart).
    pub fn replace_pe(&mut self, job: JobId, adl_index: usize, new_pe: PeId) {
        if let Some(info) = self.jobs.get_mut(&job) {
            if let Some(slot) = info.pe_ids.get_mut(adl_index) {
                self.pe_index.remove(slot);
                *slot = new_pe;
                self.pe_index.insert(new_pe, (job, adl_index));
            }
        }
    }

    // ---- exclusive host reservations ----------------------------------------

    pub fn reserve_host(&mut self, host: &str, job: JobId) {
        self.exclusive_hosts.insert(host.to_string(), job);
    }

    /// Drops a reservation (submission rollback).
    pub fn unreserve_host(&mut self, host: &str) {
        self.exclusive_hosts.remove(host);
    }

    /// `None` = unreserved; `Some(job)` = reserved for that job only.
    pub fn host_reservation(&self, host: &str) -> Option<JobId> {
        self.exclusive_hosts.get(host).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_model::adl::AdlPe;

    fn adl() -> Adl {
        Adl {
            app_name: "A".into(),
            operators: vec![],
            pes: vec![AdlPe {
                index: 0,
                operators: vec![],
                host_pool: None,
                host_exlocate: None,
            }],
            streams: vec![],
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        }
    }

    fn job_info(sam: &mut Sam, owner: Option<OrcaId>) -> JobInfo {
        let id = sam.alloc_job_id();
        let pe = sam.alloc_pe_id();
        JobInfo {
            id,
            app_name: "A".into(),
            adl: adl(),
            pe_ids: vec![pe],
            status: JobStatus::Running,
            submitted_at: SimTime::ZERO,
            owner,
        }
    }

    #[test]
    fn id_allocation_is_monotonic() {
        let mut sam = Sam::new();
        assert_eq!(sam.alloc_job_id(), JobId(1));
        assert_eq!(sam.alloc_job_id(), JobId(2));
        assert_eq!(sam.alloc_pe_id(), PeId(1));
        assert_eq!(sam.alloc_pe_id(), PeId(2));
    }

    #[test]
    fn job_table_roundtrip() {
        let mut sam = Sam::new();
        let info = job_info(&mut sam, None);
        let (id, pe) = (info.id, info.pe_ids[0]);
        sam.insert_job(info);
        assert_eq!(sam.job(id).unwrap().app_name, "A");
        assert_eq!(sam.pe_lookup(pe), Some((id, 0)));
        assert_eq!(sam.running_jobs(), vec![id]);
        sam.job_mut(id).unwrap().status = JobStatus::Cancelled;
        assert!(sam.running_jobs().is_empty());
        let removed = sam.remove_job(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(sam.job(id).is_none());
        assert!(sam.pe_lookup(pe).is_none());
    }

    #[test]
    fn replace_pe_updates_index() {
        let mut sam = Sam::new();
        let info = job_info(&mut sam, None);
        let (id, old_pe) = (info.id, info.pe_ids[0]);
        sam.insert_job(info);
        let new_pe = sam.alloc_pe_id();
        sam.replace_pe(id, 0, new_pe);
        assert!(sam.pe_lookup(old_pe).is_none());
        assert_eq!(sam.pe_lookup(new_pe), Some((id, 0)));
        assert_eq!(sam.job(id).unwrap().pe_ids[0], new_pe);
    }

    #[test]
    fn notifications_queue_per_orchestrator() {
        let mut sam = Sam::new();
        let o1 = sam.register_orchestrator();
        let o2 = sam.register_orchestrator();
        assert_ne!(o1, o2);
        let n = OrcaNotification::PeFailure {
            job: JobId(1),
            pe: PeId(1),
            adl_index: 0,
            reason: CrashReason::Killed,
            detected_at: SimTime::from_secs(5),
        };
        sam.push_notification(o1, n.clone());
        assert_eq!(sam.drain_notifications(o1), vec![n]);
        assert!(sam.drain_notifications(o1).is_empty());
        assert!(sam.drain_notifications(o2).is_empty());
        // Unknown orchestrator: silently dropped.
        sam.push_notification(
            OrcaId(99),
            OrcaNotification::PeFailure {
                job: JobId(1),
                pe: PeId(1),
                adl_index: 0,
                reason: CrashReason::HostFailure,
                detected_at: SimTime::ZERO,
            },
        );
        assert!(sam.drain_notifications(OrcaId(99)).is_empty());
    }

    #[test]
    fn notification_counters_balance() {
        let mut sam = Sam::new();
        let o = sam.register_orchestrator();
        let n = OrcaNotification::PeFailure {
            job: JobId(1),
            pe: PeId(1),
            adl_index: 0,
            reason: CrashReason::Killed,
            detected_at: SimTime::ZERO,
        };
        sam.push_notification(o, n.clone());
        sam.push_notification(o, n.clone());
        assert_eq!(sam.notifications_pushed(o), 2);
        assert_eq!(sam.notifications_pending(o), 2);
        assert_eq!(sam.notifications_drained(o), 0);
        sam.drain_notifications(o);
        assert_eq!(sam.notifications_drained(o), 2);
        assert_eq!(sam.notifications_pending(o), 0);
        // Pushes to unknown orchestrators are dropped, not counted.
        sam.push_notification(OrcaId(99), n);
        assert_eq!(sam.total_notifications_pushed(), 2);
        assert_eq!(sam.notifications_pushed(OrcaId(99)), 0);
    }

    #[test]
    fn exclusive_reservations_released_on_removal() {
        let mut sam = Sam::new();
        let info = job_info(&mut sam, None);
        let id = info.id;
        sam.insert_job(info);
        sam.reserve_host("host1", id);
        assert_eq!(sam.host_reservation("host1"), Some(id));
        assert_eq!(sam.host_reservation("host2"), None);
        sam.remove_job(id);
        assert_eq!(sam.host_reservation("host1"), None);
    }

    #[test]
    fn crash_reason_classes() {
        assert_eq!(CrashReason::Killed.class(), "killed");
        assert_eq!(CrashReason::HostFailure.class(), "hostFailure");
        assert_eq!(
            CrashReason::OperatorFault("x".into()).class(),
            "operatorFault"
        );
    }
}
