//! Dynamic stream import/export broker (§2.1).
//!
//! When both an exporting and an importing application are running, the
//! runtime automatically connects them; connections form and dissolve as
//! jobs come and go — the substrate for incremental deployment and the §5.3
//! dynamic-composition use case.

use crate::ids::JobId;
use sps_model::logical::{ExportSpec, ImportSpec};
use std::collections::BTreeMap;

/// A registered export endpoint.
#[derive(Clone, Debug)]
struct ExportReg {
    job: JobId,
    app_name: String,
    op: String,
    port: usize,
    spec: ExportSpec,
}

/// A registered import endpoint.
#[derive(Clone, Debug)]
struct ImportReg {
    job: JobId,
    op: String,
    spec: ImportSpec,
}

/// Matches exported streams to import subscriptions across running jobs.
#[derive(Default)]
pub struct Broker {
    exports: Vec<ExportReg>,
    imports: Vec<ImportReg>,
    /// Cached resolution: (export job, op, port) → [(import job, import op)].
    routes: BTreeMap<(JobId, String, usize), Vec<(JobId, String)>>,
}

impl Broker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a job's imports and exports at submission time.
    pub fn register_job(
        &mut self,
        job: JobId,
        app_name: &str,
        exports: impl IntoIterator<Item = (String, usize, ExportSpec)>,
        imports: impl IntoIterator<Item = (String, ImportSpec)>,
    ) {
        for (op, port, spec) in exports {
            self.exports.push(ExportReg {
                job,
                app_name: app_name.to_string(),
                op,
                port,
                spec,
            });
        }
        for (op, spec) in imports {
            self.imports.push(ImportReg { job, op, spec });
        }
        self.rebuild_routes();
    }

    /// Unregisters everything belonging to a cancelled job.
    pub fn unregister_job(&mut self, job: JobId) {
        self.exports.retain(|e| e.job != job);
        self.imports.retain(|i| i.job != job);
        self.rebuild_routes();
    }

    fn rebuild_routes(&mut self) {
        self.routes.clear();
        for export in &self.exports {
            let targets: Vec<(JobId, String)> = self
                .imports
                .iter()
                .filter(|imp| {
                    // A job never imports its own export through the broker
                    // (that would be a static stream).
                    imp.job != export.job && imp.spec.matches(&export.spec, &export.app_name)
                })
                .map(|imp| (imp.job, imp.op.clone()))
                .collect();
            if !targets.is_empty() {
                self.routes
                    .insert((export.job, export.op.clone(), export.port), targets);
            }
        }
    }

    /// Destinations for an item emitted on an exported port:
    /// `(importing job, importing operator)` pairs.
    pub fn route(&self, job: JobId, op: &str, port: usize) -> &[(JobId, String)] {
        self.routes
            .get(&(job, op.to_string(), port))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Current number of live cross-job connections.
    pub fn num_connections(&self) -> usize {
        self.routes.values().map(Vec::len).sum()
    }

    /// Does any *other running* job import from the given job? Used by the
    /// orchestrator's starvation check on cancellation (§4.4).
    pub fn has_dependents(&self, job: JobId) -> bool {
        self.routes
            .iter()
            .any(|((export_job, _, _), targets)| *export_job == job && !targets.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_id_export(id: &str) -> ExportSpec {
        ExportSpec::by_id(id)
    }

    #[test]
    fn id_matching_connects_jobs() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "Producer",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        assert_eq!(b.num_connections(), 0);
        b.register_job(
            JobId(2),
            "Consumer",
            vec![],
            vec![("in".into(), ImportSpec::by_id("feed"))],
        );
        assert_eq!(b.num_connections(), 1);
        assert_eq!(b.route(JobId(1), "out", 0), &[(JobId(2), "in".to_string())]);
        assert!(b.route(JobId(1), "out", 1).is_empty());
        assert!(b.has_dependents(JobId(1)));
        assert!(!b.has_dependents(JobId(2)));
    }

    #[test]
    fn property_subscription_matching() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "P",
            vec![(
                "out".into(),
                0,
                ExportSpec::default()
                    .with_property("topic", "profiles")
                    .with_property("source", "twitter"),
            )],
            vec![],
        );
        b.register_job(
            JobId(2),
            "C1",
            vec![],
            vec![(
                "in".into(),
                ImportSpec::default().subscribe("topic", "profiles"),
            )],
        );
        b.register_job(
            JobId(3),
            "C2",
            vec![],
            vec![(
                "in".into(),
                ImportSpec::default().subscribe("topic", "other"),
            )],
        );
        let routes = b.route(JobId(1), "out", 0);
        assert_eq!(routes, &[(JobId(2), "in".to_string())]);
    }

    #[test]
    fn late_exporter_connects_to_existing_importer() {
        let mut b = Broker::new();
        b.register_job(
            JobId(2),
            "C",
            vec![],
            vec![("in".into(), ImportSpec::by_id("feed"))],
        );
        assert_eq!(b.num_connections(), 0);
        b.register_job(
            JobId(5),
            "P",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        assert_eq!(b.route(JobId(5), "out", 0).len(), 1);
    }

    #[test]
    fn cancellation_dissolves_connections() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "P",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        b.register_job(
            JobId(2),
            "C",
            vec![],
            vec![("in".into(), ImportSpec::by_id("feed"))],
        );
        assert_eq!(b.num_connections(), 1);
        b.unregister_job(JobId(2));
        assert_eq!(b.num_connections(), 0);
        assert!(!b.has_dependents(JobId(1)));
    }

    #[test]
    fn no_self_import() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "SelfLoop",
            vec![("out".into(), 0, by_id_export("x"))],
            vec![("in".into(), ImportSpec::by_id("x"))],
        );
        assert_eq!(b.num_connections(), 0);
    }

    #[test]
    fn one_export_fans_out_to_many_importers() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "P",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        for j in 2..5 {
            b.register_job(
                JobId(j),
                "C",
                vec![],
                vec![("in".into(), ImportSpec::by_id("feed"))],
            );
        }
        assert_eq!(b.route(JobId(1), "out", 0).len(), 3);
    }

    #[test]
    fn app_filter_restricts_source() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "AppA",
            vec![("o".into(), 0, by_id_export("s"))],
            vec![],
        );
        b.register_job(
            JobId(2),
            "AppB",
            vec![("o".into(), 0, by_id_export("s"))],
            vec![],
        );
        b.register_job(
            JobId(3),
            "C",
            vec![],
            vec![("in".into(), ImportSpec::by_id("s").from_app("AppA"))],
        );
        assert_eq!(b.route(JobId(1), "o", 0).len(), 1);
        assert!(b.route(JobId(2), "o", 0).is_empty());
    }
}
