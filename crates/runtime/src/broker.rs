//! Dynamic stream import/export broker (§2.1) and the sender-side
//! upstream-backup buffers for exactly-once recovery.
//!
//! When both an exporting and an importing application are running, the
//! runtime automatically connects them; connections form and dissolve as
//! jobs come and go — the substrate for incremental deployment and the §5.3
//! dynamic-composition use case.
//!
//! [`UpstreamBackup`] implements the classic upstream-backup design from
//! the rollback-recovery literature the paper builds on: every delivery to
//! a checkpointable PE is also retained in a per-receiver buffer, trimmed
//! when a checkpoint commits (the snapshot now covers those tuples), and
//! replayed into the restored PE after a crash. Per-channel position
//! counters with high-water marks suppress the duplicates a deterministic
//! replay re-emits downstream, which is what turns checkpoint-based
//! at-most-once recovery into exactly-once.

use crate::ids::JobId;
use sps_engine::{RemoteDelivery, StreamItem};
use sps_model::logical::{ExportSpec, ImportSpec};
use sps_sim::SimTime;
use std::collections::BTreeMap;

/// A registered export endpoint.
#[derive(Clone, Debug)]
struct ExportReg {
    job: JobId,
    app_name: String,
    op: String,
    port: usize,
    spec: ExportSpec,
}

/// A registered import endpoint.
#[derive(Clone, Debug)]
struct ImportReg {
    job: JobId,
    op: String,
    spec: ImportSpec,
}

/// Matches exported streams to import subscriptions across running jobs.
#[derive(Default)]
pub struct Broker {
    exports: Vec<ExportReg>,
    imports: Vec<ImportReg>,
    /// Cached resolution: (export job, op, port) → [(import job, import op)].
    routes: BTreeMap<(JobId, String, usize), Vec<(JobId, String)>>,
}

impl Broker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a job's imports and exports at submission time.
    pub fn register_job(
        &mut self,
        job: JobId,
        app_name: &str,
        exports: impl IntoIterator<Item = (String, usize, ExportSpec)>,
        imports: impl IntoIterator<Item = (String, ImportSpec)>,
    ) {
        for (op, port, spec) in exports {
            self.exports.push(ExportReg {
                job,
                app_name: app_name.to_string(),
                op,
                port,
                spec,
            });
        }
        for (op, spec) in imports {
            self.imports.push(ImportReg { job, op, spec });
        }
        self.rebuild_routes();
    }

    /// Unregisters everything belonging to a cancelled job.
    pub fn unregister_job(&mut self, job: JobId) {
        self.exports.retain(|e| e.job != job);
        self.imports.retain(|i| i.job != job);
        self.rebuild_routes();
    }

    fn rebuild_routes(&mut self) {
        self.routes.clear();
        for export in &self.exports {
            let targets: Vec<(JobId, String)> = self
                .imports
                .iter()
                .filter(|imp| {
                    // A job never imports its own export through the broker
                    // (that would be a static stream).
                    imp.job != export.job && imp.spec.matches(&export.spec, &export.app_name)
                })
                .map(|imp| (imp.job, imp.op.clone()))
                .collect();
            if !targets.is_empty() {
                self.routes
                    .insert((export.job, export.op.clone(), export.port), targets);
            }
        }
    }

    /// Destinations for an item emitted on an exported port:
    /// `(importing job, importing operator)` pairs.
    pub fn route(&self, job: JobId, op: &str, port: usize) -> &[(JobId, String)] {
        self.routes
            .get(&(job, op.to_string(), port))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Current number of live cross-job connections.
    pub fn num_connections(&self) -> usize {
        self.routes.values().map(Vec::len).sum()
    }

    /// Does any *other running* job import from the given job? Used by the
    /// orchestrator's starvation check on cancellation (§4.4).
    pub fn has_dependents(&self, job: JobId) -> bool {
        self.routes
            .iter()
            .any(|((export_job, _, _), targets)| *export_job == job && !targets.is_empty())
    }
}

// ---- upstream backup -------------------------------------------------------

/// Identity of one logical stream channel crossing the kernel, from the
/// sender's `(job, ADL PE index)` — the identity that survives restarts —
/// to a receiving operator port.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChannelKey {
    /// Intra-job PE-to-PE stream.
    Intra {
        job: JobId,
        from: usize,
        to: usize,
        op: String,
        port: usize,
    },
    /// Cross-job export, resolved by the broker to an importing operator.
    Export {
        from_job: JobId,
        from: usize,
        op: String,
        port: usize,
        to_job: JobId,
        to_op: String,
    },
}

impl ChannelKey {
    /// The sending PE slot, for checkpoint-time position snapshots.
    pub fn sender(&self) -> (JobId, usize) {
        match self {
            ChannelKey::Intra { job, from, .. } => (*job, *from),
            ChannelKey::Export { from_job, from, .. } => (*from_job, *from),
        }
    }

    /// Jobs this channel touches (for cancellation cleanup).
    fn touches_job(&self, job: JobId) -> bool {
        match self {
            ChannelKey::Intra { job: j, .. } => *j == job,
            ChannelKey::Export {
                from_job, to_job, ..
            } => *from_job == job || *to_job == job,
        }
    }
}

/// One buffered delivery, replayable into a restored receiver.
#[derive(Clone, Debug)]
pub enum BackupItem {
    /// An intra-job delivery in wire encoding (replayed via `receive`, so
    /// byte-accounting metrics match the original delivery). The payload may
    /// be a whole batch frame carrying a run of tuples.
    Remote(RemoteDelivery),
    /// A cross-job import (replayed via `inject` on the importing operator).
    Import { op: String, item: StreamItem },
}

impl BackupItem {
    /// Tuples (or punctuations) this delivery carries. Batched remote
    /// payloads count every tuple, keeping the upstream-backup counters
    /// tuple-granular regardless of how the transport frames them.
    pub fn items(&self) -> u64 {
        match self {
            BackupItem::Remote(d) => d.items as u64,
            BackupItem::Import { .. } => 1,
        }
    }
}

/// A buffered delivery plus the quantum it originally landed in; replay
/// re-injects it at the same point of the receiver's re-executed grid.
#[derive(Clone, Debug)]
pub struct BackupEntry {
    pub delivered_at: SimTime,
    pub item: BackupItem,
}

/// Upstream-backup counters surfaced through the campaign's `--timing`
/// line and CI summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UbStats {
    /// Deliveries retained in receiver buffers.
    pub buffered: u64,
    /// Buffered deliveries re-injected into restored PEs.
    pub replayed: u64,
    /// Duplicate re-emissions suppressed by channel high-water marks.
    pub suppressed: u64,
    /// Buffered deliveries acked away by checkpoint commits.
    pub trimmed: u64,
    /// Peak simultaneous buffered deliveries across all receivers.
    pub peak_buffered: u64,
}

impl UbStats {
    pub fn any(&self) -> bool {
        *self != UbStats::default()
    }

    /// Fold for campaign aggregation: counters add, the peak maxes.
    pub fn absorb(&mut self, other: &UbStats) {
        self.buffered += other.buffered;
        self.replayed += other.replayed;
        self.suppressed += other.suppressed;
        self.trimmed += other.trimmed;
        self.peak_buffered = self.peak_buffered.max(other.peak_buffered);
    }
}

/// Sender-side output buffering with duplicate suppression.
///
/// Three cooperating maps:
/// - `pos`/`hwm`: per-channel emission counters. Every emission advances
///   `pos`; an emission whose position is at or below the high-water mark
///   is a replay duplicate of something the channel already carried and is
///   suppressed outright. On checkpoint restore the kernel rolls the
///   *sender's* positions back to the snapshot ([`rollback_sender`]) so the
///   restored PE's deterministic re-execution walks `pos` back up through
///   the already-delivered range; `hwm` never rolls back.
/// - `buffers`: per-receiver `(job, ADL index)` retained deliveries, in
///   delivery order, trimmed on checkpoint commit.
///
/// [`rollback_sender`]: UpstreamBackup::rollback_sender
#[derive(Default)]
pub struct UpstreamBackup {
    pos: BTreeMap<ChannelKey, u64>,
    hwm: BTreeMap<ChannelKey, u64>,
    buffers: BTreeMap<(JobId, usize), Vec<BackupEntry>>,
    current: u64,
    stats: UbStats,
}

impl UpstreamBackup {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances a channel's position for one emission. Returns `true` when
    /// the emission is a duplicate (position at or below the high-water
    /// mark) and must be suppressed — not delivered, not re-buffered.
    pub fn advance(&mut self, key: &ChannelKey) -> bool {
        self.advance_n(key, 1) == 1
    }

    /// Advances a channel's position for a delivery carrying `n` tuples (a
    /// batch frame) and returns how many of them — always a prefix of the
    /// run — duplicate traffic the channel already carried (`n` means the
    /// whole delivery is suppressed). Positions and the suppressed counter
    /// stay tuple-granular. A replayed run can *straddle* the high-water
    /// mark: re-execution after restore starts from checkpointed queues,
    /// so its quantum schedule batches the same tuple sequence at
    /// different boundaries than the crashed incarnation did. The caller
    /// must drop exactly the duplicated prefix and deliver the tail.
    pub fn advance_n(&mut self, key: &ChannelKey, n: u64) -> u64 {
        let pos = self.pos.entry(key.clone()).or_insert(0);
        let before = *pos;
        *pos += n;
        let after = *pos;
        let hwm = self.hwm.entry(key.clone()).or_insert(0);
        let dup = if after <= *hwm {
            n
        } else {
            hwm.saturating_sub(before)
        };
        self.stats.suppressed += dup;
        if after > *hwm {
            *hwm = after;
        }
        dup
    }

    /// Retains one delivery for a receiver slot until a checkpoint covers
    /// it. Counters advance by the delivery's tuple count.
    pub fn buffer(&mut self, slot: (JobId, usize), delivered_at: SimTime, item: BackupItem) {
        let n = item.items();
        self.buffers
            .entry(slot)
            .or_default()
            .push(BackupEntry { delivered_at, item });
        self.stats.buffered += n;
        self.current += n;
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.current);
    }

    /// The retained deliveries for a receiver slot, in delivery order.
    pub fn replay_entries(&self, slot: (JobId, usize)) -> Vec<BackupEntry> {
        self.buffers.get(&slot).cloned().unwrap_or_default()
    }

    /// Acks every buffered delivery at or before `upto` for a receiver
    /// slot: the checkpoint taken at `upto` captured their effects.
    pub fn trim(&mut self, slot: (JobId, usize), upto: SimTime) {
        if let Some(buf) = self.buffers.get_mut(&slot) {
            let removed: u64 = buf
                .iter()
                .filter(|e| e.delivered_at <= upto)
                .map(|e| e.item.items())
                .sum();
            buf.retain(|e| e.delivered_at > upto);
            self.stats.trimmed += removed;
            self.current -= removed;
            if buf.is_empty() {
                self.buffers.remove(&slot);
            }
        }
    }

    /// Drops a receiver's buffer entirely (fresh restart: nothing to replay
    /// into, and the new incarnation re-accumulates from scratch).
    pub fn drop_receiver(&mut self, slot: (JobId, usize)) {
        if let Some(buf) = self.buffers.remove(&slot) {
            self.current -= buf.iter().map(|e| e.item.items()).sum::<u64>();
        }
    }

    /// Snapshot of a sender's channel positions, stored alongside its
    /// checkpoint so a restore can roll the counters back in lockstep.
    pub fn sender_snapshot(&self, job: JobId, adl_index: usize) -> Vec<(ChannelKey, u64)> {
        self.pos
            .iter()
            .filter(|(k, _)| k.sender() == (job, adl_index))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Rolls a sender's channel positions back to a checkpoint-time
    /// snapshot. Channels the sender created *after* the snapshot are
    /// removed outright — leaving them at their crash-time positions would
    /// let replay re-emissions sail past the high-water marks as
    /// apparent new traffic. High-water marks are deliberately untouched.
    pub fn rollback_sender(
        &mut self,
        job: JobId,
        adl_index: usize,
        snapshot: &[(ChannelKey, u64)],
    ) {
        self.pos.retain(|k, _| k.sender() != (job, adl_index));
        for (k, v) in snapshot {
            self.pos.insert(k.clone(), *v);
        }
    }

    /// Counts replayed deliveries (the kernel re-injects them itself).
    pub fn count_replayed(&mut self, n: u64) {
        self.stats.replayed += n;
    }

    /// Drops all channel state and buffers touching a cancelled job.
    pub fn forget_job(&mut self, job: JobId) {
        self.pos.retain(|k, _| !k.touches_job(job));
        self.hwm.retain(|k, _| !k.touches_job(job));
        let mut removed = 0u64;
        self.buffers.retain(|(j, _), buf| {
            if *j == job {
                removed += buf.iter().map(|e| e.item.items()).sum::<u64>();
                false
            } else {
                true
            }
        });
        self.current -= removed;
    }

    /// Deliveries currently buffered across all receivers.
    pub fn buffered_now(&self) -> u64 {
        self.current
    }

    pub fn stats(&self) -> UbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_id_export(id: &str) -> ExportSpec {
        ExportSpec::by_id(id)
    }

    #[test]
    fn id_matching_connects_jobs() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "Producer",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        assert_eq!(b.num_connections(), 0);
        b.register_job(
            JobId(2),
            "Consumer",
            vec![],
            vec![("in".into(), ImportSpec::by_id("feed"))],
        );
        assert_eq!(b.num_connections(), 1);
        assert_eq!(b.route(JobId(1), "out", 0), &[(JobId(2), "in".to_string())]);
        assert!(b.route(JobId(1), "out", 1).is_empty());
        assert!(b.has_dependents(JobId(1)));
        assert!(!b.has_dependents(JobId(2)));
    }

    #[test]
    fn property_subscription_matching() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "P",
            vec![(
                "out".into(),
                0,
                ExportSpec::default()
                    .with_property("topic", "profiles")
                    .with_property("source", "twitter"),
            )],
            vec![],
        );
        b.register_job(
            JobId(2),
            "C1",
            vec![],
            vec![(
                "in".into(),
                ImportSpec::default().subscribe("topic", "profiles"),
            )],
        );
        b.register_job(
            JobId(3),
            "C2",
            vec![],
            vec![(
                "in".into(),
                ImportSpec::default().subscribe("topic", "other"),
            )],
        );
        let routes = b.route(JobId(1), "out", 0);
        assert_eq!(routes, &[(JobId(2), "in".to_string())]);
    }

    #[test]
    fn late_exporter_connects_to_existing_importer() {
        let mut b = Broker::new();
        b.register_job(
            JobId(2),
            "C",
            vec![],
            vec![("in".into(), ImportSpec::by_id("feed"))],
        );
        assert_eq!(b.num_connections(), 0);
        b.register_job(
            JobId(5),
            "P",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        assert_eq!(b.route(JobId(5), "out", 0).len(), 1);
    }

    #[test]
    fn cancellation_dissolves_connections() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "P",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        b.register_job(
            JobId(2),
            "C",
            vec![],
            vec![("in".into(), ImportSpec::by_id("feed"))],
        );
        assert_eq!(b.num_connections(), 1);
        b.unregister_job(JobId(2));
        assert_eq!(b.num_connections(), 0);
        assert!(!b.has_dependents(JobId(1)));
    }

    #[test]
    fn no_self_import() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "SelfLoop",
            vec![("out".into(), 0, by_id_export("x"))],
            vec![("in".into(), ImportSpec::by_id("x"))],
        );
        assert_eq!(b.num_connections(), 0);
    }

    #[test]
    fn one_export_fans_out_to_many_importers() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "P",
            vec![("out".into(), 0, by_id_export("feed"))],
            vec![],
        );
        for j in 2..5 {
            b.register_job(
                JobId(j),
                "C",
                vec![],
                vec![("in".into(), ImportSpec::by_id("feed"))],
            );
        }
        assert_eq!(b.route(JobId(1), "out", 0).len(), 3);
    }

    #[test]
    fn app_filter_restricts_source() {
        let mut b = Broker::new();
        b.register_job(
            JobId(1),
            "AppA",
            vec![("o".into(), 0, by_id_export("s"))],
            vec![],
        );
        b.register_job(
            JobId(2),
            "AppB",
            vec![("o".into(), 0, by_id_export("s"))],
            vec![],
        );
        b.register_job(
            JobId(3),
            "C",
            vec![],
            vec![("in".into(), ImportSpec::by_id("s").from_app("AppA"))],
        );
        assert_eq!(b.route(JobId(1), "o", 0).len(), 1);
        assert!(b.route(JobId(2), "o", 0).is_empty());
    }

    fn chan(job: u64, from: usize, to: usize) -> ChannelKey {
        ChannelKey::Intra {
            job: JobId(job),
            from,
            to,
            op: "flt".into(),
            port: 0,
        }
    }

    fn entry(at: u64) -> (SimTime, BackupItem) {
        (
            SimTime::from_millis(at),
            BackupItem::Import {
                op: "in".into(),
                item: StreamItem::Punct(sps_engine::Punct::Final),
            },
        )
    }

    #[test]
    fn hwm_suppresses_replayed_range_only() {
        let mut ub = UpstreamBackup::new();
        let key = chan(1, 0, 1);
        for _ in 0..3 {
            assert!(!ub.advance(&key), "first pass is all-new traffic");
        }
        // Sender restores to a snapshot taken after the first emission.
        let snap = ub.sender_snapshot(JobId(1), 0);
        assert_eq!(snap, vec![(key.clone(), 3)]);
        ub.rollback_sender(JobId(1), 0, &[(key.clone(), 1)]);
        assert!(ub.advance(&key), "pos 2 replays an already-seen emission");
        assert!(ub.advance(&key), "pos 3 likewise");
        assert!(!ub.advance(&key), "pos 4 is genuinely new");
        assert_eq!(ub.stats().suppressed, 2);
    }

    #[test]
    fn rollback_removes_post_snapshot_channels() {
        let mut ub = UpstreamBackup::new();
        let old = chan(1, 0, 1);
        let new = chan(1, 0, 2);
        ub.advance(&old);
        let snap = ub.sender_snapshot(JobId(1), 0);
        ub.advance(&new); // channel born after the snapshot
        ub.rollback_sender(JobId(1), 0, &snap);
        // The post-snapshot channel's position was discarded, so its replay
        // re-emission lands at pos 1 <= hwm 1 and is suppressed.
        assert!(ub.advance(&new));
    }

    #[test]
    fn buffer_trim_and_drop_track_counts() {
        let mut ub = UpstreamBackup::new();
        let slot = (JobId(1), 1);
        for at in [100, 200, 300] {
            let (t, item) = entry(at);
            ub.buffer(slot, t, item);
        }
        assert_eq!(ub.buffered_now(), 3);
        assert_eq!(ub.replay_entries(slot).len(), 3);
        ub.trim(slot, SimTime::from_millis(200));
        assert_eq!(ub.buffered_now(), 1);
        assert_eq!(ub.stats().trimmed, 2);
        assert_eq!(
            ub.replay_entries(slot)[0].delivered_at,
            SimTime::from_millis(300)
        );
        ub.drop_receiver(slot);
        assert_eq!(ub.buffered_now(), 0);
        assert_eq!(ub.stats().peak_buffered, 3);
    }

    /// Trim-boundary regression: a tuple delivered at exactly the snapshot
    /// instant is *inside* the v2 checkpoint (kernel snapshots run after
    /// transport, so the captured input queues include that quantum's
    /// deliveries). It must therefore be acked by the commit — trimmed
    /// exactly once, absent from any later replay — and never double-count
    /// as both restored-queue state and a replay suppression.
    #[test]
    fn trim_acks_equal_timestamp_delivery_exactly_once() {
        let mut ub = UpstreamBackup::new();
        let slot = (JobId(1), 1);
        let taken_at = SimTime::from_millis(500);
        for at in [400, 500, 600] {
            let (t, item) = entry(at);
            ub.buffer(slot, t, item);
        }
        ub.trim(slot, taken_at);
        // The == taken_at entry went with the <= boundary…
        assert_eq!(ub.stats().trimmed, 2);
        let rest = ub.replay_entries(slot);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].delivered_at, SimTime::from_millis(600));
        // …and a second commit at the same instant does not re-count it.
        ub.trim(slot, taken_at);
        assert_eq!(ub.stats().trimmed, 2);
        assert_eq!(ub.buffered_now(), 1);
    }

    #[test]
    fn forget_job_clears_channels_and_buffers() {
        let mut ub = UpstreamBackup::new();
        ub.advance(&chan(1, 0, 1));
        ub.advance(&chan(2, 0, 1));
        let (t, item) = entry(100);
        ub.buffer((JobId(1), 1), t, item);
        ub.forget_job(JobId(1));
        assert_eq!(ub.buffered_now(), 0);
        assert!(ub.sender_snapshot(JobId(1), 0).is_empty());
        assert_eq!(ub.sender_snapshot(JobId(2), 0).len(), 1);
    }
}
