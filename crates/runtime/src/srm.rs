//! SRM — Streams Resource Manager (§2.2).
//!
//! Maintains host availability, component liveness, and serves as the
//! collector for all metrics in the system: HCs push per-PE metric
//! snapshots every few seconds (3 s by default), and consumers — notably the
//! ORCA service — *pull* per-job snapshots on their own schedule. Pulling
//! from SRM never generates further calls to operators, which is why metric
//! polling stays off the application hot path (§3).

use crate::ids::{JobId, PeId};
use sps_engine::MetricKey;
use sps_sim::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Latest metric values collected for one job.
///
/// Keys are the owning `MetricStore`'s interned `Arc`s, so HC pushes and
/// per-job merges move refcounts around rather than cloning name strings.
#[derive(Clone, Debug, Default)]
pub struct MetricSnapshot {
    /// Time of the most recent HC push contributing to this snapshot.
    pub collected_at: SimTime,
    /// Per-PE metric vectors, merged.
    pub values: Vec<(Arc<MetricKey>, i64)>,
}

/// One PE's snapshot: collection time plus metric rows.
type PeSnapshot = (SimTime, Vec<(Arc<MetricKey>, i64)>);

/// The SRM daemon state.
#[derive(Default)]
pub struct Srm {
    /// host name → up?
    host_status: BTreeMap<String, bool>,
    /// job → (pe → snapshot at last push)
    metrics: BTreeMap<JobId, BTreeMap<PeId, PeSnapshot>>,
    /// Count of pushes received (observability).
    pushes: u64,
}

impl Srm {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers or updates host liveness.
    pub fn set_host_status(&mut self, host: &str, up: bool) {
        self.host_status.insert(host.to_string(), up);
    }

    pub fn host_up(&self, host: &str) -> Option<bool> {
        self.host_status.get(host).copied()
    }

    pub fn hosts_up(&self) -> usize {
        self.host_status.values().filter(|&&u| u).count()
    }

    /// An HC pushes the metric snapshot of one local PE.
    pub fn push_pe_metrics(
        &mut self,
        job: JobId,
        pe: PeId,
        at: SimTime,
        values: Vec<(Arc<MetricKey>, i64)>,
    ) {
        self.pushes += 1;
        self.metrics
            .entry(job)
            .or_default()
            .insert(pe, (at, values));
    }

    /// Total HC pushes received.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Drops all state for a cancelled job.
    pub fn forget_job(&mut self, job: JobId) {
        self.metrics.remove(&job);
    }

    /// Drops state for a single PE (e.g. after restart the old incarnation's
    /// metrics are replaced on the next push anyway; this is for removal).
    pub fn forget_pe(&mut self, job: JobId, pe: PeId) {
        if let Some(per_pe) = self.metrics.get_mut(&job) {
            per_pe.remove(&pe);
        }
    }

    /// The pull interface used by the ORCA service: merged snapshots for a
    /// set of jobs. "SRM's response contains all metrics associated with a
    /// set of jobs" (§4.2).
    pub fn query_jobs(&self, jobs: &[JobId]) -> BTreeMap<JobId, MetricSnapshot> {
        let mut out = BTreeMap::new();
        for &job in jobs {
            let Some(per_pe) = self.metrics.get(&job) else {
                continue;
            };
            let mut snap = MetricSnapshot::default();
            for (at, values) in per_pe.values() {
                snap.collected_at = snap.collected_at.max(*at);
                snap.values.extend(values.iter().cloned());
            }
            out.insert(job, snap);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(op: &str, m: &str) -> Arc<MetricKey> {
        Arc::new(MetricKey::Operator(op.into(), m.into()))
    }

    #[test]
    fn host_status_tracking() {
        let mut srm = Srm::new();
        srm.set_host_status("h1", true);
        srm.set_host_status("h2", true);
        assert_eq!(srm.hosts_up(), 2);
        srm.set_host_status("h1", false);
        assert_eq!(srm.host_up("h1"), Some(false));
        assert_eq!(srm.host_up("ghost"), None);
        assert_eq!(srm.hosts_up(), 1);
    }

    #[test]
    fn pushes_merge_per_job() {
        let mut srm = Srm::new();
        srm.push_pe_metrics(
            JobId(1),
            PeId(10),
            SimTime::from_secs(3),
            vec![(key("a", "m"), 5)],
        );
        srm.push_pe_metrics(
            JobId(1),
            PeId(11),
            SimTime::from_secs(4),
            vec![(key("b", "m"), 7)],
        );
        srm.push_pe_metrics(
            JobId(2),
            PeId(20),
            SimTime::from_secs(4),
            vec![(key("c", "m"), 9)],
        );
        let result = srm.query_jobs(&[JobId(1)]);
        let snap = &result[&JobId(1)];
        assert_eq!(snap.values.len(), 2);
        assert_eq!(snap.collected_at, SimTime::from_secs(4));
        assert!(!result.contains_key(&JobId(2)));
        assert_eq!(srm.pushes(), 3);
    }

    #[test]
    fn repeated_push_replaces_pe_values() {
        let mut srm = Srm::new();
        srm.push_pe_metrics(
            JobId(1),
            PeId(10),
            SimTime::from_secs(3),
            vec![(key("a", "m"), 5)],
        );
        srm.push_pe_metrics(
            JobId(1),
            PeId(10),
            SimTime::from_secs(6),
            vec![(key("a", "m"), 9)],
        );
        let result = srm.query_jobs(&[JobId(1)]);
        let snap = &result[&JobId(1)];
        assert_eq!(snap.values, vec![(key("a", "m"), 9)]);
        assert_eq!(snap.collected_at, SimTime::from_secs(6));
    }

    #[test]
    fn unknown_job_query_is_empty() {
        let srm = Srm::new();
        assert!(srm.query_jobs(&[JobId(9)]).is_empty());
    }

    #[test]
    fn forget_clears_state() {
        let mut srm = Srm::new();
        srm.push_pe_metrics(JobId(1), PeId(10), SimTime::ZERO, vec![(key("a", "m"), 1)]);
        srm.push_pe_metrics(JobId(1), PeId(11), SimTime::ZERO, vec![(key("b", "m"), 2)]);
        srm.forget_pe(JobId(1), PeId(10));
        assert_eq!(srm.query_jobs(&[JobId(1)])[&JobId(1)].values.len(), 1);
        srm.forget_job(JobId(1));
        assert!(srm.query_jobs(&[JobId(1)]).is_empty());
        // Forgetting unknown entities is a no-op.
        srm.forget_pe(JobId(5), PeId(50));
        srm.forget_job(JobId(5));
    }
}
