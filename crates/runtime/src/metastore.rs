//! Metastore — the kernel's durable control-plane state behind a trait (§3).
//!
//! Everything SAM must not lose across its own crash lives here: the job
//! table, the PE index, orchestrator notification queues, exclusive host
//! reservations, the id counters, and the checkpoint-commit index. All
//! mutations funnel through [`MetaOp`] so a store can log them; reads go
//! through the materialized [`MetaTables`].
//!
//! Two implementations:
//!
//! - [`MemoryMetastore`]: the status-quo in-memory tables. `recover()` is a
//!   no-op (state survives by fiat — the immortal-SAM assumption the rest of
//!   the repo had baked in until now). Zero cost, byte-identical to the
//!   pre-metastore behavior.
//! - [`ReplicatedMetastore`]: a simulated single-leader replicated log.
//!   Every op is appended to the log and synchronously shipped to one
//!   follower chosen by a private [`SimRng`] stream (so the fault-free
//!   campaign digest never moves); recovery elects the most-caught-up
//!   follower and replays its log prefix into fresh tables, then
//!   digest-verifies the replay against the pre-crash state.
//!
//! Determinism: no ambient clocks or RNG anywhere in this module — the
//! replicated store's randomness is a seeded `SimRng` fork and log replay is
//! a pure fold over `MetaOp`s. The table digest hashes integers and strings
//! only (never the ADL body, whose operator parameters are floats).

use crate::ids::{JobId, OrcaId, PeId};
use crate::sam::{JobInfo, JobStatus, OrcaNotification};
use sps_sim::{fnv1a, SimRng, SimTime, FNV_OFFSET};
use std::collections::{BTreeMap, VecDeque};

/// Which metastore implementation backs the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MetastoreKind {
    /// In-memory tables, no log, `recover()` keeps state by fiat.
    #[default]
    Memory,
    /// Simulated leader + append-only op log + replay-on-recovery.
    Replicated,
}

impl MetastoreKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            MetastoreKind::Memory => "memory",
            MetastoreKind::Replicated => "replicated",
        }
    }

    /// Parses the campaign-bin / env spelling. `None` on unknown input.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "memory" => Some(MetastoreKind::Memory),
            "replicated" => Some(MetastoreKind::Replicated),
            _ => None,
        }
    }
}

impl std::fmt::Display for MetastoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for MetastoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        MetastoreKind::parse(s).ok_or_else(|| format!("`{s}` (expected memory|replicated)"))
    }
}

/// One logged mutation of the control-plane state. Replaying the sequence of
/// ops applied since boot onto empty tables reproduces the live tables
/// exactly — that is the recovery contract [`Metastore::verify`] checks.
#[derive(Clone, Debug)]
pub enum MetaOp {
    AllocJobId,
    AllocPeId,
    RegisterOrchestrator,
    InsertJob(JobInfo),
    RemoveJob(JobId),
    SetJobStatus(JobId, JobStatus),
    ReplacePe {
        job: JobId,
        adl_index: usize,
        new_pe: PeId,
    },
    PushNotification(OrcaId, OrcaNotification),
    DrainNotifications(OrcaId),
    ReserveHost(String, JobId),
    ReleaseHost(String),
    RecordCkptCommit {
        job: JobId,
        adl_index: usize,
        taken_at: SimTime,
    },
    ForgetCkpt(JobId),
}

/// The materialized control-plane tables — exactly the state the pre-refactor
/// `Sam` struct held, plus the checkpoint-commit index.
#[derive(Default, Clone, Debug)]
pub struct MetaTables {
    pub next_job: u64,
    pub next_pe: u64,
    pub next_orca: u64,
    pub jobs: BTreeMap<JobId, JobInfo>,
    pub pe_index: BTreeMap<PeId, (JobId, usize)>,
    pub orca_queues: BTreeMap<OrcaId, VecDeque<OrcaNotification>>,
    /// host → owning job for exclusive host pools (§4.3).
    pub exclusive_hosts: BTreeMap<String, JobId>,
    /// Delivery accounting per orchestrator: ever-enqueued / ever-drained.
    pub pushed: BTreeMap<OrcaId, u64>,
    pub drained: BTreeMap<OrcaId, u64>,
    /// `(job, adl_index)` → commit time of the newest durable checkpoint.
    pub ckpt_commits: BTreeMap<(JobId, usize), SimTime>,
}

fn mix(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

fn mix_str(h: u64, s: &str) -> u64 {
    fnv1a(mix(h, s.len() as u64), s.as_bytes())
}

fn mix_notification(mut h: u64, n: &OrcaNotification) -> u64 {
    match n {
        OrcaNotification::PeFailure {
            job,
            pe,
            adl_index,
            reason,
            detected_at,
        } => {
            h = mix(h, job.0);
            h = mix(h, pe.0);
            h = mix(h, *adl_index as u64);
            h = mix_str(h, reason.class());
            mix(h, detected_at.as_millis())
        }
    }
}

impl MetaTables {
    /// Applies one op. This is the single transition function both stores and
    /// log replay share, so "replay reproduces the tables" holds by
    /// construction as long as ops are logged in application order.
    pub fn apply(&mut self, op: &MetaOp) {
        match op {
            MetaOp::AllocJobId => self.next_job += 1,
            MetaOp::AllocPeId => self.next_pe += 1,
            MetaOp::RegisterOrchestrator => {
                self.orca_queues
                    .insert(OrcaId(self.next_orca), VecDeque::new());
                self.next_orca += 1;
            }
            MetaOp::InsertJob(info) => {
                for (idx, &pe) in info.pe_ids.iter().enumerate() {
                    self.pe_index.insert(pe, (info.id, idx));
                }
                self.jobs.insert(info.id, info.clone());
            }
            MetaOp::RemoveJob(id) => {
                if let Some(info) = self.jobs.remove(id) {
                    for pe in &info.pe_ids {
                        self.pe_index.remove(pe);
                    }
                    self.exclusive_hosts.retain(|_, owner| owner != id);
                    self.ckpt_commits.retain(|(j, _), _| j != id);
                }
            }
            MetaOp::SetJobStatus(id, status) => {
                if let Some(info) = self.jobs.get_mut(id) {
                    info.status = *status;
                }
            }
            MetaOp::ReplacePe {
                job,
                adl_index,
                new_pe,
            } => {
                if let Some(info) = self.jobs.get_mut(job) {
                    if let Some(slot) = info.pe_ids.get_mut(*adl_index) {
                        self.pe_index.remove(slot);
                        *slot = *new_pe;
                        self.pe_index.insert(*new_pe, (*job, *adl_index));
                    }
                }
            }
            MetaOp::PushNotification(orca, n) => {
                if let Some(q) = self.orca_queues.get_mut(orca) {
                    q.push_back(n.clone());
                    *self.pushed.entry(*orca).or_insert(0) += 1;
                }
            }
            MetaOp::DrainNotifications(orca) => {
                if let Some(q) = self.orca_queues.get_mut(orca) {
                    let n = q.len() as u64;
                    q.clear();
                    if n > 0 {
                        *self.drained.entry(*orca).or_insert(0) += n;
                    }
                }
            }
            MetaOp::ReserveHost(host, job) => {
                self.exclusive_hosts.insert(host.clone(), *job);
            }
            MetaOp::ReleaseHost(host) => {
                self.exclusive_hosts.remove(host);
            }
            MetaOp::RecordCkptCommit {
                job,
                adl_index,
                taken_at,
            } => {
                self.ckpt_commits.insert((*job, *adl_index), *taken_at);
            }
            MetaOp::ForgetCkpt(job) => {
                self.ckpt_commits.retain(|(j, _), _| j != job);
            }
        }
    }

    /// FNV digest over every table, integers and strings only. The ADL body
    /// is deliberately excluded: its operator parameters are floats, and the
    /// job's identity is already pinned by `(id, app_name, pe_ids)` — an ADL
    /// cannot change under a fixed job id.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = mix(h, self.next_job);
        h = mix(h, self.next_pe);
        h = mix(h, self.next_orca);
        for (id, info) in &self.jobs {
            h = mix(h, id.0);
            h = mix_str(h, &info.app_name);
            h = mix(h, info.pe_ids.len() as u64);
            for pe in &info.pe_ids {
                h = mix(h, pe.0);
            }
            h = mix(h, matches!(info.status, JobStatus::Cancelled) as u64);
            h = mix(h, info.submitted_at.as_millis());
            h = mix(h, info.owner.map(|o| o.0 + 1).unwrap_or(0));
        }
        for (pe, (job, idx)) in &self.pe_index {
            h = mix(h, pe.0);
            h = mix(h, job.0);
            h = mix(h, *idx as u64);
        }
        for (orca, q) in &self.orca_queues {
            h = mix(h, orca.0);
            h = mix(h, q.len() as u64);
            for n in q {
                h = mix_notification(h, n);
            }
        }
        for (host, job) in &self.exclusive_hosts {
            h = mix_str(h, host);
            h = mix(h, job.0);
        }
        for (orca, count) in &self.pushed {
            h = mix(h, orca.0);
            h = mix(h, *count);
        }
        for (orca, count) in &self.drained {
            h = mix(h, orca.0);
            h = mix(h, *count);
        }
        for ((job, idx), at) in &self.ckpt_commits {
            h = mix(h, job.0);
            h = mix(h, *idx as u64);
            h = mix(h, at.as_millis());
        }
        h
    }
}

/// Counters a store accumulates over its lifetime (campaign-report hooks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetaStats {
    /// Ops applied to the live tables since boot.
    pub ops_applied: u64,
    /// `recover()` invocations that completed.
    pub recoveries: u64,
    /// Total ops replayed from the log across all recoveries.
    pub ops_replayed: u64,
}

/// Result of one [`Metastore::recover`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetaRecovery {
    /// Ops replayed from the durable log to rebuild the tables. Zero for the
    /// in-memory store, whose tables survive by fiat.
    pub ops_replayed: u64,
}

/// The kernel's interface to its durable control-plane state.
///
/// `Send` is a supertrait because campaign workers move whole worlds across
/// threads.
pub trait Metastore: Send {
    fn kind(&self) -> MetastoreKind;
    /// Applies (and, for logging stores, records) one mutation.
    fn apply(&mut self, op: MetaOp);
    /// The live, materialized tables. All SAM reads go through here.
    fn tables(&self) -> &MetaTables;
    /// Rebuilds the tables as a post-crash restart would. A logging store
    /// replays its log and panics if the replay diverges from the pre-crash
    /// tables; the in-memory store keeps its tables untouched.
    fn recover(&mut self) -> MetaRecovery;
    /// True iff replaying the durable log reproduces the live tables
    /// (trivially true for the in-memory store). Oracle hook.
    fn verify(&self) -> bool;
    fn stats(&self) -> MetaStats;
}

/// The status-quo store: plain tables, no log, immortal state.
#[derive(Default)]
pub struct MemoryMetastore {
    tables: MetaTables,
    stats: MetaStats,
}

impl MemoryMetastore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Metastore for MemoryMetastore {
    fn kind(&self) -> MetastoreKind {
        MetastoreKind::Memory
    }

    fn apply(&mut self, op: MetaOp) {
        self.tables.apply(&op);
        self.stats.ops_applied += 1;
    }

    fn tables(&self) -> &MetaTables {
        &self.tables
    }

    fn recover(&mut self) -> MetaRecovery {
        self.stats.recoveries += 1;
        MetaRecovery::default()
    }

    fn verify(&self) -> bool {
        true
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }
}

/// Number of simulated log followers behind the leader.
const REPLICAS: usize = 3;

/// Simulated single-leader replicated log.
///
/// The real-system analogue is a Raft/Paxos-backed store (cf. the
/// single-leader + replicated-log sketch in ROADMAP item 1): the leader
/// appends each op and ships it to followers. Here every append synchronously
/// catches one follower — chosen by a private seeded RNG stream — up to the
/// full log, so the most-caught-up follower always holds a complete prefix
/// and recovery is loss-free by construction. The point of the simulation is
/// not the quorum arithmetic but the recovery contract: tables rebuilt by
/// log replay must be bit-identical to the tables that crashed.
pub struct ReplicatedMetastore {
    tables: MetaTables,
    log: Vec<MetaOp>,
    /// Log length each follower has durably acknowledged.
    match_idx: [usize; REPLICAS],
    rng: SimRng,
    stats: MetaStats,
}

impl ReplicatedMetastore {
    /// `seed` should be a kernel-derived constant stream tag, not a fork of
    /// the kernel's live RNG — constructing this store must not perturb the
    /// simulation's draw sequence.
    pub fn new(seed: u64) -> Self {
        ReplicatedMetastore {
            tables: MetaTables::default(),
            log: Vec::new(),
            match_idx: [0; REPLICAS],
            rng: SimRng::new(seed),
            stats: MetaStats::default(),
        }
    }

    /// Elected leader for recovery: the most-caught-up follower.
    fn leader_match(&self) -> usize {
        self.match_idx.iter().copied().max().unwrap_or(0)
    }

    fn replay(&self, upto: usize) -> MetaTables {
        let mut fresh = MetaTables::default();
        for op in &self.log[..upto] {
            fresh.apply(op);
        }
        fresh
    }
}

impl Metastore for ReplicatedMetastore {
    fn kind(&self) -> MetastoreKind {
        MetastoreKind::Replicated
    }

    fn apply(&mut self, op: MetaOp) {
        self.tables.apply(&op);
        self.log.push(op);
        // Synchronous catch-up of one randomly chosen follower to the full
        // log. The max over match_idx is therefore always log.len(): the
        // elected leader never misses an acknowledged op.
        let follower = self.rng.gen_range(0, REPLICAS as u64) as usize;
        self.match_idx[follower] = self.log.len();
        self.stats.ops_applied += 1;
    }

    fn tables(&self) -> &MetaTables {
        &self.tables
    }

    fn recover(&mut self) -> MetaRecovery {
        let upto = self.leader_match();
        let fresh = self.replay(upto);
        assert_eq!(
            fresh.digest(),
            self.tables.digest(),
            "metastore recovery diverged: log replay ({upto} ops) does not \
             reproduce the pre-crash tables"
        );
        self.tables = fresh;
        self.stats.recoveries += 1;
        self.stats.ops_replayed += upto as u64;
        MetaRecovery {
            ops_replayed: upto as u64,
        }
    }

    fn verify(&self) -> bool {
        self.replay(self.leader_match()).digest() == self.tables.digest()
    }

    fn stats(&self) -> MetaStats {
        self.stats
    }
}

/// Constructs the store for a kind. `seed` feeds only the replicated store's
/// private RNG stream.
pub fn build_metastore(kind: MetastoreKind, seed: u64) -> Box<dyn Metastore> {
    match kind {
        MetastoreKind::Memory => Box::new(MemoryMetastore::new()),
        MetastoreKind::Replicated => Box::new(ReplicatedMetastore::new(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sam::CrashReason;
    use sps_model::adl::Adl;

    fn adl() -> Adl {
        Adl {
            app_name: "A".into(),
            operators: vec![],
            pes: vec![],
            streams: vec![],
            imports: vec![],
            exports: vec![],
            host_pools: vec![],
        }
    }

    fn job(id: u64) -> JobInfo {
        JobInfo {
            id: JobId(id),
            app_name: "A".into(),
            adl: adl(),
            pe_ids: vec![PeId(id * 10)],
            status: JobStatus::Running,
            submitted_at: SimTime::from_secs(1),
            owner: Some(OrcaId(0)),
        }
    }

    fn notification() -> OrcaNotification {
        OrcaNotification::PeFailure {
            job: JobId(1),
            pe: PeId(10),
            adl_index: 0,
            reason: CrashReason::Killed,
            detected_at: SimTime::from_secs(2),
        }
    }

    fn script(store: &mut dyn Metastore) {
        store.apply(MetaOp::RegisterOrchestrator);
        store.apply(MetaOp::AllocJobId);
        store.apply(MetaOp::AllocPeId);
        store.apply(MetaOp::InsertJob(job(1)));
        store.apply(MetaOp::ReserveHost("h1".into(), JobId(1)));
        store.apply(MetaOp::PushNotification(OrcaId(0), notification()));
        store.apply(MetaOp::RecordCkptCommit {
            job: JobId(1),
            adl_index: 0,
            taken_at: SimTime::from_secs(3),
        });
        store.apply(MetaOp::DrainNotifications(OrcaId(0)));
        store.apply(MetaOp::ReplacePe {
            job: JobId(1),
            adl_index: 0,
            new_pe: PeId(99),
        });
    }

    #[test]
    fn both_stores_materialize_identical_tables() {
        let mut mem = MemoryMetastore::new();
        let mut rep = ReplicatedMetastore::new(7);
        script(&mut mem);
        script(&mut rep);
        assert_eq!(mem.tables().digest(), rep.tables().digest());
        assert_eq!(mem.tables().jobs[&JobId(1)].pe_ids, vec![PeId(99)]);
        assert_eq!(mem.tables().pe_index[&PeId(99)], (JobId(1), 0));
    }

    #[test]
    fn replicated_recovery_replays_the_full_log() {
        let mut rep = ReplicatedMetastore::new(7);
        script(&mut rep);
        let before = rep.tables().digest();
        let rec = rep.recover();
        assert_eq!(rec.ops_replayed, 9);
        assert_eq!(rep.tables().digest(), before);
        assert_eq!(rep.stats().recoveries, 1);
        assert_eq!(rep.stats().ops_replayed, 9);
        assert!(rep.verify());
    }

    #[test]
    fn memory_recovery_keeps_tables_by_fiat() {
        let mut mem = MemoryMetastore::new();
        script(&mut mem);
        let before = mem.tables().digest();
        let rec = mem.recover();
        assert_eq!(rec.ops_replayed, 0);
        assert_eq!(mem.tables().digest(), before);
        assert!(mem.verify());
    }

    #[test]
    fn remove_job_clears_all_derived_state() {
        let mut mem = MemoryMetastore::new();
        script(&mut mem);
        mem.apply(MetaOp::RemoveJob(JobId(1)));
        let t = mem.tables();
        assert!(t.jobs.is_empty());
        assert!(t.pe_index.is_empty());
        assert!(t.exclusive_hosts.is_empty());
        assert!(t.ckpt_commits.is_empty());
    }

    #[test]
    fn digest_moves_with_every_table() {
        let mut t = MetaTables::default();
        let mut last = t.digest();
        let step = |t: &mut MetaTables, op: MetaOp, last: &mut u64| {
            t.apply(&op);
            let d = t.digest();
            assert_ne!(d, *last, "digest must move after {op:?}");
            *last = d;
        };
        step(&mut t, MetaOp::AllocJobId, &mut last);
        step(&mut t, MetaOp::RegisterOrchestrator, &mut last);
        step(&mut t, MetaOp::InsertJob(job(1)), &mut last);
        step(&mut t, MetaOp::ReserveHost("h".into(), JobId(1)), &mut last);
        step(
            &mut t,
            MetaOp::PushNotification(OrcaId(0), notification()),
            &mut last,
        );
        step(
            &mut t,
            MetaOp::SetJobStatus(JobId(1), JobStatus::Cancelled),
            &mut last,
        );
    }

    #[test]
    fn replicated_apply_stream_is_deterministic() {
        let run = || {
            let mut rep = ReplicatedMetastore::new(42);
            script(&mut rep);
            (rep.match_idx, rep.tables().digest())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kind_spelling_round_trips() {
        for kind in [MetastoreKind::Memory, MetastoreKind::Replicated] {
            assert_eq!(MetastoreKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(MetastoreKind::parse("raft"), None);
    }
}
