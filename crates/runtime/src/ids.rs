//! Runtime entity identifiers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A submitted application instance ("each application submitted to SAM
    /// is considered a new job", §2.2).
    JobId,
    "job"
);
id_type!(
    /// A processing-element process instance.
    PeId,
    "pe"
);
id_type!(
    /// A registered orchestrator instance.
    OrcaId,
    "orca"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(JobId(3).to_string(), "job3");
        assert_eq!(PeId(14).to_string(), "pe14");
        assert_eq!(OrcaId(0).to_string(), "orca0");
    }

    #[test]
    fn ordering_and_hash() {
        assert!(JobId(1) < JobId(2));
        let mut set = std::collections::HashSet::new();
        set.insert(PeId(1));
        assert!(set.contains(&PeId(1)));
    }
}
