//! The runtime checkpoint store.
//!
//! The paper's recovery story distinguishes restarting a PE with *fresh*
//! state (§5.2 — the Trend Calculator deliberately runs without
//! checkpointing and pays a window-refill gap) from recovering it with its
//! operator state intact. This module supplies the latter: the kernel
//! periodically snapshots every checkpointable, `Up` PE into a
//! [`PeCheckpoint`] keyed by `(job, ADL PE index)` — the identity that
//! survives restarts, unlike [`PeId`]s which are minted fresh each time —
//! and [`crate::kernel::Kernel::restart_pe`] restores the newest compatible
//! snapshot into the replacement process, falling back to fresh state when
//! none exists or the shape changed.
//!
//! The store models a highly available external service (the real system
//! would keep this in a distributed file system): host failures do not lose
//! checkpoints, only job cancellation discards them.

use crate::ids::JobId;
use sps_engine::PeCheckpoint;
use sps_sim::SimDuration;
use std::collections::BTreeMap;

/// Per-kernel checkpointing policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot period, in scheduling quanta; `0` disables checkpointing
    /// entirely (the seed behavior, and the paper's §5.2 setup).
    pub every_quanta: u32,
    /// Fault-injection knob for the harness: deliberately drop the last
    /// stateful operator's blob from every restore, so the campaign's
    /// `StatePreservation` oracle (which self-verifies restores) has a
    /// demonstrably detectable failure mode. Never enable outside tests.
    pub lossy_restore: bool,
}

impl CheckpointPolicy {
    /// Checkpointing every `quanta` scheduling quanta.
    pub fn every(quanta: u32) -> Self {
        CheckpointPolicy {
            every_quanta: quanta,
            ..Default::default()
        }
    }

    pub fn enabled(&self) -> bool {
        self.every_quanta > 0
    }

    /// The wall-clock period between snapshots under a given quantum.
    pub fn period(&self, quantum: SimDuration) -> SimDuration {
        SimDuration::from_millis(quantum.as_millis() * self.every_quanta as u64)
    }
}

/// Newest checkpoint per `(job, ADL PE index)`, plus observability counters.
#[derive(Default)]
pub struct CheckpointStore {
    slots: BTreeMap<(JobId, usize), PeCheckpoint>,
    saved: u64,
    restored: u64,
    fallbacks: u64,
}

impl CheckpointStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a snapshot, replacing any older one for the same PE slot.
    pub fn save(&mut self, job: JobId, adl_index: usize, ckpt: PeCheckpoint) {
        self.saved += 1;
        self.slots.insert((job, adl_index), ckpt);
    }

    /// Newest snapshot for a PE slot, if any.
    pub fn latest(&self, job: JobId, adl_index: usize) -> Option<&PeCheckpoint> {
        self.slots.get(&(job, adl_index))
    }

    /// Drops every snapshot of a cancelled job.
    pub fn forget_job(&mut self, job: JobId) {
        self.slots.retain(|(j, _), _| *j != job);
    }

    /// Number of PE slots currently holding a snapshot.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total snapshots ever taken.
    pub fn saved(&self) -> u64 {
        self.saved
    }

    /// Restores that applied a checkpoint.
    pub fn restored(&self) -> u64 {
        self.restored
    }

    /// Restarts that fell back to fresh state (no/incompatible checkpoint).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    pub(crate) fn count_restore(&mut self) {
        self.restored += 1;
    }

    pub(crate) fn count_fallback(&mut self) {
        self.fallbacks += 1;
    }

    /// Total serialized state bytes currently held (observability).
    pub fn state_bytes(&self) -> usize {
        self.slots.values().map(PeCheckpoint::state_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sps_engine::ckpt::CKPT_FORMAT_VERSION;
    use sps_sim::SimTime;

    fn ckpt(at: u64) -> PeCheckpoint {
        PeCheckpoint {
            format_version: CKPT_FORMAT_VERSION,
            pe_index: 0,
            taken_at: SimTime::from_secs(at),
            ops: vec![],
            metrics: vec![],
        }
    }

    #[test]
    fn save_replaces_and_forget_clears() {
        let mut s = CheckpointStore::new();
        assert!(s.is_empty());
        s.save(JobId(1), 0, ckpt(1));
        s.save(JobId(1), 0, ckpt(2));
        s.save(JobId(1), 1, ckpt(2));
        s.save(JobId(2), 0, ckpt(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.saved(), 4);
        assert_eq!(
            s.latest(JobId(1), 0).unwrap().taken_at,
            SimTime::from_secs(2)
        );
        s.forget_job(JobId(1));
        assert_eq!(s.len(), 1);
        assert!(s.latest(JobId(1), 0).is_none());
        assert!(s.latest(JobId(2), 0).is_some());
    }

    #[test]
    fn policy_defaults_off() {
        let p = CheckpointPolicy::default();
        assert!(!p.enabled());
        let p = CheckpointPolicy::every(10);
        assert!(p.enabled());
        assert_eq!(
            p.period(SimDuration::from_millis(100)),
            SimDuration::from_secs(1)
        );
    }
}
